//! Vendored, dependency-free stand-in for the subset of the `rand` 0.9 API
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation instead of the real crate. It mirrors the
//! `rand` 0.9 surface the simulator relies on:
//!
//! - [`rngs::SmallRng`]: xoshiro256++ (the algorithm `rand` 0.9 uses for
//!   `SmallRng` on 64-bit platforms), seeded through the same PCG32-based
//!   [`SeedableRng::seed_from_u64`] expansion as `rand_core` 0.9.
//! - [`Rng::random`], [`Rng::random_range`], [`Rng::random_iter`] and
//!   [`Rng::random_bool`].
//!
//! Everything is deterministic: no OS entropy, no `thread_rng`, no global
//! state. That property is load-bearing for the simulator — see the
//! `dirca-audit` gate which bans nondeterministic entropy sources in
//! simulation crates.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a single `u64`, expanding it into a full
    /// seed with the PCG32 stream used by `rand_core` 0.9's default
    /// implementation, so seeds stay compatible with the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let block = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(
                block
                    .get(..n)
                    .expect("chunk of a 4-byte block is at most 4 bytes"),
            );
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// Stand-in for `rand`'s `StandardUniform` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1), as in `rand`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling from `[0, bound)` by rejection on the widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "uniform_below bound must be positive");
    // Lemire's method: accept unless the low product word falls in the
    // biased zone.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        start + (end - start) * u
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let u: f64 = self.random();
        u < p
    }

    /// Consumes the generator, yielding an infinite stream of samples.
    fn random_iter<T: StandardSample>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _marker: PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Infinite iterator over standard-uniform samples; see [`Rng::random_iter`].
pub struct RandomIter<R, T> {
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<R: fmt::Debug, T> fmt::Debug for RandomIter<R, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomIter")
            .field("rng", &self.rng)
            .finish()
    }
}

impl<R: RngCore, T: StandardSample> Iterator for RandomIter<R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(T::sample(&mut self.rng))
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The xoshiro256++ generator — the algorithm behind `rand` 0.9's
    /// `SmallRng` on 64-bit platforms. Fast, small, and statistically strong
    /// for simulation workloads (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it like
                // rand_xoshiro does.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference sequence for xoshiro256++ with state {1, 2, 3, 4}
        // (from the public-domain reference implementation).
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(i as u64 + 1).to_le_bytes());
        }
        let mut rng = SmallRng::from_seed(seed);
        let got: Vec<u64> = (0..6).map(|_| rng.random::<u64>()).collect();
        assert_eq!(
            got,
            vec![
                41_943_041,
                58_720_359,
                3_588_806_011_781_223,
                3_591_011_842_654_386,
                9_228_616_714_210_784_205,
                9_973_669_472_204_895_162,
            ]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let a: Vec<u64> = SmallRng::seed_from_u64(7).random_iter().take(4).collect();
        let b: Vec<u64> = SmallRng::seed_from_u64(7).random_iter().take(4).collect();
        let c: Vec<u64> = SmallRng::seed_from_u64(8).random_iter().take(4).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(0..=31u32);
            assert!(v <= 31);
            let w = rng.random_range(5..8usize);
            assert!((5..8).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
