//! Vendored stand-in for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the pieces the test suites rely on: the [`Strategy`] trait
//! with ranges / tuples / [`Just`] / `prop_map` / collection and boolean
//! strategies, the [`proptest!`] test-harness macro, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the exact inputs that failed
//!   (they are `Debug`-printed) but is not minimized.
//! - **Deterministic.** Cases are generated from a fixed seed derived from
//!   the test's name via FNV-1a, so every run explores the same inputs.
//!   This matches the workspace's determinism-first policy (see
//!   `dirca-audit`); real proptest seeds from OS entropy by default.
//! - `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The RNG driving test-case generation.
pub type TestRng = SmallRng;

/// A failed property: carries the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The assertion message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration; only the case count is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Generates values of an output type from a random source.
///
/// Object-safe: `prop_map`/`boxed` require `Self: Sized`, so
/// `Box<dyn Strategy<Value = V>>` (= [`BoxedStrategy`]) works.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Debug,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<V> {
    alternatives: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union over `alternatives`.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Union { alternatives }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.random_range(0..self.alternatives.len());
        self.alternatives
            .get(idx)
            .expect("index sampled within bounds")
            .sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                SampleRange::sample_single(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy yielding `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Creates the deterministic RNG for the named test.
pub fn test_rng(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for_test(name))
}

/// Commonly used items; `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection`, `prop::bool`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

// The unused-import lint fires if a generated test never uses a helper; keep
// the surface identical anyway.
pub use prelude::prop;

/// Defines property tests.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let values = ($($crate::Strategy::sample(&$strategy, &mut rng),)+);
                let described = format!("{values:?}");
                let ($($pat,)+) = values;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed: {msg}\n    inputs: {described}",
                        total = config.cases,
                        msg = e.message(),
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the enclosing property if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for item in &v {
                prop_assert!(*item < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            tag in prop_oneof![Just(1u8), Just(2u8)],
            pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!(tag == 1 || tag == 2);
            prop_assert!(pair <= 6);
        }

        #[test]
        fn bools_show_up(flags in prop::collection::vec(prop::bool::ANY, 64usize)) {
            prop_assert_eq!(flags.len(), 64);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, 0.0f64..1.0);
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("inputs:"), "message missing inputs: {msg}");
    }
}
