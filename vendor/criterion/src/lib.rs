//! Vendored stand-in for the subset of the `criterion` 0.7 API used by the
//! workspace benches.
//!
//! The build environment has no access to crates.io. This shim keeps every
//! `[[bench]]` target compiling and runnable: it measures wall-clock time
//! with `std::time::Instant` over a fixed number of timed iterations and
//! prints a one-line median per benchmark. No warm-up modeling, outlier
//! rejection, plotting, or statistical analysis — run real criterion for
//! publishable numbers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed samples per benchmark (each sample is one `iter` call).
const DEFAULT_SAMPLES: usize = 20;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a standalone benchmark named `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        run_one("", name.as_ref(), DEFAULT_SAMPLES, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Prints the closing summary; part of the real API via
    /// `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs `f` as a benchmark named `name` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, f: F) {
        run_one(&self.name, name.as_ref(), self.samples, f);
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the timed iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times.get(times.len() / 2).copied().unwrap_or(0);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        median_ns: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label:<40} median {:>12.3} µs ({samples} samples)",
        bencher.median_ns as f64 / 1000.0
    );
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("inner", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran >= 3, "bencher must run the routine");
    }
}
