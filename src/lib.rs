//! # dirca — directional-antenna collision avoidance
//!
//! A from-scratch Rust reproduction of Yu Wang & J. J. Garcia-Luna-Aceves,
//! *Collision Avoidance in Single-Channel Ad Hoc Networks Using
//! Directional Antennas* (IEEE ICDCS 2003): both the analytical model of
//! the three collision-avoidance schemes (ORTS-OCTS, DRTS-DCTS,
//! DRTS-OCTS) and the full IEEE 802.11 DCF simulation study that validates
//! it — including the discrete-event engine, directional radio, MAC,
//! topology generators, and experiment harness the paper built on
//! GloMoSim.
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names. See the README for the architecture map and `DESIGN.md`
//! for the paper-to-module index.
//!
//! ## Quick start
//!
//! Analytical model (Fig. 5):
//!
//! ```
//! use dirca::analysis::{optimize, ModelInput, ProtocolTimes};
//! use dirca::mac::Scheme;
//!
//! let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
//! let best = optimize::max_throughput(Scheme::DrtsDcts, &input);
//! println!("DRTS-DCTS optimum: {:.3} at p = {:.4}", best.throughput, best.p);
//! ```
//!
//! Simulation (Figs. 6/7):
//!
//! ```
//! use dirca::mac::Scheme;
//! use dirca::net::{run, SimConfig};
//! use dirca::topology::fixtures;
//!
//! let topology = fixtures::hidden_terminal();
//! let config = SimConfig::new(Scheme::DrtsDcts)
//!     .with_beamwidth_degrees(30.0)
//!     .with_seed(7)
//!     .with_measure(dirca::sim::SimDuration::from_millis(500));
//! let result = run(&topology, &config);
//! println!("throughput: {:.0} bit/s", result.aggregate_throughput_bps());
//! ```

#![forbid(unsafe_code)]

pub use dirca_analysis as analysis;
pub use dirca_experiments as experiments;
pub use dirca_geometry as geometry;
pub use dirca_mac as mac;
pub use dirca_net as net;
pub use dirca_radio as radio;
pub use dirca_sim as sim;
pub use dirca_stats as stats;
pub use dirca_topology as topology;
