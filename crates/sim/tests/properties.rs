//! Property tests of the simulation substrate.

use dirca_sim::{rng::derive_seed, EventQueue, SimDuration, SimTime, TimerSlot};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pop_order_matches_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        // Popping must yield events ordered by (time, insertion index) —
        // i.e. a stable sort of the input by timestamp.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn queue_interleaved_operations_never_go_backwards(
        ops in prop::collection::vec((0u64..1000, prop::bool::ANY), 1..200),
    ) {
        // Under arbitrary interleavings of pushes and pops, popped
        // timestamps are non-decreasing as long as every push is >= the
        // last popped time (which we enforce by construction, mimicking a
        // scheduler that never schedules into the past).
        let mut q = EventQueue::new();
        let mut last_popped = 0u64;
        for (delay, do_pop) in ops {
            q.push(SimTime::from_nanos(last_popped + delay), ());
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t.as_nanos() >= last_popped);
                    last_popped = t.as_nanos();
                }
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t.as_nanos() >= last_popped);
            last_popped = t.as_nanos();
        }
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!((t + d).saturating_duration_since(t + d + d), SimDuration::ZERO);
    }

    #[test]
    fn derive_seed_has_no_cheap_collisions(
        master in 0u64..1000,
        s1 in 0u64..1000,
        s2 in 0u64..1000,
    ) {
        if s1 != s2 {
            prop_assert_ne!(derive_seed(master, s1), derive_seed(master, s2));
        }
    }

    #[test]
    fn timer_slot_accepts_only_latest_generation(arms in 1usize..50, fire_at in 0usize..50) {
        let mut slot = TimerSlot::new();
        let mut tokens = Vec::new();
        for _ in 0..arms {
            tokens.push(slot.arm());
        }
        let idx = fire_at % tokens.len();
        let fired = slot.fires(tokens[idx]);
        prop_assert_eq!(fired, idx == tokens.len() - 1, "only the newest arming may fire");
    }
}
