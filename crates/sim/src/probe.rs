//! Dispatch-loop probes (compiled only with the `trace` feature).
//!
//! A [`Probe`] is the observability twin of the `audit` feature's
//! `Auditor`: an object hooked into [`crate::Simulation::dispatch`]
//! immediately around `World::handle`. Where auditors *check* invariants
//! and panic, probes *measure* — the bench harness installs one to time
//! per-event-class dispatch, and higher layers can observe event flow
//! without touching the world.
//!
//! Probes receive the event by shared reference before it is handled and a
//! plain tick afterwards; they cannot schedule, mutate the world, or draw
//! randomness, so an installed probe can never perturb the simulation —
//! only slow it down.

use crate::{SimTime, World};

/// An observer hooked around every event dispatch.
///
/// Both hooks default to no-ops so implementations override only what they
/// measure.
pub trait Probe<W: World>: std::fmt::Debug {
    /// Called after the clock advances to `now`, immediately before the
    /// world handles `event`.
    fn before_event(&mut self, now: SimTime, event: &W::Event) {
        let _ = (now, event);
    }

    /// Called immediately after the world handled the event dispatched at
    /// `now`.
    fn after_event(&mut self, now: SimTime) {
        let _ = now;
    }
}
