//! Generation-counter timers with O(1) logical cancellation.
//!
//! Discrete-event queues cannot cheaply delete scheduled events, so the
//! standard idiom is to attach a generation number: cancelling (or
//! re-arming) a timer bumps the generation, and stale firings are discarded
//! on arrival. [`TimerSlot`] packages that idiom.

/// An opaque generation token identifying one arming of a [`TimerSlot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerGeneration(u64);

/// A logical timer that can be armed, cancelled, and checked against firing
/// events.
///
/// # Example
///
/// ```
/// use dirca_sim::TimerSlot;
///
/// let mut timer = TimerSlot::new();
/// let g1 = timer.arm();          // schedule an event carrying g1
/// let g2 = timer.arm();          // re-arm: schedule an event carrying g2
/// assert!(!timer.fires(g1));     // the g1 event is stale when it arrives
/// assert!(timer.fires(g2));      // the g2 event is live ...
/// assert!(!timer.fires(g2));     // ... exactly once
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerSlot {
    generation: u64,
    armed: bool,
}

impl TimerSlot {
    /// Creates a disarmed timer.
    pub fn new() -> Self {
        TimerSlot::default()
    }

    /// Arms (or re-arms) the timer, invalidating any previously scheduled
    /// firing, and returns the token to attach to the newly scheduled event.
    pub fn arm(&mut self) -> TimerGeneration {
        self.generation += 1;
        self.armed = true;
        TimerGeneration(self.generation)
    }

    /// Cancels the timer: any in-flight firing becomes stale.
    pub fn cancel(&mut self) {
        self.armed = false;
    }

    /// Whether the timer is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Tests whether an arriving event carrying `token` is the live firing
    /// of this timer. On success the timer disarms (one-shot semantics).
    pub fn fires(&mut self, token: TimerGeneration) -> bool {
        if self.armed && token.0 == self.generation {
            self.armed = false;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_timer_is_disarmed() {
        let t = TimerSlot::new();
        assert!(!t.is_armed());
    }

    #[test]
    fn fires_once() {
        let mut t = TimerSlot::new();
        let g = t.arm();
        assert!(t.is_armed());
        assert!(t.fires(g));
        assert!(!t.is_armed());
        assert!(!t.fires(g), "a timer must not fire twice");
    }

    #[test]
    fn cancel_invalidates_pending_firing() {
        let mut t = TimerSlot::new();
        let g = t.arm();
        t.cancel();
        assert!(!t.fires(g));
    }

    #[test]
    fn rearm_invalidates_previous_generation() {
        let mut t = TimerSlot::new();
        let g1 = t.arm();
        let g2 = t.arm();
        assert!(!t.fires(g1));
        assert!(t.fires(g2));
    }

    #[test]
    fn stale_token_after_rearm_does_not_disarm() {
        let mut t = TimerSlot::new();
        let g1 = t.arm();
        let g2 = t.arm();
        assert!(!t.fires(g1), "stale firing ignored");
        assert!(t.is_armed(), "live arming must survive a stale firing");
        assert!(t.fires(g2));
    }
}
