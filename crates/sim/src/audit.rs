//! Runtime invariant auditing for the event loop (feature `audit`).
//!
//! An [`Auditor`] observes every event the [`Simulation`](crate::Simulation)
//! dispatches and panics the moment an invariant is violated, so a broken
//! run dies at the first corrupt state instead of producing subtly wrong
//! statistics. Auditors are installed with
//! [`Simulation::add_auditor`](crate::Simulation::add_auditor); without the
//! `audit` cargo feature neither the hooks nor this module exist, so the
//! event loop carries zero auditing cost in normal builds.
//!
//! This module ships the world-agnostic [`CausalityAuditor`];
//! protocol-aware auditors (NAV consistency, transceiver legality, airtime
//! conservation) live with the world types they inspect, in `dirca-net`.

use crate::{Scheduler, SimTime, World};

/// Observes the event loop for invariant violations.
///
/// All hooks default to no-ops so an auditor only implements the ones it
/// needs. Implementations signal a violation by panicking with a message
/// prefixed `audit[<name>]:`.
pub trait Auditor<W: World>: std::fmt::Debug {
    /// Called with the event about to be dispatched, before the world sees
    /// it. `now` is already the event's timestamp.
    fn before_event(&mut self, now: SimTime, event: &W::Event, world: &W) {
        let _ = (now, event, world);
    }

    /// Called after the world handled the event (and possibly scheduled
    /// follow-ups).
    fn after_event(&mut self, now: SimTime, world: &W, sched: &Scheduler<W::Event>) {
        let _ = (now, world, sched);
    }

    /// Called once from [`Simulation::finish_audit`](crate::Simulation::finish_audit)
    /// so auditors can check whole-run conservation laws.
    fn finish(&mut self, now: SimTime, world: &W) {
        let _ = (now, world);
    }
}

/// Checks event-queue causality: the clock never moves backwards and no
/// pending event ever lies in the past.
///
/// The [`Scheduler`](crate::Scheduler) already panics on
/// `schedule_at` into the past; this auditor additionally catches clock or
/// queue corruption introduced through any other path (a broken queue
/// ordering, a world that tampers with timestamps).
#[derive(Debug, Default)]
pub struct CausalityAuditor {
    last: Option<SimTime>,
}

impl CausalityAuditor {
    /// Creates the auditor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<W: World> Auditor<W> for CausalityAuditor {
    fn before_event(&mut self, now: SimTime, _event: &W::Event, _world: &W) {
        if let Some(last) = self.last {
            assert!(
                now >= last,
                "audit[causality]: clock moved backwards: event at {now} dispatched after {last}"
            );
        }
        self.last = Some(now);
    }

    fn after_event(&mut self, now: SimTime, _world: &W, sched: &Scheduler<W::Event>) {
        if let Some(next) = sched.next_event_time() {
            assert!(
                next >= now,
                "audit[causality]: pending event at {next} lies in the past of {now}"
            );
        }
    }
}
