//! A deterministic discrete-event simulation engine.
//!
//! This crate is the reproduction's substitute for the GloMoSim/Parsec
//! simulation kernel used in the paper. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-nanosecond clock with no
//!   floating-point drift.
//! * [`EventQueue`] — a stable priority queue: events at equal timestamps
//!   pop in scheduling (FIFO) order, which keeps runs reproducible.
//! * [`Simulation`] — the event loop driving a user-provided [`World`],
//!   with an optional [`Watchdog`] that turns runaway runs into structured
//!   [`RunAborted`] results.
//! * [`rng`] — seed derivation for independent, reproducible random streams.
//! * [`TimerSlot`] — generation-counter timers with O(1) logical
//!   cancellation.
//!
//! # Example
//!
//! ```
//! use dirca_sim::{Simulation, SimDuration, SimTime, World, Scheduler};
//!
//! struct Counter { fired: u32 }
//!
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_in(SimDuration::from_micros(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.scheduler_mut().schedule_in(SimDuration::ZERO, Ev::Tick);
//! sim.run_until(SimTime::from_micros(1_000));
//! assert_eq!(sim.world().fired, 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
// The engine never indexes unchecked: feasible here, so gate it.
#![warn(clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::indexing_slicing))]

mod engine;
mod queue;
mod time;
mod timer;

#[cfg(feature = "audit")]
pub mod audit;
#[cfg(feature = "trace")]
pub mod probe;
pub mod rng;

pub use engine::{AbortReason, RunAborted, Scheduler, Simulation, Watchdog, World};
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
pub use timer::{TimerGeneration, TimerSlot};
