//! Seed derivation for independent, reproducible random streams.
//!
//! Every experiment uses one *master seed*; per-topology and per-node
//! streams are derived with SplitMix64 so that (a) runs are exactly
//! reproducible, (b) adding or removing one stream does not shift any other
//! stream, and (c) streams with nearby identifiers are statistically
//! independent.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One round of SplitMix64 applied to `x` — a strong 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `master` and a stream identifier.
///
/// Deriving with the same `(master, stream)` always yields the same seed;
/// distinct streams yield decorrelated seeds.
///
/// # Example
///
/// ```
/// use dirca_sim::rng::derive_seed;
///
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master) ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Creates a [`SmallRng`] for stream `stream` of master seed `master`.
///
/// # Example
///
/// ```
/// use dirca_sim::rng::stream_rng;
/// use rand::Rng;
///
/// let mut a = stream_rng(1, 0);
/// let mut b = stream_rng(1, 0);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        for master in [0u64, 1, u64::MAX] {
            for stream in [0u64, 1, 999] {
                assert_eq!(derive_seed(master, stream), derive_seed(master, stream));
            }
        }
    }

    #[test]
    fn nearby_streams_are_decorrelated() {
        // Crude independence check: adjacent streams should not share any
        // obvious bit pattern.
        let a = derive_seed(12345, 0);
        let b = derive_seed(12345, 1);
        let differing_bits = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing_bits),
            "suspicious bit overlap: {differing_bits} differing bits"
        );
    }

    #[test]
    fn zero_master_and_stream_do_not_collapse() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
    }

    #[test]
    fn stream_rngs_reproduce() {
        let xs: Vec<u32> = stream_rng(7, 3).random_iter().take(8).collect();
        let ys: Vec<u32> = stream_rng(7, 3).random_iter().take(8).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn distinct_streams_disagree() {
        let xs: Vec<u32> = stream_rng(7, 3).random_iter().take(8).collect();
        let ys: Vec<u32> = stream_rng(7, 4).random_iter().take(8).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_values_roughly_uniform() {
        let mut rng = stream_rng(99, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
