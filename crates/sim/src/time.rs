//! Integer-nanosecond simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// `SimTime` is a newtype over `u64`: a run can last ~584 years of simulated
/// time before overflow, and arithmetic is exact — no floating-point clock
/// drift across billions of events.
///
/// # Example
///
/// ```
/// use dirca_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(20);
/// assert_eq!(t.as_nanos(), 20_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since the start of the run.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since the start of the run.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds since the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`], returning zero when
    /// `earlier` is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        rhs * self
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_since_and_saturating() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.duration_since(early), SimDuration::from_nanos(20));
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_on_negative() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(20);
        assert_eq!(d * 3, SimDuration::from_micros(60));
        assert_eq!(3 * d, d * 3);
        assert_eq!(d / 2, SimDuration::from_micros(10));
    }

    #[test]
    fn checked_and_saturating_sub() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(8);
        assert_eq!(b.checked_sub(a), Some(SimDuration::from_nanos(3)));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn float_conversions() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_micros(250).as_micros_f64() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats_by_magnitude() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert!(format!("{}", SimDuration::from_micros(5)).contains("µs"));
        assert!(format!("{}", SimDuration::from_millis(5)).contains("ms"));
        assert!(format!("{}", SimDuration::from_secs(5)).contains('s'));
        assert!(!format!("{}", SimTime::ZERO).is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = SimTime::MAX + SimDuration::from_nanos(1);
    }
}
