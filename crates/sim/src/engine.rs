//! The event loop.

use std::fmt;

use crate::{EventQueue, SimDuration, SimTime};

/// Runaway-run guard: hard budgets on a simulation's total event count and
/// simulated clock, enforced by [`Simulation::try_run_until`].
///
/// A stuck world (a zero-delay event loop, a pathological retry storm)
/// never drains its queue and never passes its deadline; the watchdog
/// bounds such a run and turns it into a structured [`RunAborted`] the
/// caller can report instead of spinning forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum events the simulation may dispatch over its whole lifetime
    /// (not per `run_until` call).
    pub max_events: u64,
    /// Latest simulated instant an event may fire at.
    pub max_sim_time: SimTime,
}

impl Watchdog {
    /// A watchdog bounding only the lifetime event count.
    pub fn max_events(limit: u64) -> Self {
        Watchdog {
            max_events: limit,
            max_sim_time: SimTime::MAX,
        }
    }

    /// A watchdog bounding only the simulated clock.
    pub fn max_sim_time(limit: SimTime) -> Self {
        Watchdog {
            max_events: u64::MAX,
            max_sim_time: limit,
        }
    }
}

/// Which [`Watchdog`] budget a run exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The lifetime event budget was spent.
    MaxEvents,
    /// The next event would fire past the simulated-time ceiling.
    MaxSimTime,
}

/// Structured report of a run terminated by its [`Watchdog`].
///
/// The simulation is left in a consistent state — the offending event is
/// still queued, the clock reads the last dispatched instant — so state can
/// be inspected post-mortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunAborted {
    /// Which budget tripped.
    pub reason: AbortReason,
    /// Events dispatched when the guard tripped.
    pub events: u64,
    /// Simulated clock at the trip.
    pub now: SimTime,
}

impl fmt::Display for RunAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            AbortReason::MaxEvents => write!(
                f,
                "watchdog: event budget exhausted after {} events at {}",
                self.events, self.now
            ),
            AbortReason::MaxSimTime => write!(
                f,
                "watchdog: simulated-time ceiling hit at {} after {} events",
                self.now, self.events
            ),
        }
    }
}

impl std::error::Error for RunAborted {}

/// A simulated world: the state acted upon by events.
///
/// Implementations define an event type and a handler; the handler may
/// schedule further events through the [`Scheduler`].
pub trait World {
    /// The event type processed by this world.
    type Event;

    /// Handles one event at simulated instant `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Schedules future events; passed to [`World::handle`] and available from
/// the [`Simulation`] for priming initial events.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Reserves queue room for at least `additional` more pending events.
    ///
    /// Worlds that know their steady-state event population (e.g. nodes ×
    /// per-handshake event count) call this while priming so the queue
    /// never re-grows on the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant — scheduling into
    /// the past would silently corrupt causality.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {now}",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}

/// A discrete-event simulation: a [`World`] plus the event loop state.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    scheduler: Scheduler<W::Event>,
    processed: u64,
    watchdog: Option<Watchdog>,
    #[cfg(feature = "audit")]
    auditors: Vec<Box<dyn crate::audit::Auditor<W>>>,
    #[cfg(feature = "trace")]
    probe: Option<Box<dyn crate::probe::Probe<W>>>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation over `world` with an empty event queue at time
    /// zero.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            scheduler: Scheduler::new(),
            processed: 0,
            watchdog: None,
            #[cfg(feature = "audit")]
            auditors: Vec::new(),
            #[cfg(feature = "trace")]
            probe: None,
        }
    }

    /// Installs (or clears) the runaway watchdog checked by
    /// [`Simulation::try_run_until`].
    pub fn set_watchdog(&mut self, watchdog: Option<Watchdog>) {
        self.watchdog = watchdog;
    }

    /// The installed watchdog, if any.
    pub fn watchdog(&self) -> Option<Watchdog> {
        self.watchdog
    }

    /// Installs a runtime invariant auditor; it observes every event
    /// dispatched from now on and panics on the first violation.
    #[cfg(feature = "audit")] // audit-allow(gate-symmetry): signature needs the gated Auditor trait; callers gate themselves
    pub fn add_auditor(&mut self, auditor: Box<dyn crate::audit::Auditor<W>>) {
        self.auditors.push(auditor);
    }

    /// Runs every installed auditor's end-of-run check (whole-run
    /// conservation laws). Call after the last `run_until`.
    #[cfg(feature = "audit")]
    pub fn finish_audit(&mut self) {
        let now = self.scheduler.now;
        for auditor in &mut self.auditors {
            auditor.finish(now, &self.world);
        }
    }

    /// No-op counterpart of `finish_audit` so call sites compile
    /// identically with the `audit` feature off.
    #[cfg(not(feature = "audit"))]
    pub fn finish_audit(&mut self) {}

    /// Installs (or clears) the dispatch-loop probe; it observes every
    /// event dispatched from now on.
    #[cfg(feature = "trace")] // audit-allow(gate-symmetry): signature needs the gated Probe trait; callers gate themselves
    pub fn set_probe(&mut self, probe: Option<Box<dyn crate::probe::Probe<W>>>) {
        self.probe = probe;
    }

    /// Removes and returns the installed probe, if any.
    #[cfg(feature = "trace")] // audit-allow(gate-symmetry): signature needs the gated Probe trait; callers gate themselves
    pub fn take_probe(&mut self) -> Option<Box<dyn crate::probe::Probe<W>>> {
        self.probe.take()
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The scheduler, for priming initial events.
    pub fn scheduler_mut(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.scheduler
    }

    /// Simultaneous mutable access to the world and the scheduler, for
    /// initialization code that must mutate the world while scheduling its
    /// first events.
    pub fn world_and_scheduler_mut(&mut self) -> (&mut W, &mut Scheduler<W::Event>) {
        (&mut self.world, &mut self.scheduler)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.scheduler.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Runs until the queue empties or the next event would fire after
    /// `deadline`. Events exactly at `deadline` are processed. Returns the
    /// number of events processed by this call.
    ///
    /// On return the clock reads `deadline` if the run was cut short by it,
    /// or the time of the last processed event if the queue drained first.
    ///
    /// # Panics
    ///
    /// Panics if an installed [`Watchdog`] budget trips; use
    /// [`Simulation::try_run_until`] to handle the abort as a value.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.try_run_until(deadline)
            .unwrap_or_else(|abort| panic!("{abort}"))
    }

    /// Like [`Simulation::run_until`], but stops with a structured
    /// [`RunAborted`] when an installed [`Watchdog`] budget trips instead of
    /// panicking. Without a watchdog this never returns `Err`.
    ///
    /// On abort the offending event is left in the queue and the clock
    /// reads the last dispatched instant, so the world remains inspectable.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<u64, RunAborted> {
        let before = self.processed;
        while let Some(t) = self.scheduler.queue.peek_time() {
            if t > deadline {
                self.scheduler.now = deadline;
                return Ok(self.processed - before);
            }
            if let Some(w) = self.watchdog {
                let reason = if self.processed >= w.max_events {
                    Some(AbortReason::MaxEvents)
                } else if t > w.max_sim_time {
                    Some(AbortReason::MaxSimTime)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    return Err(RunAborted {
                        reason,
                        events: self.processed,
                        now: self.scheduler.now,
                    });
                }
            }
            // panic-path: a successful peek above guarantees the queue is
            // non-empty, and nothing between the peek and this pop touches it.
            let (time, event) = self.scheduler.queue.pop().expect("peeked event vanished");
            debug_assert!(time >= self.scheduler.now, "event queue went backwards");
            self.dispatch(time, event);
        }
        if deadline != SimTime::MAX {
            self.scheduler.now = deadline;
        }
        Ok(self.processed - before)
    }

    /// Runs until the event queue is empty.
    ///
    /// Prefer [`Simulation::run_until`] for worlds that reschedule
    /// unconditionally (e.g. saturated traffic sources), which never drain.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Processes at most one event; returns its timestamp, or `None` if the
    /// queue was empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (time, event) = self.scheduler.queue.pop()?;
        self.dispatch(time, event);
        Some(time)
    }

    /// Advances the clock to `time` and hands `event` to the world,
    /// running the auditor hooks (feature `audit`) and the probe hooks
    /// (feature `trace`) around the dispatch.
    fn dispatch(&mut self, time: SimTime, event: W::Event) {
        self.scheduler.now = time;
        #[cfg(feature = "audit")]
        for auditor in &mut self.auditors {
            auditor.before_event(time, &event, &self.world);
        }
        #[cfg(feature = "trace")]
        if let Some(probe) = &mut self.probe {
            probe.before_event(time, &event);
        }
        self.world.handle(time, event, &mut self.scheduler);
        self.processed += 1;
        #[cfg(feature = "trace")]
        if let Some(probe) = &mut self.probe {
            probe.after_event(time);
        }
        #[cfg(feature = "audit")]
        for auditor in &mut self.auditors {
            auditor.after_event(time, &self.world, &self.scheduler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records (time, label) pairs; `Spawn` events fan out two `Leaf` events.
    struct Recorder {
        log: Vec<(SimTime, &'static str)>,
    }

    enum Ev {
        Spawn,
        Leaf(&'static str),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Spawn => {
                    self.log.push((now, "spawn"));
                    sched.schedule_in(SimDuration::from_nanos(10), Ev::Leaf("a"));
                    sched.schedule_in(SimDuration::from_nanos(10), Ev::Leaf("b"));
                }
                Ev::Leaf(l) => self.log.push((now, l)),
            }
        }
    }

    #[test]
    fn events_fire_in_order_with_fifo_ties() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(5), Ev::Spawn);
        let n = sim.run_to_completion();
        assert_eq!(n, 3);
        assert_eq!(
            sim.world().log,
            vec![
                (SimTime::from_nanos(5), "spawn"),
                (SimTime::from_nanos(15), "a"),
                (SimTime::from_nanos(15), "b"),
            ]
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(5), Ev::Spawn);
        // Deadline before the leaves fire.
        let n = sim.run_until(SimTime::from_nanos(10));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_nanos(10));
        assert_eq!(sim.scheduler_mut().pending(), 2);
        // Resume to completion.
        sim.run_until(SimTime::from_nanos(100));
        assert_eq!(sim.world().log.len(), 3);
        assert_eq!(sim.now(), SimTime::from_nanos(100));
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn deadline_inclusive() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(10), Ev::Leaf("edge"));
        let n = sim.run_until(SimTime::from_nanos(10));
        assert_eq!(n, 1);
    }

    #[test]
    fn step_processes_single_event() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        assert_eq!(sim.step(), None);
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(7), Ev::Spawn);
        assert_eq!(sim.step(), Some(SimTime::from_nanos(7)));
        assert_eq!(sim.world().log.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(5), Ev::Spawn);
        sim.run_to_completion();
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(1), Ev::Spawn);
    }

    /// A world that reschedules itself forever: one event per nanosecond.
    struct Runaway;

    impl World for Runaway {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _event: (), sched: &mut Scheduler<()>) {
            sched.schedule_in(SimDuration::from_nanos(1), ());
        }
    }

    #[test]
    fn watchdog_event_budget_aborts_runaway() {
        let mut sim = Simulation::new(Runaway);
        sim.set_watchdog(Some(Watchdog::max_events(1000)));
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        let abort = sim
            .try_run_until(SimTime::MAX)
            .expect_err("a runaway world must trip the event budget");
        assert_eq!(abort.reason, AbortReason::MaxEvents);
        assert_eq!(abort.events, 1000);
        assert_eq!(sim.events_processed(), 1000);
        // The offending event stays queued; the sim is resumable after the
        // budget is raised.
        assert_eq!(sim.scheduler_mut().pending(), 1);
        sim.set_watchdog(Some(Watchdog::max_events(1500)));
        let abort = sim.try_run_until(SimTime::MAX).expect_err("still runaway");
        assert_eq!(abort.events, 1500);
    }

    #[test]
    fn watchdog_sim_time_ceiling_aborts() {
        let mut sim = Simulation::new(Runaway);
        sim.set_watchdog(Some(Watchdog::max_sim_time(SimTime::from_nanos(50))));
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        let abort = sim
            .try_run_until(SimTime::MAX)
            .expect_err("the clock must hit the ceiling");
        assert_eq!(abort.reason, AbortReason::MaxSimTime);
        assert_eq!(abort.now, SimTime::from_nanos(50));
    }

    #[test]
    fn watchdog_within_budget_is_invisible() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.set_watchdog(Some(Watchdog::max_events(1_000_000)));
        sim.scheduler_mut()
            .schedule_at(SimTime::from_nanos(5), Ev::Spawn);
        let n = sim
            .try_run_until(SimTime::from_nanos(100))
            .expect("well within budget");
        assert_eq!(n, 3);
        assert_eq!(sim.now(), SimTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "watchdog: event budget exhausted")]
    fn run_until_panics_on_watchdog_trip() {
        let mut sim = Simulation::new(Runaway);
        sim.set_watchdog(Some(Watchdog::max_events(10)));
        sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
        sim.run_until(SimTime::MAX);
    }

    #[test]
    fn abort_report_formats_both_reasons() {
        let by_events = RunAborted {
            reason: AbortReason::MaxEvents,
            events: 7,
            now: SimTime::from_nanos(3),
        };
        assert!(by_events.to_string().contains("event budget"));
        let by_time = RunAborted {
            reason: AbortReason::MaxSimTime,
            events: 7,
            now: SimTime::from_nanos(3),
        };
        assert!(by_time.to_string().contains("simulated-time ceiling"));
    }

    #[test]
    fn into_world_returns_state() {
        let mut sim = Simulation::new(Recorder { log: Vec::new() });
        sim.scheduler_mut()
            .schedule_at(SimTime::ZERO, Ev::Leaf("x"));
        sim.run_to_completion();
        let w = sim.into_world();
        assert_eq!(w.log.len(), 1);
    }
}
