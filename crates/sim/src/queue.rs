//! A stable timestamp-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops the earliest event
/// first and breaks timestamp ties in insertion (FIFO) order.
///
/// The FIFO tie-break matters for reproducibility: a plain binary heap pops
/// equal-timestamp events in an arbitrary order that can change with
/// unrelated code edits, silently reshuffling simulated collisions.
///
/// # Example
///
/// ```
/// use dirca_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "late");
/// q.push(SimTime::from_nanos(1), "early");
/// q.push(SimTime::from_nanos(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[7u64, 3, 9, 1, 5] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        for expect in 0..100 {
            assert_eq!(q.pop().unwrap().1, expect);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(20), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_nanos(15), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(3), ());
        q.push(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }
}
