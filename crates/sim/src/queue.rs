//! A stable timestamp-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs that pops the earliest event
/// first and breaks timestamp ties in insertion (FIFO) order.
///
/// The FIFO tie-break matters for reproducibility: a plain binary heap pops
/// equal-timestamp events in an arbitrary order that can change with
/// unrelated code edits, silently reshuffling simulated collisions.
///
/// # Representation
///
/// Event payloads live in a slab indexed by a free list; the heap itself
/// holds only fixed-size `(time, seq, slot)` keys. Sift operations on a
/// binary heap move entries around on every push and pop, so keeping the
/// moved entries at three words — independent of `size_of::<E>()` — is a
/// measurable win for worlds with large event payloads. Ordering is
/// unchanged: the heap still compares exactly `(time, seq)`.
///
/// # Example
///
/// ```
/// use dirca_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "late");
/// q.push(SimTime::from_nanos(1), "early");
/// q.push(SimTime::from_nanos(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    /// Payload storage; `None` marks a free slot.
    slab: Vec<Option<E>>,
    /// Indices of free slab slots, reused LIFO.
    free: Vec<u32>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue pre-sized for at least `capacity` pending
    /// events, so a simulation with a known steady-state event population
    /// never re-grows the heap mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.slab.reserve(additional);
        self.free.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Inserts `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics after `u32::MAX` simultaneously pending events (the slab
    /// index width); a simulation queue that size has long since exhausted
    /// memory.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                *self
                    .slab
                    .get_mut(slot as usize)
                    .expect("free list only holds in-range slots") = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event queue slab overflow");
                self.slab.push(Some(event));
                slot
            }
        };
        self.heap.push(Entry { time, seq, slot });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // panic-path: heap entries and slab slots are created and retired
        // together, so a popped entry always references an occupied slot.
        let entry = self.heap.pop()?;
        let event = self
            .slab
            .get_mut(entry.slot as usize)
            .and_then(Option::take)
            .expect("heap entry must reference an occupied slab slot");
        self.free.push(entry.slot);
        Some((entry.time, event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slab.clear();
        self.free.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[7u64, 3, 9, 1, 5] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        for expect in 0..100 {
            assert_eq!(q.pop().unwrap().1, expect);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(20), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_nanos(15), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn peek_len_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(3), ());
        q.push(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_preallocates() {
        let q: EventQueue<u64> = EventQueue::with_capacity(1024);
        assert!(q.is_empty());
        assert!(q.capacity() >= 1024);
    }

    #[test]
    fn reserve_grows_capacity_without_touching_contents() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(2), 'b');
        q.push(SimTime::from_nanos(1), 'a');
        q.reserve(500);
        assert!(q.capacity() >= 502);
        assert_eq!(q.pop().unwrap().1, 'a');
        assert_eq!(q.pop().unwrap().1, 'b');
    }

    #[test]
    fn preallocated_queue_never_regrows_within_capacity() {
        let mut q = EventQueue::with_capacity(100);
        let cap = q.capacity();
        for i in 0..100u64 {
            q.push(SimTime::from_nanos(i % 7), i);
        }
        assert_eq!(q.capacity(), cap, "pushes within capacity must not grow");
    }
}
