//! Model-based property test for the transceiver.
//!
//! Generates random signal timelines (arrivals with random start/duration
//! and headings, interleaved with transmit windows), replays them through
//! [`Transceiver`], and checks every delivery decision against an
//! independent oracle computed directly from the timeline:
//!
//! under omni reception a frame is delivered iff no other signal and no
//! own-transmission window overlaps its `[start, end)` interval.

use dirca_geometry::Angle;
use dirca_radio::{ReceptionMode, SignalId, Transceiver};
use dirca_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Sig {
    start: u64,
    end: u64,
    heading_deg: u16,
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// The oracle: delivered iff no other signal overlaps and no tx window
/// overlaps.
fn oracle(signals: &[Sig], tx: &[(u64, u64)], i: usize) -> bool {
    let me = (signals[i].start, signals[i].end);
    let jammed = signals
        .iter()
        .enumerate()
        .any(|(j, s)| j != i && overlaps(me, (s.start, s.end)));
    let deaf = tx.iter().any(|&w| overlaps(me, w));
    !jammed && !deaf
}

/// Replays the timeline and returns the delivered flags per signal.
fn replay(signals: &[Sig], tx: &[(u64, u64)]) -> Vec<bool> {
    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
    enum Edge {
        // Order at equal times: ends first, then tx-end, tx-start, starts.
        // (Signals touching end-to-start do not overlap: half-open.)
        SigEnd(usize),
        TxEnd,
        TxStart,
        SigStart(usize),
    }
    let mut edges: Vec<(u64, Edge)> = Vec::new();
    for (i, s) in signals.iter().enumerate() {
        edges.push((s.start, Edge::SigStart(i)));
        edges.push((s.end, Edge::SigEnd(i)));
    }
    for &(a, b) in tx {
        edges.push((a, Edge::TxStart));
        edges.push((b, Edge::TxEnd));
    }
    edges.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(&y.1)));

    let mut rx = Transceiver::new(ReceptionMode::Omni);
    let mut delivered = vec![false; signals.len()];
    for (t, edge) in edges {
        match edge {
            Edge::SigStart(i) => {
                rx.signal_arrives(
                    SignalId(i as u64),
                    Angle::from_degrees(f64::from(signals[i].heading_deg)),
                    SimTime::from_nanos(signals[i].end),
                );
                let _ = t;
            }
            Edge::SigEnd(i) => {
                delivered[i] = rx.signal_ends(SignalId(i as u64)).delivered;
            }
            Edge::TxStart => rx.begin_transmit(),
            Edge::TxEnd => rx.end_transmit(),
        }
    }
    delivered
}

/// Strategy: up to 6 signals with random half-open windows in [0, 100).
fn signals_strategy() -> impl Strategy<Value = Vec<Sig>> {
    prop::collection::vec(
        (0u64..90, 1u64..30, 0u16..360).prop_map(|(start, len, heading_deg)| Sig {
            start,
            end: start + len,
            heading_deg,
        }),
        1..6,
    )
}

/// Strategy: up to 2 non-overlapping tx windows placed after sorting.
fn tx_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..90, 1u64..15), 0..3).prop_map(|mut raw| {
        raw.sort_unstable();
        let mut windows: Vec<(u64, u64)> = Vec::new();
        for (start, len) in raw {
            let start = windows.last().map_or(start, |&(_, e)| start.max(e + 1));
            windows.push((start, start + len));
        }
        windows
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn deliveries_match_overlap_oracle(signals in signals_strategy(), tx in tx_strategy()) {
        let delivered = replay(&signals, &tx);
        for i in 0..signals.len() {
            let expect = oracle(&signals, &tx, i);
            prop_assert_eq!(
                delivered[i],
                expect,
                "signal {} [{}, {}): got {}, oracle {} (signals {:?}, tx {:?})",
                i, signals[i].start, signals[i].end, delivered[i], expect, &signals, &tx
            );
        }
    }

    #[test]
    fn transceiver_ends_idle(signals in signals_strategy(), tx in tx_strategy()) {
        // After every edge is replayed the medium must read idle: no
        // leaked arrivals, no stuck transmit flag.
        let mut rx = Transceiver::new(ReceptionMode::Omni);
        let mut edges: Vec<(u64, i32, usize)> = Vec::new();
        for (i, s) in signals.iter().enumerate() {
            edges.push((s.start, 2, i));
            edges.push((s.end, 0, i));
        }
        for (k, &(a, b)) in tx.iter().enumerate() {
            edges.push((a, 3, k));
            edges.push((b, 1, k));
        }
        edges.sort_unstable();
        for (_, kind, i) in edges {
            match kind {
                2 => {
                    rx.signal_arrives(SignalId(i as u64), Angle::ZERO, SimTime::ZERO);
                }
                0 => {
                    rx.signal_ends(SignalId(i as u64));
                }
                3 => rx.begin_transmit(),
                1 => rx.end_transmit(),
                _ => unreachable!(),
            }
        }
        prop_assert!(!rx.carrier_busy(), "transceiver left busy after all edges");
    }
}
