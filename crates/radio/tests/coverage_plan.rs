//! Property tests pinning [`CoveragePlan`] to the reference channel
//! queries it caches.
//!
//! The plan is *built by* the reference implementation, so these tests
//! guard against the failure mode that matters: the lookup tables drifting
//! from `Channel::covered_by` / `heading` / `distance` under a future
//! "optimisation" of the build. Every property is checked across random
//! topologies and beamwidths, including the θ = 360° aliasing case and
//! degenerate collinear layouts where sector membership sits on the
//! boundary.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_geometry::{Beamwidth, Point};
use dirca_radio::{Channel, CoveragePlan, NodeId, TxPattern};
use dirca_sim::SimDuration;
use proptest::prelude::*;

fn positions_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(x, y)| Point::new(x, y)),
        2..12,
    )
}

/// Nodes on a shared line through the origin: every heading is either the
/// line's bearing or its opposite, so beam-edge membership is exercised
/// constantly.
fn collinear_strategy() -> impl Strategy<Value = Vec<Point>> {
    let pi = std::f64::consts::PI;
    (prop::collection::vec(-3.0f64..3.0, 2..10), -pi..pi).prop_map(|(ts, angle)| {
        ts.iter()
            .map(|t| Point::new(t * angle.cos(), t * angle.sin()))
            .collect()
    })
}

fn beamwidth_strategy() -> impl Strategy<Value = Beamwidth> {
    prop_oneof![
        (1.0f64..360.0).prop_map(|d| Beamwidth::from_degrees(d).unwrap()),
        // Weight the exact-360° aliasing path explicitly; a uniform draw
        // essentially never lands on it.
        Just(Beamwidth::OMNI),
    ]
}

fn channel(positions: Vec<Point>) -> Channel {
    Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap()
}

/// Asserts every plan lookup equals its reference query on `chan`.
fn assert_plan_matches_reference(chan: &Channel, beamwidth: Beamwidth) {
    let plan = CoveragePlan::new(chan, beamwidth);
    for a in 0..chan.len() {
        let a = NodeId(a);
        // Distance and heading matrices: bit-for-bit, not approximately —
        // the plan must be a cache, not a recomputation.
        for b in 0..chan.len() {
            let b = NodeId(b);
            assert_eq!(
                plan.distance(a, b).to_bits(),
                chan.distance(a, b).unwrap().to_bits(),
                "distance {a} → {b}"
            );
            assert_eq!(
                plan.heading(a, b).radians().to_bits(),
                chan.heading(a, b).unwrap().radians().to_bits(),
                "heading {a} → {b}"
            );
        }
        // Omni neighbour lists.
        assert_eq!(
            plan.neighbors(a),
            chan.covered_by(a, TxPattern::Omni).unwrap().as_slice(),
            "omni neighbourhood of {a}"
        );
        // Directional sets for every precomputable aim.
        for &dst in plan.neighbors(a) {
            let pattern = TxPattern::aimed(
                chan.position(a).unwrap(),
                chan.position(dst).unwrap(),
                beamwidth,
            );
            assert_eq!(
                plan.directional_coverage(a, dst).unwrap(),
                chan.covered_by(a, pattern).unwrap().as_slice(),
                "aim {a} → {dst} at θ = {}°",
                beamwidth.degrees()
            );
        }
    }
}

proptest! {
    // 128 random cases each across three properties (plus the collinear
    // and 360° variants below) comfortably exceeds 200 distinct
    // topology × beamwidth draws per run.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_matches_reference_on_random_topologies(
        positions in positions_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        assert_plan_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn plan_matches_reference_on_collinear_topologies(
        positions in collinear_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        // Collinear nodes put receivers exactly on beam boresights and
        // exactly opposite them: the sector boundary is hit on purpose.
        assert_plan_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn full_circle_beam_equals_omni_footprint(positions in positions_strategy()) {
        // θ = 360° must alias the omni neighbourhood: a full-circle beam
        // and the omni pattern are the same physical footprint.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, Beamwidth::OMNI);
        for src in 0..chan.len() {
            let src = NodeId(src);
            for &dst in plan.neighbors(src) {
                prop_assert_eq!(
                    plan.directional_coverage(src, dst).unwrap(),
                    plan.neighbors(src),
                    "360° aim {} → {} diverged from omni", src, dst
                );
            }
        }
    }

    #[test]
    fn non_neighbor_aims_have_no_slice(
        positions in positions_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        // The plan only precomputes aims a MAC can produce (reachable
        // destinations); everything else reports `None` so callers take
        // the reference fallback rather than reading a wrong slice.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, beamwidth);
        for src in 0..chan.len() {
            let src = NodeId(src);
            let neighbors = plan.neighbors(src);
            for dst in 0..chan.len() {
                let dst = NodeId(dst);
                if !neighbors.contains(&dst) {
                    prop_assert_eq!(
                        plan.directional_coverage(src, dst), None,
                        "unreachable aim {} → {} has a precomputed slice", src, dst
                    );
                }
            }
        }
    }
}
