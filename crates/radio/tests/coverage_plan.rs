//! Property tests pinning [`CoveragePlan`] to the reference channel
//! queries it serves.
//!
//! The plan is grid-backed — candidates come from a 3×3 cell superset and
//! are filtered by the reference predicates — so these tests guard
//! against the failure mode that matters: the index drifting from
//! `Channel::covered_by` / `heading` / `distance` under a future
//! "optimisation" of the build. Every property is checked across random
//! topologies and beamwidths, including the θ = 360° equivalence case and
//! degenerate collinear layouts where sector membership sits on the
//! boundary.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_geometry::{Beamwidth, Point};
use dirca_radio::{Channel, CoveragePlan, NodeId, TxPattern};
use dirca_sim::SimDuration;
use proptest::prelude::*;

fn positions_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(x, y)| Point::new(x, y)),
        2..12,
    )
}

/// Nodes on a shared line through the origin: every heading is either the
/// line's bearing or its opposite, so beam-edge membership is exercised
/// constantly.
fn collinear_strategy() -> impl Strategy<Value = Vec<Point>> {
    let pi = std::f64::consts::PI;
    (prop::collection::vec(-3.0f64..3.0, 2..10), -pi..pi).prop_map(|(ts, angle)| {
        ts.iter()
            .map(|t| Point::new(t * angle.cos(), t * angle.sin()))
            .collect()
    })
}

fn beamwidth_strategy() -> impl Strategy<Value = Beamwidth> {
    prop_oneof![
        (1.0f64..360.0).prop_map(|d| Beamwidth::from_degrees(d).unwrap()),
        // Weight the exact-360° equivalence path explicitly; a uniform
        // draw essentially never lands on it.
        Just(Beamwidth::OMNI),
    ]
}

fn channel(positions: Vec<Point>) -> Channel {
    Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap()
}

/// Asserts every plan lookup equals its reference query on `chan`.
fn assert_plan_matches_reference(chan: &Channel, beamwidth: Beamwidth) {
    let plan = CoveragePlan::new(chan, beamwidth);
    for a in 0..chan.len() {
        let a = NodeId(a);
        // Distance and heading: bit-for-bit, not approximately — the plan
        // must evaluate the exact reference expressions.
        for b in 0..chan.len() {
            let b = NodeId(b);
            assert_eq!(
                plan.distance(a, b).to_bits(),
                chan.distance(a, b).unwrap().to_bits(),
                "distance {a} → {b}"
            );
            assert_eq!(
                plan.heading(a, b).radians().to_bits(),
                chan.heading(a, b).unwrap().radians().to_bits(),
                "heading {a} → {b}"
            );
        }
        // Omni neighbour lists.
        assert_eq!(
            plan.neighbors(a),
            chan.covered_by(a, TxPattern::Omni).unwrap().as_slice(),
            "omni neighbourhood of {a}"
        );
        // Directional footprints for *every* aim — in-range neighbours,
        // unreachable peers, and the self-aim degenerate case alike.
        for dst in 0..chan.len() {
            let dst = NodeId(dst);
            let pattern = TxPattern::aimed(
                chan.position(a).unwrap(),
                chan.position(dst).unwrap(),
                beamwidth,
            );
            assert_eq!(
                plan.directional_coverage(a, dst),
                chan.covered_by(a, pattern).unwrap(),
                "aim {a} → {dst} at θ = {}°",
                beamwidth.degrees()
            );
        }
    }
}

proptest! {
    // 128 random cases each across three properties (plus the collinear
    // and 360° variants below) comfortably exceeds 200 distinct
    // topology × beamwidth draws per run.
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_matches_reference_on_random_topologies(
        positions in positions_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        assert_plan_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn plan_matches_reference_on_collinear_topologies(
        positions in collinear_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        // Collinear nodes put receivers exactly on beam boresights and
        // exactly opposite them: the sector boundary is hit on purpose.
        assert_plan_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn full_circle_beam_equals_omni_footprint(positions in positions_strategy()) {
        // θ = 360° must equal the omni neighbourhood: a full-circle beam
        // and the omni pattern are the same physical footprint.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, Beamwidth::OMNI);
        for src in 0..chan.len() {
            let src = NodeId(src);
            for &dst in plan.neighbors(src) {
                prop_assert_eq!(
                    plan.directional_coverage(src, dst),
                    plan.neighbors(src),
                    "360° aim {} → {} diverged from omni", src, dst
                );
            }
        }
    }

    #[test]
    fn strict_adjacency_matches_topology_predicate(
        positions in positions_strategy(),
    ) {
        // The traffic-layer adjacency query must reproduce the strict
        // `d² ≤ R²` predicate (no EPSILON slack) in ascending order —
        // the behavioural gate separating traffic neighbour draws from
        // signal coverage.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, Beamwidth::OMNI);
        let mut out = Vec::new();
        for i in 0..chan.len() {
            plan.adjacency_into(NodeId(i), &mut out);
            let oracle: Vec<NodeId> = (0..chan.len())
                .filter(|&j| {
                    j != i
                        && chan
                            .position(NodeId(i))
                            .unwrap()
                            .distance_squared(chan.position(NodeId(j)).unwrap())
                            <= 1.0
                })
                .map(NodeId)
                .collect();
            prop_assert_eq!(&out, &oracle, "strict adjacency of node {}", i);
        }
    }
}
