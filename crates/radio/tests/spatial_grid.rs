//! Edge-geometry tests for the grid-backed [`CoveragePlan`]: the
//! adversarial layouts where a spatial index classically loses nodes.
//!
//! The dangerous inputs for a uniform grid are exact cell-boundary
//! placements (float `floor` on the bucketing division), co-located
//! nodes, fields smaller than one cell, and dense clusters straddling a
//! cell corner. Every property here compares the plan against the
//! reference `Channel` full scan, which is immune to all of them.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_geometry::{Beamwidth, Point};
use dirca_radio::{Channel, CoveragePlan, NodeId, SpatialGrid, TxPattern};
use dirca_sim::SimDuration;
use proptest::prelude::*;

fn channel(positions: Vec<Point>) -> Channel {
    Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap()
}

/// Asserts all plan queries equal the reference scan on `chan`.
fn assert_matches_reference(chan: &Channel, beamwidth: Beamwidth) {
    let plan = CoveragePlan::new(chan, beamwidth);
    for src in 0..chan.len() {
        let src = NodeId(src);
        assert_eq!(
            plan.neighbors(src),
            chan.covered_by(src, TxPattern::Omni).unwrap().as_slice(),
            "omni neighbourhood of {src}"
        );
        for dst in 0..chan.len() {
            let dst = NodeId(dst);
            let pattern = TxPattern::aimed(
                chan.position(src).unwrap(),
                chan.position(dst).unwrap(),
                beamwidth,
            );
            assert_eq!(
                plan.directional_coverage(src, dst),
                chan.covered_by(src, pattern).unwrap(),
                "aim {src} → {dst}"
            );
        }
    }
}

/// Integer lattice points scaled by exactly the range: every node sits on
/// a cell boundary, so any off-by-one in the bucketing or the 3×3 block
/// walk drops a within-reach pair.
fn lattice_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0i32..6, 0i32..6), 2..20).prop_map(|ps| {
        ps.into_iter()
            .map(|(i, j)| Point::new(f64::from(i), f64::from(j)))
            .collect()
    })
}

/// Tight clusters around a handful of anchor points — many co-located or
/// near-co-located nodes sharing cells, plus empty space between anchors.
fn cluster_strategy() -> impl Strategy<Value = Vec<Point>> {
    (
        prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..4),
        prop::collection::vec((0usize..4, -0.01f64..0.01, -0.01f64..0.01), 2..16),
    )
        .prop_map(|(anchors, offsets)| {
            offsets
                .into_iter()
                .map(|(a, dx, dy)| {
                    let (ax, ay) = anchors[a % anchors.len()];
                    Point::new(ax + dx, ay + dy)
                })
                .collect()
        })
}

fn beamwidth_strategy() -> impl Strategy<Value = Beamwidth> {
    prop_oneof![
        (1.0f64..360.0).prop_map(|d| Beamwidth::from_degrees(d).unwrap()),
        Just(Beamwidth::OMNI),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lattice_boundary_nodes_match_reference(
        positions in lattice_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        assert_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn clustered_and_colocated_nodes_match_reference(
        positions in cluster_strategy(),
        beamwidth in beamwidth_strategy(),
    ) {
        assert_matches_reference(&channel(positions), beamwidth);
    }

    #[test]
    fn sub_cell_fields_match_reference(
        positions in prop::collection::vec(
            (-0.4f64..0.4, -0.4f64..0.4).prop_map(|(x, y)| Point::new(x, y)),
            2..12,
        ),
        beamwidth in beamwidth_strategy(),
    ) {
        // The whole field fits inside one grid cell: the index must
        // degrade to the full scan, not lose anyone.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, beamwidth);
        prop_assert_eq!(plan.grid().cols(), 1);
        prop_assert_eq!(plan.grid().rows(), 1);
        assert_matches_reference(&chan, beamwidth);
    }

    #[test]
    fn full_circle_beam_equals_omni_on_adversarial_layouts(
        positions in lattice_strategy(),
    ) {
        // θ = 360° ≡ omni must survive boundary geometry too.
        let chan = channel(positions);
        let plan = CoveragePlan::new(&chan, Beamwidth::OMNI);
        for src in 0..chan.len() {
            let src = NodeId(src);
            for &dst in plan.neighbors(src) {
                prop_assert_eq!(
                    plan.directional_coverage(src, dst),
                    plan.neighbors(src),
                    "360° aim {} → {}", src, dst
                );
            }
        }
    }

    #[test]
    fn grid_candidates_form_a_partition(
        positions in cluster_strategy(),
    ) {
        // Summing every cell's slice must visit each node exactly once,
        // whatever the layout.
        let grid = SpatialGrid::new(&positions, 1.0);
        let mut seen = vec![0usize; positions.len()];
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                for &id in grid.cell_nodes(c, r) {
                    seen[id.0] += 1;
                }
            }
        }
        prop_assert!(seen.iter().all(|&k| k == 1), "partition violated: {:?}", seen);
    }
}

#[test]
fn colocated_stack_matches_reference() {
    // Sixteen nodes on one point plus two satellites exactly R away:
    // distance ties, heading degeneracies, and a fully shared cell.
    let mut positions = vec![Point::new(0.25, 0.25); 16];
    positions.push(Point::new(1.25, 0.25));
    positions.push(Point::new(0.25, 1.25));
    let chan = channel(positions);
    for deg in [15.0, 90.0, 360.0] {
        assert_matches_reference(&chan, Beamwidth::from_degrees(deg).unwrap());
    }
}

#[test]
fn exact_range_ring_matches_reference() {
    // Receivers at exactly d = R on the axes and diagonals: membership
    // rides on the `d² ≤ R² + EPSILON` bound in both implementations.
    let mut positions = vec![Point::new(0.0, 0.0)];
    for k in 0..8 {
        let a = std::f64::consts::FRAC_PI_4 * k as f64;
        positions.push(Point::new(a.cos(), a.sin()));
    }
    let chan = channel(positions);
    for deg in [30.0, 45.0, 181.0, 360.0] {
        assert_matches_reference(&chan, Beamwidth::from_degrees(deg).unwrap());
    }
}

#[test]
fn plan_arena_stays_linear_at_fixed_density() {
    // The acceptance bar made concrete: quadrupling n at constant density
    // must grow the index ~4×, nowhere near the dense plan's 16×.
    let field = |side: usize| {
        let pts: Vec<Point> = (0..side * side)
            .map(|i| Point::new((i % side) as f64 * 0.6, (i / side) as f64 * 0.6))
            .collect();
        CoveragePlan::new(&channel(pts), Beamwidth::from_degrees(45.0).unwrap()).index_bytes()
    };
    let b1 = field(20); // 400 nodes
    let b2 = field(40); // 1600 nodes
    let growth = b2 as f64 / b1 as f64;
    assert!(growth < 8.0, "index bytes grew {growth:.1}× for 4× nodes");
}
