//! Property tests of the channel's coverage geometry.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_geometry::{Angle, Beamwidth, Point};
use dirca_radio::{Channel, NodeId, TxPattern};
use dirca_sim::SimDuration;
use proptest::prelude::*;

fn positions_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(x, y)| Point::new(x, y)),
        2..12,
    )
}

proptest! {
    #[test]
    fn omni_coverage_is_symmetric(positions in positions_strategy()) {
        // With a common range, "a hears b" iff "b hears a".
        let chan = Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap();
        for a in 0..chan.len() {
            let covered = chan.covered_by(NodeId(a), TxPattern::Omni).unwrap();
            for b in covered {
                let back = chan.covered_by(b, TxPattern::Omni).unwrap();
                prop_assert!(
                    back.contains(&NodeId(a)),
                    "asymmetric coverage between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn beam_coverage_is_subset_of_omni(
        positions in positions_strategy(),
        boresight in -4.0f64..4.0,
        theta in 1.0f64..359.0,
    ) {
        let chan = Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap();
        let beam = TxPattern::Beam {
            boresight: Angle::from_radians(boresight),
            beamwidth: Beamwidth::from_degrees(theta).unwrap(),
        };
        for a in 0..chan.len() {
            let beamed = chan.covered_by(NodeId(a), beam).unwrap();
            let omni = chan.covered_by(NodeId(a), TxPattern::Omni).unwrap();
            for b in beamed {
                prop_assert!(omni.contains(&b), "beam reached outside omni range");
            }
        }
    }

    #[test]
    fn widening_the_beam_only_adds_coverage(
        positions in positions_strategy(),
        boresight in -4.0f64..4.0,
        theta in 1.0f64..180.0,
    ) {
        let chan = Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap();
        let narrow = TxPattern::Beam {
            boresight: Angle::from_radians(boresight),
            beamwidth: Beamwidth::from_degrees(theta).unwrap(),
        };
        let wide = TxPattern::Beam {
            boresight: Angle::from_radians(boresight),
            beamwidth: Beamwidth::from_degrees(theta * 2.0).unwrap(),
        };
        for a in 0..chan.len() {
            let n = chan.covered_by(NodeId(a), narrow).unwrap();
            let w = chan.covered_by(NodeId(a), wide).unwrap();
            for b in n {
                prop_assert!(w.contains(&b), "widening lost a covered node");
            }
        }
    }

    #[test]
    fn aimed_beam_covers_target_iff_in_range(
        positions in positions_strategy(),
        theta in 1.0f64..359.0,
    ) {
        let chan = Channel::new(positions, 1.0, SimDuration::from_micros(1)).unwrap();
        let beamwidth = Beamwidth::from_degrees(theta).unwrap();
        for a in 0..chan.len() {
            for b in 0..chan.len() {
                if a == b {
                    continue;
                }
                let pattern = TxPattern::aimed(
                    chan.position(NodeId(a)).unwrap(),
                    chan.position(NodeId(b)).unwrap(),
                    beamwidth,
                );
                let covered = chan.covered_by(NodeId(a), pattern).unwrap();
                let in_range = chan.distance(NodeId(a), NodeId(b)).unwrap() <= 1.0 + 1e-12;
                prop_assert_eq!(
                    covered.contains(&NodeId(b)),
                    in_range,
                    "aimed beam from {} to {} mismatch",
                    a,
                    b
                );
            }
        }
    }
}
