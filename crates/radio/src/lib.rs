//! The wireless physical layer of the reproduction.
//!
//! Models the PHY contract assumed by Wang & Garcia-Luna-Aceves (ICDCS
//! 2003):
//!
//! * **Unit-disk propagation** — every node has the same transmission and
//!   reception range `R`; inside the covered region signals arrive at full
//!   strength, outside they vanish ([`Channel`]).
//! * **Ideal sector beams** — directional transmissions cover a circular
//!   sector of beamwidth θ with the same gain as an omni-directional
//!   transmission (the paper's power-control equal-gain assumption);
//!   complete attenuation outside the sector ([`TxPattern`]).
//! * **Omni-directional reception, collision on overlap** — a frame is
//!   decoded iff it is the only signal at the receiver for its entire
//!   duration and the receiver never transmits meanwhile ([`Transceiver`]).
//!   A directional-reception extension (Nasipuri-style antenna selection) is
//!   available through [`ReceptionMode::Directional`].
//! * **Deaf while transmitting** — a transmitting node senses nothing and
//!   decodes nothing (single transceiver per node, paper §2.2).
//!
//! The crate is event-framework-agnostic: [`Transceiver`] is a pure state
//! machine fed with signal-arrival/end notifications; the `dirca-net` crate
//! wires it to the discrete-event loop.
//!
//! Because positions, range, and beamwidth are immutable for a run,
//! [`CoveragePlan`] serves every spatial answer the per-frame hot path
//! needs — omni neighbour lists as borrowed id-sorted slices, directional
//! footprints as an O(deg) filter of them, distance/heading computed
//! bit-identically to the reference — from a uniform-grid
//! [`SpatialGrid`] index that costs O(n) memory and O(local density) per
//! query, so 100k-node fields are as tractable as the paper's 130.
//! [`Channel::covered_by`] remains the reference implementation the plan
//! is built from and tested against.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod channel;
mod coverage;
mod fault;
mod spatial;
mod transceiver;

pub use channel::{Channel, ChannelError, TxPattern};
pub use coverage::CoveragePlan;
pub use fault::{CompiledFaults, FaultPlan, FaultPlanError, LinkFault, Outage};
pub use spatial::SpatialGrid;
pub use transceiver::{ReceptionMode, RxEndReport, SignalId, Transceiver};

use std::fmt;

/// Identifier of a node, an index into the channel's position table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}
