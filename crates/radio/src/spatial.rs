//! Uniform-grid spatial index over static node positions.
//!
//! At the paper's 30–130 nodes a dense pairwise arena is fine; at the
//! roadmap's 10k–100k-node Poisson fields anything O(n²) — matrices,
//! per-pair slice tables, or full-scan `covered_by` queries — is fatal.
//! Because the transmission range `R` bounds every interference footprint,
//! candidate receiver sets are spatially local: a [`SpatialGrid`] with cell
//! edge ≥ the maximum coverage reach guarantees that *every* node a
//! range-bounded predicate can accept lies inside the 3×3 cell block
//! around the query point, so queries cost O(local density) and the whole
//! index costs O(n) memory.
//!
//! # Layout
//!
//! Nodes are bucketed into a flat row-major cell array: `starts` holds
//! `cols·rows + 1` offsets delimiting each cell's slice of the shared
//! `order` arena, and within every cell the node ids are in ascending
//! order (the counting sort that builds the arena walks ids `0..n`, which
//! is a stable placement). Iteration over a 3×3 block therefore visits a
//! fixed, position-determined sequence of id-sorted slices — no hashing,
//! no pointer identity, nothing that could vary between runs — so every
//! consumer that sorts (or merges) the filtered candidates gets the exact
//! ascending-id ordering the reference [`crate::Channel`] queries produce.
//!
//! # Degenerate geometry
//!
//! Co-located nodes share a cell (ids stay ascending); a field smaller
//! than one cell collapses to a 1×1 grid whose single slice is simply the
//! full id range; non-finite coordinates index cell 0 deterministically
//! (`f64 as u32` saturates NaN to zero) and are rejected by any distance
//! predicate, mirroring how the reference full-scan treats them. A huge
//! but sparse bounding box cannot blow up memory either: the cell count
//! is soft-capped at ~4·n by growing the cell edge, which only ever
//! *widens* the candidate superset, never narrows it below the reach.

use dirca_geometry::Point;

use crate::NodeId;

/// A uniform grid over immutable node positions, answering "which nodes
/// can possibly lie within `reach` of this point" in O(local density).
///
/// # Example
///
/// ```
/// use dirca_geometry::Point;
/// use dirca_radio::{NodeId, SpatialGrid};
///
/// let positions = vec![
///     Point::new(0.0, 0.0),
///     Point::new(0.5, 0.0),
///     Point::new(10.0, 10.0),
/// ];
/// let grid = SpatialGrid::new(&positions, 1.0);
/// let mut near_origin = Vec::new();
/// grid.for_each_candidate(Point::new(0.1, 0.1), |id| near_origin.push(id));
/// // The far node is outside the 3×3 block; the near pair is inside.
/// assert!(near_origin.contains(&NodeId(0)));
/// assert!(near_origin.contains(&NodeId(1)));
/// assert!(!near_origin.contains(&NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell edge length; always ≥ the `reach` the grid was built for.
    cell: f64,
    /// Bounding-box origin (minimum finite coordinates, or 0 if none).
    min_x: f64,
    min_y: f64,
    /// Grid dimensions (each ≥ 1).
    cols: u32,
    rows: u32,
    /// `cols·rows + 1` arena offsets delimiting each cell's slice,
    /// row-major (`cell (c, r)` is entry `r·cols + c`).
    starts: Vec<u32>,
    /// The shared arena: node ids grouped by cell, ascending within each.
    order: Vec<NodeId>,
}

impl SpatialGrid {
    /// Builds the grid over `positions` with cell edge ≥ `reach`.
    ///
    /// `reach` must be an upper bound on the distance any query predicate
    /// can accept; the 3×3 superset guarantee holds only up to it. The
    /// cell count is soft-capped at ~4·n (minimum 16), growing the cell
    /// edge beyond `reach` for sparse fields with huge extents.
    ///
    /// Cost: O(n) time and memory (two counting-sort passes).
    ///
    /// # Panics
    ///
    /// Panics if `reach` is not positive and finite, or if `positions`
    /// holds ≥ `u32::MAX` nodes (the arena uses 32-bit offsets).
    pub fn new(positions: &[Point], reach: f64) -> Self {
        assert!(
            reach.is_finite() && reach > 0.0,
            "grid reach must be positive and finite, got {reach}"
        );
        let n = positions.len();
        assert!(
            (n as u64) < u64::from(u32::MAX),
            "spatial grid supports fewer than u32::MAX nodes"
        );

        // Bounding box over the finite coordinates; non-finite positions
        // deterministically land in cell 0 and are filtered out by any
        // distance predicate, exactly as a reference full scan rejects
        // them.
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in positions {
            if p.x.is_finite() && p.y.is_finite() {
                min_x = min_x.min(p.x);
                min_y = min_y.min(p.y);
                max_x = max_x.max(p.x);
                max_y = max_y.max(p.y);
            }
        }
        if !min_x.is_finite() {
            // No finite positions at all: a 1×1 grid at the origin.
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let width = max_x - min_x;
        let height = max_y - min_y;

        // Soft cell-count cap: at most ~4·n cells, so a handful of nodes a
        // million ranges apart cannot allocate a billion empty buckets.
        // Growing the edge keeps the 3×3 superset guarantee intact (a
        // bigger cell covers strictly more).
        let per_axis = (((4 * n.max(4)) as f64).sqrt().floor()).max(1.0);
        let cell = reach.max(width / per_axis).max(height / per_axis);
        let cols = grid_extent(width, cell);
        let rows = grid_extent(height, cell);

        let cells = (cols as usize) * (rows as usize);
        let mut starts = vec![0u32; cells + 1];
        let flat = |p: &Point| -> usize {
            let (c, r) = cell_of(p.x, p.y, min_x, min_y, cell, cols, rows);
            (r as usize) * (cols as usize) + (c as usize)
        };
        for p in positions {
            // panic-path: `flat` clamps both axes into the grid, so the
            // +1-shifted counting slot is within `starts`' cells+1 length.
            starts[flat(p) + 1] += 1;
        }
        for i in 1..starts.len() {
            // panic-path: `i` ranges over `starts` indices; `i - 1` is the
            // predecessor of an index that starts at 1.
            starts[i] += starts[i - 1];
        }
        // Stable placement: walking ids in ascending order fills each
        // cell's slice in ascending id order — the property every
        // determinism argument downstream leans on.
        let mut cursor: Vec<u32> = starts.clone();
        let mut order = vec![NodeId(0); n];
        for (id, p) in positions.iter().enumerate() {
            let slot = flat(p);
            // panic-path: `cursor[slot]` starts at the cell's offset and is
            // bumped once per node in the cell, so it stays within the
            // cell's slice of the n-length arena.
            order[cursor[slot] as usize] = NodeId(id);
            cursor[slot] += 1;
        }

        SpatialGrid {
            cell,
            min_x,
            min_y,
            cols,
            rows,
            starts,
            order,
        }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the grid indexes no nodes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Grid width in cells.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The cell edge length actually used (≥ the construction `reach`).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The id-sorted node slice of cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `col`/`row` are outside the grid.
    pub fn cell_nodes(&self, col: u32, row: u32) -> &[NodeId] {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        let idx = (row as usize) * (self.cols as usize) + (col as usize);
        // panic-path: `starts` has cols·rows + 1 entries and `idx` was
        // bounds-checked above, so `idx + 1` is in range and the offsets
        // delimit a valid arena slice by construction.
        &self.order[self.starts[idx] as usize..self.starts[idx + 1] as usize]
    }

    /// Invokes `f` for every node in the 3×3 cell block around `around` —
    /// a deterministic superset of all nodes within the construction
    /// `reach` of that point. Cells are visited row-major and each cell's
    /// ids ascend, so the visit sequence is a pure function of geometry.
    #[inline]
    pub fn for_each_candidate(&self, around: Point, mut f: impl FnMut(NodeId)) {
        let (c, r) = cell_of(
            around.x, around.y, self.min_x, self.min_y, self.cell, self.cols, self.rows,
        );
        let c1 = (c + 1).min(self.cols - 1);
        let r1 = (r + 1).min(self.rows - 1);
        for row in r.saturating_sub(1)..=r1 {
            let base = (row as usize) * (self.cols as usize);
            let lo = base + c.saturating_sub(1) as usize;
            let hi = base + c1 as usize;
            // A row's 1–3 adjacent cells occupy contiguous arena slots, so
            // the whole row strip is one slice.
            // panic-path: `lo ≤ hi < cols·rows` from the clamps above and
            // `starts` offsets are monotonically increasing within the
            // arena length by construction.
            let slice = &self.order[self.starts[lo] as usize..self.starts[hi + 1] as usize];
            for &id in slice {
                f(id);
            }
        }
    }

    /// Approximate resident bytes of the index (arena + offsets + header).
    pub fn index_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.starts.len() * std::mem::size_of::<u32>()
            + self.order.len() * std::mem::size_of::<NodeId>()
    }
}

/// Number of cells needed to span `extent` at edge `cell` (≥ 1).
fn grid_extent(extent: f64, cell: f64) -> u32 {
    // NaN/degenerate extents collapse to one cell (`as` saturates NaN to
    // 0); +1 because a point exactly on the far edge must still index a
    // valid column.
    ((extent / cell).floor().clamp(0.0, u32::MAX as f64 - 2.0) as u32) + 1
}

/// The clamped (col, row) cell of point `(x, y)`.
#[inline]
fn cell_of(x: f64, y: f64, min_x: f64, min_y: f64, cell: f64, cols: u32, rows: u32) -> (u32, u32) {
    // `clamp` keeps NaN (→ cast saturates to 0) and out-of-box points
    // deterministic; indexed positions always fall inside the box, query
    // points are node positions and therefore do too.
    let c = ((x - min_x) / cell).floor().clamp(0.0, (cols - 1) as f64) as u32;
    let r = ((y - min_y) / cell).floor().clamp(0.0, (rows - 1) as f64) as u32;
    (c, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(grid: &SpatialGrid, around: Point) -> Vec<NodeId> {
        let mut out = Vec::new();
        grid.for_each_candidate(around, |id| out.push(id));
        out.sort_unstable();
        out
    }

    #[test]
    fn every_node_lands_in_exactly_one_cell() {
        let positions: Vec<Point> = (0..37)
            .map(|i| Point::new((i % 7) as f64 * 0.9, (i / 7) as f64 * 1.1))
            .collect();
        let grid = SpatialGrid::new(&positions, 1.0);
        let mut seen = vec![0usize; positions.len()];
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                for &id in grid.cell_nodes(c, r) {
                    seen[id.0] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&k| k == 1), "partition violated: {seen:?}");
    }

    #[test]
    fn cell_slices_ascend_by_id() {
        let positions: Vec<Point> = (0..50)
            .map(|i| Point::new(((i * 29) % 10) as f64 * 0.3, ((i * 13) % 10) as f64 * 0.3))
            .collect();
        let grid = SpatialGrid::new(&positions, 1.0);
        for r in 0..grid.rows() {
            for c in 0..grid.cols() {
                let slice = grid.cell_nodes(c, r);
                assert!(slice.windows(2).all(|w| w[0] < w[1]), "cell ({c},{r})");
            }
        }
    }

    #[test]
    fn candidates_cover_everything_within_reach() {
        let positions: Vec<Point> = (0..100)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point::new(4.0 * (t.sin() * t), 4.0 * (t.cos() * t * 0.3))
            })
            .collect();
        let reach = 1.0;
        let grid = SpatialGrid::new(&positions, reach);
        for (i, p) in positions.iter().enumerate() {
            let candidates = ids(&grid, *p);
            for (j, q) in positions.iter().enumerate() {
                if p.distance(*q) <= reach {
                    assert!(
                        candidates.contains(&NodeId(j)),
                        "node {j} within reach of {i} missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn colocated_nodes_share_a_cell_in_id_order() {
        let p = Point::new(1.5, -2.5);
        let grid = SpatialGrid::new(&[p, p, p, p], 1.0);
        assert_eq!(
            ids(&grid, p),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn field_smaller_than_one_cell_is_a_single_bucket() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.05, 0.02),
            Point::new(-0.03, 0.04),
        ];
        let grid = SpatialGrid::new(&positions, 1.0);
        assert_eq!((grid.cols(), grid.rows()), (1, 1));
        assert_eq!(grid.cell_nodes(0, 0).len(), 3);
    }

    #[test]
    fn empty_grid_is_well_formed() {
        let grid = SpatialGrid::new(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert_eq!((grid.cols(), grid.rows()), (1, 1));
        assert!(ids(&grid, Point::ORIGIN).is_empty());
    }

    #[test]
    fn sparse_giants_cap_the_cell_count() {
        // Two nodes a million reaches apart: the naive grid would want
        // 10^12 cells; the cap grows the edge instead.
        let positions = vec![Point::new(0.0, 0.0), Point::new(1e6, 1e6)];
        let grid = SpatialGrid::new(&positions, 1.0);
        let cells = (grid.cols() as u64) * (grid.rows() as u64);
        assert!(cells <= 64, "cell count {cells} not capped");
        assert!(grid.cell_size() >= 1.0);
        // Coverage still holds: each node sees itself as a candidate.
        assert!(ids(&grid, positions[0]).contains(&NodeId(0)));
        assert!(ids(&grid, positions[1]).contains(&NodeId(1)));
    }

    #[test]
    fn boundary_nodes_are_still_covered() {
        // Nodes placed exactly on cell-edge multiples of the reach: the
        // 3×3 block must still cover all within-reach pairs.
        let positions: Vec<Point> = (0..6)
            .flat_map(|i| (0..6).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let grid = SpatialGrid::new(&positions, 1.0);
        for (i, p) in positions.iter().enumerate() {
            let candidates = ids(&grid, *p);
            for (j, q) in positions.iter().enumerate() {
                if p.distance(*q) <= 1.0 {
                    assert!(candidates.contains(&NodeId(j)), "pair {i}/{j} lost");
                }
            }
        }
    }

    #[test]
    fn non_finite_positions_are_deterministic() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 1.0),
            Point::new(1.0, f64::INFINITY),
            Point::new(0.5, 0.0),
        ];
        let a = SpatialGrid::new(&positions, 1.0);
        let b = SpatialGrid::new(&positions, 1.0);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(a.cell_nodes(c, r), b.cell_nodes(c, r));
            }
        }
        // All four nodes are indexed somewhere (partition holds).
        let total: usize = (0..a.rows())
            .flat_map(|r| (0..a.cols()).map(move |c| (c, r)))
            .map(|(c, r)| a.cell_nodes(c, r).len())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    #[should_panic(expected = "reach must be positive")]
    fn rejects_bad_reach() {
        let _ = SpatialGrid::new(&[], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn cell_nodes_bounds_checked() {
        let grid = SpatialGrid::new(&[Point::ORIGIN], 1.0);
        let _ = grid.cell_nodes(5, 0);
    }

    #[test]
    fn index_bytes_scale_linearly() {
        let small: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let large: Vec<Point> = (0..1000)
            .map(|i| Point::new((i % 32) as f64, (i / 32) as f64))
            .collect();
        let gs = SpatialGrid::new(&small, 1.0);
        let gl = SpatialGrid::new(&large, 1.0);
        // 10× the nodes must cost far less than 100× the bytes (the dense
        // plan's quadratic growth), with generous slack for cell overhead.
        assert!(gl.index_bytes() < 30 * gs.index_bytes());
    }
}
