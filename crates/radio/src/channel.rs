//! The shared unit-disk channel.

use std::error::Error;
use std::fmt;

use dirca_geometry::{Angle, Beamwidth, Point, Sector};
use dirca_sim::SimDuration;

use crate::NodeId;

/// The spatial footprint of one transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TxPattern {
    /// Omni-directional: covers the full disk of radius `R` around the
    /// transmitter.
    Omni,
    /// Directional: covers the sector of beamwidth `beamwidth` aimed at
    /// `boresight`.
    Beam {
        /// Beam center direction.
        boresight: Angle,
        /// Beam aperture θ.
        beamwidth: Beamwidth,
    },
}

impl TxPattern {
    /// A beam aimed from `from` toward `to` with aperture `beamwidth`.
    pub fn aimed(from: Point, to: Point, beamwidth: Beamwidth) -> TxPattern {
        TxPattern::Beam {
            boresight: from.heading_to(to),
            beamwidth,
        }
    }

    /// Whether a transmission from `origin` with this pattern and range
    /// `range` covers point `p`.
    pub fn covers(&self, origin: Point, range: f64, p: Point) -> bool {
        match *self {
            TxPattern::Omni => {
                origin.distance_squared(p) <= range * range + dirca_geometry::EPSILON
            }
            TxPattern::Beam {
                boresight,
                beamwidth,
            } => Sector::new(origin, boresight, beamwidth, range).contains(p),
        }
    }
}

/// Error returned by [`Channel`] constructors and queries on invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The requested node index is out of range.
    UnknownNode(NodeId),
    /// The transmission range was not a positive finite number.
    InvalidRange,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ChannelError::InvalidRange => write!(f, "transmission range must be positive"),
        }
    }
}

impl Error for ChannelError {}

/// The shared single channel: node positions, common range `R`, and the
/// propagation delay.
///
/// `Channel` answers purely spatial questions — who is covered by a given
/// transmission — and leaves all timing to the caller.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Beamwidth, Point};
/// use dirca_radio::{Channel, NodeId, TxPattern};
/// use dirca_sim::SimDuration;
///
/// let chan = Channel::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(0.0, 0.7)],
///     1.0,
///     SimDuration::from_micros(1),
/// )?;
/// // Omni from node 0 reaches both neighbours.
/// let omni = chan.covered_by(NodeId(0), TxPattern::Omni)?;
/// assert_eq!(omni, vec![NodeId(1), NodeId(2)]);
/// // A narrow eastward beam reaches only node 1.
/// let beam = TxPattern::aimed(chan.position(NodeId(0))?, chan.position(NodeId(1))?,
///                             Beamwidth::from_degrees(30.0).unwrap());
/// assert_eq!(chan.covered_by(NodeId(0), beam)?, vec![NodeId(1)]);
/// # Ok::<(), dirca_radio::ChannelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    positions: Vec<Point>,
    range: f64,
    propagation_delay: SimDuration,
}

impl Channel {
    /// Creates a channel over the given node positions.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::InvalidRange`] unless `range` is positive and
    /// finite.
    pub fn new(
        positions: Vec<Point>,
        range: f64,
        propagation_delay: SimDuration,
    ) -> Result<Self, ChannelError> {
        if !(range.is_finite() && range > 0.0) {
            return Err(ChannelError::InvalidRange);
        }
        Ok(Channel {
            positions,
            range,
            propagation_delay,
        })
    }

    /// Number of nodes on the channel.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the channel has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The common transmission/reception range `R`.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The propagation delay applied to every signal edge.
    pub fn propagation_delay(&self) -> SimDuration {
        self.propagation_delay
    }

    /// All node positions, indexed by id (`positions()[id.0]` is node
    /// `id`'s location).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Position of node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownNode`] for an out-of-range id.
    pub fn position(&self, id: NodeId) -> Result<Point, ChannelError> {
        self.positions
            .get(id.0)
            .copied()
            .ok_or(ChannelError::UnknownNode(id))
    }

    /// Distance between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownNode`] for an out-of-range id.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Result<f64, ChannelError> {
        Ok(self.position(a)?.distance(self.position(b)?))
    }

    /// Heading from node `from` to node `to`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownNode`] for an out-of-range id.
    pub fn heading(&self, from: NodeId, to: NodeId) -> Result<Angle, ChannelError> {
        Ok(self.position(from)?.heading_to(self.position(to)?))
    }

    /// All nodes (other than `src`) covered by a transmission from `src`
    /// with pattern `pattern`, in ascending id order.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownNode`] if `src` is out of range.
    pub fn covered_by(&self, src: NodeId, pattern: TxPattern) -> Result<Vec<NodeId>, ChannelError> {
        let origin = self.position(src)?;
        Ok(self
            .positions
            .iter()
            .enumerate()
            .filter(|&(i, &p)| i != src.0 && pattern.covers(origin, self.range, p))
            .map(|(i, _)| NodeId(i))
            .collect())
    }

    /// All nodes within range `R` of `id` (its neighbourhood), in ascending
    /// id order.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::UnknownNode`] if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> Result<Vec<NodeId>, ChannelError> {
        self.covered_by(id, TxPattern::Omni)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> Channel {
        Channel::new(
            vec![
                Point::new(0.0, 0.0),  // 0
                Point::new(0.9, 0.0),  // 1: east of 0
                Point::new(0.0, 0.9),  // 2: north of 0
                Point::new(2.5, 0.0),  // 3: out of range of everyone (2.5 from 0, 1.6 from 1)
                Point::new(-0.5, 0.0), // 4: west of 0
            ],
            1.0,
            SimDuration::from_micros(1),
        )
        .unwrap()
    }

    fn beam(deg: f64) -> Beamwidth {
        Beamwidth::from_degrees(deg).unwrap()
    }

    #[test]
    fn rejects_bad_range() {
        assert_eq!(
            Channel::new(vec![], 0.0, SimDuration::ZERO).unwrap_err(),
            ChannelError::InvalidRange
        );
        assert_eq!(
            Channel::new(vec![], f64::NAN, SimDuration::ZERO).unwrap_err(),
            ChannelError::InvalidRange
        );
    }

    #[test]
    fn omni_covers_all_in_range() {
        let c = chan();
        assert_eq!(
            c.covered_by(NodeId(0), TxPattern::Omni).unwrap(),
            vec![NodeId(1), NodeId(2), NodeId(4)]
        );
    }

    #[test]
    fn source_is_never_covered() {
        let c = chan();
        for i in 0..c.len() {
            let covered = c.covered_by(NodeId(i), TxPattern::Omni).unwrap();
            assert!(!covered.contains(&NodeId(i)));
        }
    }

    #[test]
    fn narrow_beam_selects_by_direction() {
        let c = chan();
        let east = TxPattern::Beam {
            boresight: Angle::ZERO,
            beamwidth: beam(30.0),
        };
        assert_eq!(c.covered_by(NodeId(0), east).unwrap(), vec![NodeId(1)]);
        let north = TxPattern::Beam {
            boresight: Angle::from_degrees(90.0),
            beamwidth: beam(30.0),
        };
        assert_eq!(c.covered_by(NodeId(0), north).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn aimed_beam_always_covers_in_range_target() {
        let c = chan();
        let p0 = c.position(NodeId(0)).unwrap();
        let p4 = c.position(NodeId(4)).unwrap();
        let west = TxPattern::aimed(p0, p4, beam(15.0));
        let covered = c.covered_by(NodeId(0), west).unwrap();
        assert!(covered.contains(&NodeId(4)));
        assert!(!covered.contains(&NodeId(1)));
    }

    #[test]
    fn beam_never_exceeds_range() {
        let c = chan();
        // Node 3 is 2.5 away: even a perfectly aimed beam misses it.
        let p0 = c.position(NodeId(0)).unwrap();
        let p3 = c.position(NodeId(3)).unwrap();
        let aimed = TxPattern::aimed(p0, p3, beam(15.0));
        assert!(!c.covered_by(NodeId(0), aimed).unwrap().contains(&NodeId(3)));
    }

    #[test]
    fn omni_pattern_equals_360_beam() {
        let c = chan();
        let full = TxPattern::Beam {
            boresight: Angle::from_degrees(123.0),
            beamwidth: Beamwidth::OMNI,
        };
        assert_eq!(
            c.covered_by(NodeId(0), full).unwrap(),
            c.covered_by(NodeId(0), TxPattern::Omni).unwrap()
        );
    }

    #[test]
    fn unknown_node_errors() {
        let c = chan();
        assert!(matches!(
            c.position(NodeId(99)),
            Err(ChannelError::UnknownNode(NodeId(99)))
        ));
        assert!(c.covered_by(NodeId(99), TxPattern::Omni).is_err());
        assert!(c.distance(NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn distance_and_heading() {
        let c = chan();
        assert!((c.distance(NodeId(0), NodeId(1)).unwrap() - 0.9).abs() < 1e-12);
        assert!((c.heading(NodeId(0), NodeId(2)).unwrap().degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn neighbors_is_omni_coverage() {
        let c = chan();
        assert_eq!(
            c.neighbors(NodeId(1)).unwrap(),
            c.covered_by(NodeId(1), TxPattern::Omni).unwrap()
        );
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!format!("{}", ChannelError::InvalidRange).is_empty());
        assert!(!format!("{}", ChannelError::UnknownNode(NodeId(3))).is_empty());
    }

    #[test]
    fn len_and_empty() {
        let c = chan();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        let empty = Channel::new(vec![], 1.0, SimDuration::ZERO).unwrap();
        assert!(empty.is_empty());
    }
}
