//! Grid-backed coverage plans for static geometry.
//!
//! Node positions, the range `R`, and the beamwidth θ are immutable for
//! the lifetime of a simulation run, yet the per-frame transmit path asks
//! the same spatial questions — who does this beam cover, and from which
//! bearing does the energy arrive — millions of times. The original plan
//! answered them from dense pairwise matrices: perfect at the paper's
//! 30–130 nodes, fatal at 100k (10¹⁰ entries). A [`CoveragePlan`] now
//! rests on a [`SpatialGrid`] (cell edge ≥ the coverage reach), so both
//! construction and queries touch only the 3×3 cell neighbourhood of the
//! transmitter:
//!
//! * **Omni neighbour lists** are materialised once per node from the
//!   grid's candidate superset — O(n · local density) build, O(n) total
//!   memory — and served as borrowed id-sorted slices, allocation-free.
//! * **Directional footprints** are precomputed per *edge* (per omni
//!   arena slot), not per node pair: a beam shares the omni disk's exact
//!   distance bound (`Sector::contains` and `TxPattern::covers` both test
//!   `d² ≤ R² + EPSILON`), so every aimable footprint is a filter of the
//!   transmitter's omni slice, and the footprint table costs
//!   O(Σ deg²) — linear in n at fixed density — instead of the old n²
//!   range matrix. Lookup is a binary search of the id-sorted neighbour
//!   slice. Aims at out-of-neighbourhood destinations (which a MAC never
//!   produces) are filtered on the fly with the same predicate.
//! * **Distance and arrival heading** are likewise cached per edge with
//!   the *same expressions* the reference [`Channel`] evaluates, so
//!   results are bit-identical to the old cached matrices without the
//!   O(n²) storage; arbitrary-pair queries compute on demand.
//!
//! Every query is equal to its reference implementation
//! ([`Channel::covered_by`] / [`Channel::heading`] /
//! [`Channel::distance`]) by construction: the grid only ever *widens*
//! the candidate superset, the filters are the exact reference
//! predicates, and every emitted slice is ascending by id. The property
//! tests in `tests/coverage_plan.rs` and `tests/spatial_grid.rs` pin that
//! equivalence across random and adversarial topologies and beamwidths.

use dirca_geometry::{Angle, Beamwidth, EPSILON};

use crate::channel::{Channel, TxPattern};
use crate::spatial::SpatialGrid;
use crate::NodeId;

/// Precomputed spatial tables for one immutable [`Channel`] + beamwidth,
/// backed by a uniform-grid index — O(n) memory, O(local density) per
/// query.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Beamwidth, Point};
/// use dirca_radio::{Channel, CoveragePlan, NodeId, TxPattern};
/// use dirca_sim::SimDuration;
///
/// let chan = Channel::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(0.0, 0.7)],
///     1.0,
///     SimDuration::from_micros(1),
/// )?;
/// let beam = Beamwidth::from_degrees(30.0).unwrap();
/// let plan = CoveragePlan::new(&chan, beam);
/// // Omni neighbourhoods match the reference query...
/// assert_eq!(plan.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
/// // ...and so does the footprint of a beam aimed 0 → 1.
/// let aimed = TxPattern::aimed(
///     chan.position(NodeId(0))?,
///     chan.position(NodeId(1))?,
///     beam,
/// );
/// assert_eq!(
///     plan.directional_coverage(NodeId(0), NodeId(1)),
///     chan.covered_by(NodeId(0), aimed)?,
/// );
/// # Ok::<(), dirca_radio::ChannelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoveragePlan {
    /// Node positions, identical to the channel's (`positions[id]`).
    positions: Vec<dirca_geometry::Point>,
    /// The channel's transmission range `R`.
    range: f64,
    beamwidth: Beamwidth,
    /// Uniform grid over `positions` with cell edge ≥ the coverage reach.
    grid: SpatialGrid,
    /// `n + 1` arena offsets delimiting each node's omni neighbour slice.
    omni_offsets: Vec<u32>,
    /// The shared slice arena: omni neighbour lists first (ascending id
    /// order within each slice), directional footprints appended after.
    arena: Vec<NodeId>,
    /// Per-edge distance cache: `edge_dist[slot]` is the distance between
    /// a slice's owner and `arena[slot]`, for every omni arena slot.
    edge_dist: Vec<f64>,
    /// Per-edge arrival-bearing cache: `edge_heading[slot]` is the
    /// heading from a slice's owner *toward* `arena[slot]`.
    edge_heading: Vec<Angle>,
    /// Per-edge directional footprint ranges into `arena` for the aim
    /// (owner → `arena[slot]`); aliases the owner's omni slice when the
    /// beam covers the whole neighbourhood.
    dir_ranges: Vec<(u32, u32)>,
}

impl CoveragePlan {
    /// Builds the plan for `channel` with directional sets computed at
    /// `beamwidth`.
    ///
    /// Cost: O(n · local density) time for the grid and omni lists plus
    /// O(Σ deg²) sector tests for the per-edge directional footprints —
    /// linear in n at fixed density, never pairwise-quadratic.
    ///
    /// # Panics
    ///
    /// Panics if the channel holds ≥ `u32::MAX` nodes (the arena uses
    /// 32-bit offsets; a simulated channel is orders of magnitude smaller).
    pub fn new(channel: &Channel, beamwidth: Beamwidth) -> Self {
        let n = channel.len();
        assert!(
            (n as u64) < u64::from(u32::MAX),
            "coverage plan supports fewer than u32::MAX nodes"
        );
        let positions = channel.positions().to_vec();
        let range = channel.range();
        // The widest distance any coverage predicate accepts is
        // √(R² + EPSILON); the extra 1e-9 relative margin dwarfs the ulp
        // error of the grid's float cell arithmetic, so the 3×3 block is a
        // guaranteed superset of every acceptable candidate.
        let reach = (range * range + EPSILON).sqrt() * (1.0 + 1e-9);
        let grid = SpatialGrid::new(&positions, reach);

        // Materialise each node's omni neighbourhood from the grid
        // superset with the exact reference predicate, then sort: equal to
        // `Channel::covered_by(src, Omni)` output by construction (same
        // membership, and the reference emits ascending ids).
        let mut arena: Vec<NodeId> = Vec::new();
        let mut omni_offsets = Vec::with_capacity(n + 1);
        omni_offsets.push(0u32);
        let mut scratch: Vec<NodeId> = Vec::new();
        for src in 0..n {
            // panic-path: `src` iterates `0..n` over the same positions
            // vector, so indexing cannot fail.
            let origin = positions[src];
            scratch.clear();
            grid.for_each_candidate(origin, |id| {
                if id.0 != src && TxPattern::Omni.covers(origin, range, positions[id.0]) {
                    scratch.push(id);
                }
            });
            scratch.sort_unstable();
            arena.extend_from_slice(&scratch);
            omni_offsets.push(arena_offset(arena.len()));
        }
        let edges = arena.len();

        // Per-edge caches, indexed by omni arena slot: the distance and
        // arrival bearing between a slice's owner and the neighbour in
        // that slot (the exact reference expressions, so values are
        // bit-identical to `Channel::distance` / `Channel::heading`), and
        // the directional footprint of the beam aimed owner → neighbour.
        // A beam shares the omni disk's exact distance bound
        // (`Sector::contains` and `TxPattern::covers` both test
        // `d² ≤ R² + EPSILON`), so filtering the owner's omni slice
        // through the reference predicate yields exactly
        // `Channel::covered_by` for the aimed pattern, ascending order
        // preserved — and the table is O(Σ deg²), not O(n²).
        let mut edge_dist = Vec::with_capacity(edges);
        let mut edge_heading = Vec::with_capacity(edges);
        let mut dir_ranges = vec![(0u32, 0u32); edges];
        for src in 0..n {
            let omni_range = (omni_offsets[src] as usize)..(omni_offsets[src + 1] as usize);
            // panic-path: `src` iterates `0..n`, matching `positions`.
            let origin = positions[src];
            for slot in omni_range.clone() {
                // panic-path: omni slots hold ids the plan indexed.
                let dst = arena[slot];
                edge_dist.push(origin.distance(positions[dst.0]));
                edge_heading.push(origin.heading_to(positions[dst.0]));
                let pattern = TxPattern::aimed(origin, positions[dst.0], beamwidth);
                // Append the filtered footprint to the arena, then roll it
                // back if the beam turned out to cover the whole
                // neighbourhood (wide θ or a degenerate layout) — aliasing
                // src's omni slice keeps the arena compact.
                let start = arena.len();
                for neighbor_slot in omni_range.clone() {
                    let p = arena[neighbor_slot];
                    if pattern.covers(origin, range, positions[p.0]) {
                        arena.push(p);
                    }
                }
                let slice = if arena.len() - start == omni_range.len() {
                    arena.truncate(start);
                    (omni_offsets[src], omni_offsets[src + 1])
                } else {
                    (arena_offset(start), arena_offset(arena.len()))
                };
                dir_ranges[slot] = slice;
            }
        }

        CoveragePlan {
            positions,
            range,
            beamwidth,
            grid,
            omni_offsets,
            arena,
            edge_dist,
            edge_heading,
            dir_ranges,
        }
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The beamwidth the directional footprints are filtered at.
    pub fn beamwidth(&self) -> Beamwidth {
        self.beamwidth
    }

    /// The underlying spatial grid (sharding key for future
    /// partitioned-execution work, and a diagnostic for tests).
    pub fn grid(&self) -> &SpatialGrid {
        &self.grid
    }

    /// Total arena entries (a size diagnostic for tests and tooling).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Approximate resident bytes of the whole plan: positions, the slice
    /// arena + offsets, the per-edge caches, and the grid index. Grows
    /// O(n + Σ deg²) — linear in n at fixed density, never O(n²).
    pub fn index_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.positions.len() * std::mem::size_of::<dirca_geometry::Point>()
            + self.omni_offsets.len() * std::mem::size_of::<u32>()
            + self.arena.len() * std::mem::size_of::<NodeId>()
            + self.edge_dist.len() * std::mem::size_of::<f64>()
            + self.edge_heading.len() * std::mem::size_of::<Angle>()
            + self.dir_ranges.len() * std::mem::size_of::<(u32, u32)>()
            + self.grid.index_bytes()
    }

    /// Distance |a − b|, equal to [`Channel::distance`] bit for bit (same
    /// expression over the same coordinates).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        assert!(
            a.0 < self.positions.len() && b.0 < self.positions.len(),
            "node id out of range"
        );
        self.positions[a.0].distance(self.positions[b.0])
    }

    /// Bearing `from` → `to`, equal to [`Channel::heading`] bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn heading(&self, from: NodeId, to: NodeId) -> Angle {
        assert!(
            from.0 < self.positions.len() && to.0 < self.positions.len(),
            "node id out of range"
        );
        self.positions[from.0].heading_to(self.positions[to.0])
    }

    /// The omni neighbourhood of `id` in ascending id order, equal to
    /// [`Channel::neighbors`]. Borrowed slice; no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        // panic-path: offsets are monotone within the arena length by
        // construction; an out-of-range id panics on the offset read,
        // which is the documented contract.
        let start = self.omni_offsets[id.0] as usize;
        let end = self.omni_offsets[id.0 + 1] as usize;
        &self.arena[start..end]
    }

    /// The omni arena slot of `needle` inside `owner`'s neighbour slice,
    /// found by binary search (slices ascend by id).
    ///
    /// panic-path: callers pass an in-range `owner`, so the offset read is
    /// within the n+1-length offsets vector.
    #[inline]
    fn edge_slot(&self, owner: NodeId, needle: NodeId) -> Option<usize> {
        let start = self.omni_offsets[owner.0] as usize;
        self.neighbors(owner)
            .binary_search(&needle)
            .ok()
            .map(|i| start + i)
    }

    /// The bearing and distance of a signal arriving at `dst` from `src`,
    /// as the pair `(heading dst → src, |dst − src|)` — bit-identical to
    /// ([`Channel::heading`], [`Channel::distance`]).
    ///
    /// The hot path for wave delivery: when `src` is inside `dst`'s
    /// neighbourhood (every physically arriving signal is, since beam and
    /// omni share one distance bound and distance is symmetric) both
    /// values come from the per-edge cache after one binary search; the
    /// out-of-range fallback computes them with the same expressions.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn arrival_geometry(&self, dst: NodeId, src: NodeId) -> (Angle, f64) {
        match self.edge_slot(dst, src) {
            // panic-path: per-edge caches are arena-slot-parallel by
            // construction, so a found slot indexes all of them.
            Some(slot) => (self.edge_heading[slot], self.edge_dist[slot]),
            None => (self.heading(dst, src), self.distance(dst, src)),
        }
    }

    /// Fills `out` with the footprint of a beam from `src` aimed at `dst`
    /// at the plan's beamwidth, in ascending id order — equal to
    /// [`Channel::covered_by`] with [`TxPattern::aimed`] for **any** dst
    /// (neighbour or not; a beam aimed at an unreachable peer still covers
    /// whatever falls in its sector).
    ///
    /// Cost for the aims a MAC produces (dst inside src's neighbourhood):
    /// one binary search plus a slice copy from the per-edge footprint
    /// table. Cold aims at out-of-neighbourhood destinations filter the
    /// omni slice on the fly with the same predicate — because the sector
    /// shares the omni disk's exact distance bound, the footprint is a
    /// subset of the omni neighbourhood and the filter preserves the
    /// slice's ascending order.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn directional_coverage_into(&self, src: NodeId, dst: NodeId, out: &mut Vec<NodeId>) {
        assert!(
            src.0 < self.positions.len() && dst.0 < self.positions.len(),
            "node id out of range"
        );
        out.clear();
        if let Some(slot) = self.edge_slot(src, dst) {
            // panic-path: stored ranges delimit arena slices built above.
            let (start, end) = self.dir_ranges[slot];
            out.extend_from_slice(&self.arena[start as usize..end as usize]);
            return;
        }
        let origin = self.positions[src.0];
        let pattern = TxPattern::aimed(origin, self.positions[dst.0], self.beamwidth);
        for &p in self.neighbors(src) {
            // panic-path: neighbour slices only hold ids the plan indexed.
            if pattern.covers(origin, self.range, self.positions[p.0]) {
                out.push(p);
            }
        }
    }

    /// Allocating convenience form of
    /// [`CoveragePlan::directional_coverage_into`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn directional_coverage(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.directional_coverage_into(src, dst, &mut out);
        out
    }

    /// Fills `out` with the nodes strictly within range of `id` under the
    /// topology-layer adjacency predicate `d² ≤ R²` (**no** EPSILON slack),
    /// ascending by id — bit-identical to one row of
    /// `Topology::adjacency`.
    ///
    /// This is deliberately a *different* predicate from
    /// [`CoveragePlan::neighbors`] (`d² ≤ R² + EPSILON`): traffic
    /// generation has always drawn destinations from the strict set while
    /// signal coverage uses the slack bound, and collapsing the two would
    /// shift golden traces. The grid serves both since strict ⊆ slack.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn adjacency_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        assert!(id.0 < self.positions.len(), "node id out of range");
        out.clear();
        let origin = self.positions[id.0];
        let r2 = self.range * self.range;
        self.grid.for_each_candidate(origin, |p| {
            // panic-path: grid candidates are ids the plan indexed.
            if p != id && origin.distance_squared(self.positions[p.0]) <= r2 {
                out.push(p);
            }
        });
        out.sort_unstable();
    }
}

/// Narrows an arena length to the 32-bit offset type.
///
/// panic-path: the arena holds one entry per (node, neighbour) edge and
/// the constructor caps n below `u32::MAX`, so the length always fits.
fn arena_offset(len: usize) -> u32 {
    u32::try_from(len).expect("arena stays below u32::MAX entries")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_geometry::Point;
    use dirca_sim::SimDuration;

    fn chan(points: Vec<Point>) -> Channel {
        Channel::new(points, 1.0, SimDuration::from_micros(1)).unwrap()
    }

    fn cross() -> Channel {
        chan(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(0.0, 0.9),
            Point::new(-0.9, 0.0),
            Point::new(0.0, -0.9),
            Point::new(3.0, 3.0), // isolated
        ])
    }

    fn beam(deg: f64) -> Beamwidth {
        Beamwidth::from_degrees(deg).unwrap()
    }

    #[test]
    fn neighbors_match_reference() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(30.0));
        for i in 0..c.len() {
            assert_eq!(
                plan.neighbors(NodeId(i)),
                c.covered_by(NodeId(i), TxPattern::Omni).unwrap().as_slice(),
                "node {i}"
            );
        }
    }

    #[test]
    fn directional_sets_match_reference_for_all_aims() {
        let c = cross();
        for theta in [15.0, 90.0, 181.0, 360.0] {
            let plan = CoveragePlan::new(&c, beam(theta));
            for src in 0..c.len() {
                // Every aim — neighbour, isolated node, or self — must
                // reproduce the reference footprint.
                for dst in 0..c.len() {
                    let pattern = TxPattern::aimed(
                        c.position(NodeId(src)).unwrap(),
                        c.position(NodeId(dst)).unwrap(),
                        beam(theta),
                    );
                    assert_eq!(
                        plan.directional_coverage(NodeId(src), NodeId(dst)),
                        c.covered_by(NodeId(src), pattern).unwrap(),
                        "θ={theta} {src}→{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrices_match_reference_bit_for_bit() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(90.0));
        for a in 0..c.len() {
            for b in 0..c.len() {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(
                    plan.distance(a, b).to_bits(),
                    c.distance(a, b).unwrap().to_bits()
                );
                assert_eq!(
                    plan.heading(a, b).radians().to_bits(),
                    c.heading(a, b).unwrap().radians().to_bits()
                );
            }
        }
    }

    #[test]
    fn omni_beamwidth_equals_the_neighbour_slice() {
        let c = cross();
        let plan = CoveragePlan::new(&c, Beamwidth::OMNI);
        for src in 0..c.len() {
            for &dst in plan.neighbors(NodeId(src)) {
                assert_eq!(
                    plan.directional_coverage(NodeId(src), dst),
                    plan.neighbors(NodeId(src)),
                    "360° beam must equal the omni footprint"
                );
            }
        }
    }

    #[test]
    fn adjacency_matches_strict_predicate() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(30.0));
        let mut out = Vec::new();
        for i in 0..c.len() {
            plan.adjacency_into(NodeId(i), &mut out);
            // Brute-force strict oracle (the Topology::adjacency
            // predicate: d² ≤ R², no EPSILON).
            let oracle: Vec<NodeId> = (0..c.len())
                .filter(|&j| {
                    j != i
                        && c.position(NodeId(i))
                            .unwrap()
                            .distance_squared(c.position(NodeId(j)).unwrap())
                            <= 1.0
                })
                .map(NodeId)
                .collect();
            assert_eq!(out, oracle, "node {i}");
        }
    }

    #[test]
    fn plan_memory_is_subquadratic() {
        // A constant-density field: plan bytes must grow ~linearly, far
        // below the dense 24·n² matrices the old plan carried.
        let make = |side: usize| {
            let pts: Vec<Point> = (0..side * side)
                .map(|i| Point::new((i % side) as f64 * 0.7, (i / side) as f64 * 0.7))
                .collect();
            let n = pts.len();
            let plan = CoveragePlan::new(&chan(pts), beam(45.0));
            (n, plan.index_bytes())
        };
        let (n_small, b_small) = make(10);
        let (n_large, b_large) = make(30);
        let growth = b_large as f64 / b_small as f64;
        let quadratic = ((n_large * n_large) / (n_small * n_small)) as f64;
        assert!(
            growth < quadratic / 2.0,
            "bytes grew {growth:.1}× for {quadratic:.0}× the pair count"
        );
    }

    #[test]
    fn empty_channel_builds_an_empty_plan() {
        let c = Channel::new(vec![], 1.0, SimDuration::ZERO).unwrap();
        let plan = CoveragePlan::new(&c, beam(90.0));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.arena_len(), 0);
    }

    #[test]
    fn accessors_report_build_parameters() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(45.0));
        assert_eq!(plan.len(), 6);
        assert!(!plan.is_empty());
        assert!((plan.beamwidth().degrees() - 45.0).abs() < 1e-12);
        assert!(!plan.grid().is_empty());
        assert!(plan.index_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "node id out of range")]
    fn out_of_range_lookup_panics() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(90.0));
        let _ = plan.distance(NodeId(0), NodeId(99));
    }
}
