//! Precomputed coverage plans for static geometry.
//!
//! Node positions, the range `R`, and the beamwidth θ are immutable for
//! the lifetime of a simulation run, yet the per-frame transmit path asks
//! the same spatial questions — who does this beam cover, and from which
//! bearing does the energy arrive — millions of times. A [`CoveragePlan`]
//! answers them from tables built once at world-construction time:
//!
//! * the pairwise **distance and heading matrices**,
//! * per-node **omni neighbour lists**, and
//! * per-(src, aimed-at dst) **directional coverage sets** — fully
//!   determined once the beamwidth is fixed, because an aimed beam's
//!   boresight is the src→dst heading.
//!
//! All coverage sets live as id-sorted slices in one shared arena, so a
//! lookup is two index reads and returns a borrowed `&[NodeId]`: the hot
//! path performs no trigonometry and no heap allocation. Every set is
//! computed *by* the reference implementation ([`Channel::covered_by`] /
//! [`Channel::heading`] / [`Channel::distance`]), so plan lookups are
//! equal to reference queries by construction; the property tests in
//! `tests/coverage_plan.rs` pin that equivalence across random topologies
//! and beamwidths.

use dirca_geometry::{Angle, Beamwidth};

use crate::channel::{Channel, TxPattern};
use crate::NodeId;

/// Sentinel arena offset marking a (src, dst) pair with no precomputed
/// directional set (dst outside src's omni neighbourhood).
const NO_SLICE: u32 = u32::MAX;

/// Precomputed spatial tables for one immutable [`Channel`] + beamwidth.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Beamwidth, Point};
/// use dirca_radio::{Channel, CoveragePlan, NodeId, TxPattern};
/// use dirca_sim::SimDuration;
///
/// let chan = Channel::new(
///     vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(0.0, 0.7)],
///     1.0,
///     SimDuration::from_micros(1),
/// )?;
/// let beam = Beamwidth::from_degrees(30.0).unwrap();
/// let plan = CoveragePlan::new(&chan, beam);
/// // Omni neighbourhoods match the reference query...
/// assert_eq!(plan.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
/// // ...and so does the footprint of a beam aimed 0 → 1.
/// let aimed = TxPattern::aimed(
///     chan.position(NodeId(0))?,
///     chan.position(NodeId(1))?,
///     beam,
/// );
/// assert_eq!(
///     plan.directional_coverage(NodeId(0), NodeId(1)).unwrap(),
///     chan.covered_by(NodeId(0), aimed)?.as_slice(),
/// );
/// # Ok::<(), dirca_radio::ChannelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoveragePlan {
    n: usize,
    beamwidth: Beamwidth,
    /// Row-major `n × n` distance matrix (`dist[a·n + b]` = |a − b|).
    dist: Vec<f64>,
    /// Row-major `n × n` heading matrix (`heading[a·n + b]` = bearing
    /// a → b).
    heading: Vec<Angle>,
    /// `n + 1` arena offsets delimiting each node's omni neighbour slice.
    omni_offsets: Vec<u32>,
    /// Row-major `n × n` arena ranges of the directional coverage sets;
    /// `(NO_SLICE, NO_SLICE)` where none was precomputed.
    dir_ranges: Vec<(u32, u32)>,
    /// The shared slice arena: omni neighbour lists first, directional
    /// coverage sets after (both in ascending id order).
    arena: Vec<NodeId>,
}

impl CoveragePlan {
    /// Builds the plan for `channel` with directional sets computed at
    /// `beamwidth`.
    ///
    /// Directional sets are precomputed for every (src, dst) pair where
    /// `dst` lies in src's omni neighbourhood — the only aims a MAC can
    /// produce, since frames address reachable peers. Aims at out-of-range
    /// destinations fall back to `None` from
    /// [`CoveragePlan::directional_coverage`] and the caller re-derives the
    /// footprint through the reference path.
    ///
    /// Cost: O(n²) trig for the matrices plus O(Σ deg(src) · n) sector
    /// tests for the directional sets — paid once per run, never on the
    /// per-frame path.
    ///
    /// # Panics
    ///
    /// Panics if the channel holds ≥ `u32::MAX` nodes (the arena uses
    /// 32-bit offsets; a simulated channel is orders of magnitude smaller).
    pub fn new(channel: &Channel, beamwidth: Beamwidth) -> Self {
        let n = channel.len();
        assert!(
            (n as u64) < u64::from(u32::MAX),
            "coverage plan supports fewer than u32::MAX nodes"
        );
        let mut dist = Vec::with_capacity(n * n);
        let mut heading = Vec::with_capacity(n * n);
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId(a), NodeId(b));
                dist.push(channel.distance(a, b).expect("node ids are in range"));
                heading.push(channel.heading(a, b).expect("node ids are in range"));
            }
        }

        let mut arena: Vec<NodeId> = Vec::new();
        let mut omni_offsets = Vec::with_capacity(n + 1);
        omni_offsets.push(0u32);
        for src in 0..n {
            let covered = channel
                .covered_by(NodeId(src), TxPattern::Omni)
                .expect("node ids are in range");
            arena.extend_from_slice(&covered);
            omni_offsets.push(arena_offset(arena.len()));
        }

        // Directional footprints. A beam shares the omni disk's exact
        // distance bound (`Sector::contains` and `TxPattern::covers` both
        // test `d² ≤ R² + EPSILON`), so its coverage is a subset of the
        // transmitter's omni neighbourhood: filtering the neighbour slice
        // through the reference predicate yields exactly
        // `Channel::covered_by` for the aimed pattern, at O(deg) instead of
        // O(n) per aim.
        let mut dir_ranges = vec![(NO_SLICE, NO_SLICE); n * n];
        let range = channel.range();
        for src in 0..n {
            let omni_range = (omni_offsets[src] as usize)..(omni_offsets[src + 1] as usize);
            let origin = channel.position(NodeId(src)).expect("src id is in range");
            for slot in omni_range.clone() {
                let dst = arena[slot];
                let pattern = TxPattern::aimed(
                    origin,
                    channel.position(dst).expect("dst id is in range"),
                    beamwidth,
                );
                // Append the filtered footprint to the arena, then roll it
                // back if the beam turned out to cover the whole
                // neighbourhood (wide θ or a degenerate layout) — aliasing
                // src's omni slice keeps the arena compact.
                let start = arena.len();
                for neighbor_slot in omni_range.clone() {
                    let p = arena[neighbor_slot];
                    let covered = pattern.covers(
                        origin,
                        range,
                        channel.position(p).expect("neighbour id is in range"),
                    );
                    if covered {
                        arena.push(p);
                    }
                }
                let slice = if arena.len() - start == omni_range.len() {
                    arena.truncate(start);
                    (omni_offsets[src], omni_offsets[src + 1])
                } else {
                    (arena_offset(start), arena_offset(arena.len()))
                };
                dir_ranges[src * n + dst.0] = slice;
            }
        }

        CoveragePlan {
            n,
            beamwidth,
            dist,
            heading,
            omni_offsets,
            dir_ranges,
            arena,
        }
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The beamwidth the directional sets were computed at.
    pub fn beamwidth(&self) -> Beamwidth {
        self.beamwidth
    }

    /// Total arena entries (a size diagnostic for tests and tooling).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Cached distance |a − b|, equal to [`Channel::distance`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        assert!(a.0 < self.n && b.0 < self.n, "node id out of range");
        self.dist[a.0 * self.n + b.0]
    }

    /// Cached bearing `from` → `to`, equal to [`Channel::heading`].
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn heading(&self, from: NodeId, to: NodeId) -> Angle {
        assert!(from.0 < self.n && to.0 < self.n, "node id out of range");
        self.heading[from.0 * self.n + to.0]
    }

    /// The omni neighbourhood of `id` in ascending id order, equal to
    /// [`Channel::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        let start = self.omni_offsets[id.0] as usize;
        let end = self.omni_offsets[id.0 + 1] as usize;
        &self.arena[start..end]
    }

    /// The footprint of a beam from `src` aimed at `dst` at the plan's
    /// beamwidth, in ascending id order — equal to [`Channel::covered_by`]
    /// with [`TxPattern::aimed`]. Returns `None` when `dst` is outside
    /// src's omni neighbourhood (no aim was precomputed); callers fall
    /// back to the reference query for those cold cases.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn directional_coverage(&self, src: NodeId, dst: NodeId) -> Option<&[NodeId]> {
        assert!(src.0 < self.n && dst.0 < self.n, "node id out of range");
        let (start, end) = self.dir_ranges[src.0 * self.n + dst.0];
        if start == NO_SLICE {
            return None;
        }
        Some(&self.arena[start as usize..end as usize])
    }
}

/// Narrows an arena length to the 32-bit offset type.
///
/// panic-path: the arena holds at most n² coverage entries and topologies
/// stay far below 2^16 nodes, so the length always fits in `u32`.
fn arena_offset(len: usize) -> u32 {
    u32::try_from(len).expect("arena stays below u32::MAX entries")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_geometry::Point;
    use dirca_sim::SimDuration;

    fn chan(points: Vec<Point>) -> Channel {
        Channel::new(points, 1.0, SimDuration::from_micros(1)).unwrap()
    }

    fn cross() -> Channel {
        chan(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(0.0, 0.9),
            Point::new(-0.9, 0.0),
            Point::new(0.0, -0.9),
            Point::new(3.0, 3.0), // isolated
        ])
    }

    fn beam(deg: f64) -> Beamwidth {
        Beamwidth::from_degrees(deg).unwrap()
    }

    #[test]
    fn neighbors_match_reference() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(30.0));
        for i in 0..c.len() {
            assert_eq!(
                plan.neighbors(NodeId(i)),
                c.covered_by(NodeId(i), TxPattern::Omni).unwrap().as_slice(),
                "node {i}"
            );
        }
    }

    #[test]
    fn directional_sets_match_reference_for_all_neighbor_aims() {
        let c = cross();
        for theta in [15.0, 90.0, 181.0, 360.0] {
            let plan = CoveragePlan::new(&c, beam(theta));
            for src in 0..c.len() {
                for &dst in plan.neighbors(NodeId(src)) {
                    let pattern = TxPattern::aimed(
                        c.position(NodeId(src)).unwrap(),
                        c.position(dst).unwrap(),
                        beam(theta),
                    );
                    assert_eq!(
                        plan.directional_coverage(NodeId(src), dst).unwrap(),
                        c.covered_by(NodeId(src), pattern).unwrap().as_slice(),
                        "θ={theta} {src}→{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn matrices_match_reference_bit_for_bit() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(90.0));
        for a in 0..c.len() {
            for b in 0..c.len() {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(
                    plan.distance(a, b).to_bits(),
                    c.distance(a, b).unwrap().to_bits()
                );
                assert_eq!(
                    plan.heading(a, b).radians().to_bits(),
                    c.heading(a, b).unwrap().radians().to_bits()
                );
            }
        }
    }

    #[test]
    fn non_neighbor_aim_has_no_precomputed_slice() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(30.0));
        // Node 5 is isolated: no aim toward it is precomputed, and it
        // precomputes no aims of its own.
        assert_eq!(plan.directional_coverage(NodeId(0), NodeId(5)), None);
        assert_eq!(plan.directional_coverage(NodeId(5), NodeId(0)), None);
        // Self-aims are never precomputed either.
        assert_eq!(plan.directional_coverage(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn omni_beamwidth_aliases_the_neighbour_slice() {
        let c = cross();
        let plan = CoveragePlan::new(&c, Beamwidth::OMNI);
        let narrow = CoveragePlan::new(&c, beam(30.0));
        for src in 0..c.len() {
            for &dst in plan.neighbors(NodeId(src)) {
                assert_eq!(
                    plan.directional_coverage(NodeId(src), dst).unwrap(),
                    plan.neighbors(NodeId(src)),
                    "360° beam must equal the omni footprint"
                );
            }
        }
        // Aliasing keeps the arena small: a 360° plan adds no directional
        // entries beyond the omni lists, unlike a narrow-beam plan.
        assert!(plan.arena_len() <= narrow.arena_len());
    }

    #[test]
    fn empty_channel_builds_an_empty_plan() {
        let c = Channel::new(vec![], 1.0, SimDuration::ZERO).unwrap();
        let plan = CoveragePlan::new(&c, beam(90.0));
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.arena_len(), 0);
    }

    #[test]
    fn accessors_report_build_parameters() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(45.0));
        assert_eq!(plan.len(), 6);
        assert!(!plan.is_empty());
        assert!((plan.beamwidth().degrees() - 45.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "node id out of range")]
    fn out_of_range_lookup_panics() {
        let c = cross();
        let plan = CoveragePlan::new(&c, beam(90.0));
        let _ = plan.distance(NodeId(0), NodeId(99));
    }
}
