//! Per-node receiver logic: collision-on-overlap decoding, carrier sense,
//! and the deaf-while-transmitting rule.

use dirca_geometry::{Angle, Beamwidth};
use dirca_sim::SimTime;

/// Identifier of one transmission (one frame in flight on the channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(pub u64);

/// How the node's receive chain treats simultaneous arrivals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReceptionMode {
    /// The paper's baseline: reception is omni-directional, so any two
    /// overlapping arrivals destroy each other.
    Omni,
    /// Nasipuri-style directional reception (extension experiment E8): the
    /// receiver instantly selects the antenna pointing at the frame it
    /// locked onto, and only interference arriving within that antenna's
    /// aperture corrupts the frame. Carrier sensing remains omni-directional
    /// (energy detection).
    Directional {
        /// Aperture of each receive antenna.
        beamwidth: Beamwidth,
    },
    /// Distance-ratio capture (protocol-model approximation of SIR
    /// capture, cf. the paper's footnote on signal-to-noise effects): a
    /// locked frame from distance `d` survives interference from distance
    /// `d_i` iff `d_i ≥ ratio·d` — the nearer transmitter "captures" the
    /// receiver. `ratio = 1` captures on any distance advantage;
    /// larger ratios are stricter. Interferers can never *become* the
    /// locked frame mid-air, matching real capture hardware only
    /// approximately.
    Capture {
        /// Required interferer-to-source distance ratio.
        ratio: f64,
    },
}

/// Outcome of a signal leaving the air at this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxEndReport {
    /// The frame was decoded cleanly and should be delivered to the MAC.
    pub delivered: bool,
    /// The node had locked onto this frame but interference (or its own
    /// transmission) destroyed it — the MAC's EIFS trigger.
    pub corrupted: bool,
    /// After this edge the node senses an idle medium.
    pub medium_idle_after: bool,
}

#[derive(Debug, Clone, Copy)]
struct Arrival {
    id: SignalId,
    heading: Angle,
    distance: f64,
    end: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    id: SignalId,
    heading: Angle,
    distance: f64,
    corrupted: bool,
}

/// The receive side of one node's radio.
///
/// A `Transceiver` is a pure state machine: the network layer feeds it
/// signal-arrival and signal-end edges (already offset by the propagation
/// delay) plus the node's own transmit start/stop, and it answers
///
/// * whether each ending frame was decoded ([`Transceiver::signal_ends`]),
/// * whether the medium currently appears busy ([`Transceiver::carrier_busy`]).
///
/// Decoding rule (paper's omni-reception model): a frame is delivered iff
/// the node was idle — neither transmitting nor hit by any other signal —
/// when the frame started arriving, and stayed clear of both for the frame's
/// whole duration.
///
/// # Example
///
/// ```
/// use dirca_geometry::Angle;
/// use dirca_radio::{ReceptionMode, SignalId, Transceiver};
/// use dirca_sim::SimTime;
///
/// let mut rx = Transceiver::new(ReceptionMode::Omni);
/// rx.signal_arrives(SignalId(1), Angle::ZERO, SimTime::from_micros(100));
/// assert!(rx.carrier_busy());
/// let report = rx.signal_ends(SignalId(1));
/// assert!(report.delivered);
/// assert!(report.medium_idle_after);
/// ```
#[derive(Debug, Clone)]
pub struct Transceiver {
    mode: ReceptionMode,
    transmitting: bool,
    arrivals: Vec<Arrival>,
    // Frames currently locked for decoding. Under omni reception at most one
    // lock can exist (everything is mutually in-band); under directional
    // reception each receive antenna can hold its own lock.
    candidates: Vec<Candidate>,
}

impl Transceiver {
    /// Creates an idle transceiver with the given reception mode.
    pub fn new(mode: ReceptionMode) -> Self {
        Transceiver {
            mode,
            transmitting: false,
            arrivals: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// The reception mode this transceiver was built with.
    pub fn mode(&self) -> ReceptionMode {
        self.mode
    }

    /// Whether the node is currently transmitting.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }

    /// Whether the node senses a busy medium: it is transmitting, or at
    /// least one signal is arriving (energy detection is omni-directional in
    /// every mode).
    pub fn carrier_busy(&self) -> bool {
        self.transmitting || !self.arrivals.is_empty()
    }

    /// Whether any signal energy is currently arriving (ignores own
    /// transmission state).
    pub fn energy_arriving(&self) -> bool {
        !self.arrivals.is_empty()
    }

    /// The latest trailing edge among the signals currently arriving, or
    /// `None` when no energy is on the air. Incoming energy keeps the
    /// carrier busy until at least this instant (later arrivals can extend
    /// it further).
    pub fn energy_until(&self) -> Option<SimTime> {
        self.arrivals.iter().map(|a| a.end).max()
    }

    /// The node starts transmitting. Any frame being decoded is lost (a
    /// single half-duplex transceiver cannot send and receive at once).
    pub fn begin_transmit(&mut self) {
        debug_assert!(
            !self.transmitting,
            "begin_transmit while already transmitting"
        );
        self.transmitting = true;
        self.candidates.clear();
    }

    /// The node stops transmitting. Signals still in flight toward it remain
    /// undecodable (their beginnings were missed) but keep the medium busy.
    pub fn end_transmit(&mut self) {
        debug_assert!(self.transmitting, "end_transmit while not transmitting");
        self.transmitting = false;
    }

    /// A signal begins arriving from direction `heading` (bearing from this
    /// node toward the transmitter), lasting until `end`.
    ///
    /// Returns `true` when this edge flipped the sensed medium from idle to
    /// busy. See [`Transceiver::signal_arrives_at`] when the reception mode
    /// uses sender distances.
    pub fn signal_arrives(&mut self, id: SignalId, heading: Angle, end: SimTime) -> bool {
        self.signal_arrives_at(id, heading, 1.0, end)
    }

    /// Like [`Transceiver::signal_arrives`], additionally carrying the
    /// transmitter's distance (used by [`ReceptionMode::Capture`]; ignored
    /// by the other modes).
    pub fn signal_arrives_at(
        &mut self,
        id: SignalId,
        heading: Angle,
        distance: f64,
        end: SimTime,
    ) -> bool {
        let was_busy = self.carrier_busy();
        let interferers_in_band = self
            .arrivals
            .iter()
            .any(|a| interferes(self.mode, heading, distance, a.heading, a.distance));
        self.arrivals.push(Arrival {
            id,
            heading,
            distance,
            end,
        });

        if self.transmitting {
            return !was_busy;
        }
        // The new signal jams every lock it interferes with.
        let mode = self.mode;
        for c in &mut self.candidates {
            if interferes(mode, c.heading, c.distance, heading, distance) {
                c.corrupted = true;
            }
        }
        // It can itself be locked onto only if nothing interferes with it.
        if !interferers_in_band {
            self.candidates.push(Candidate {
                id,
                heading,
                distance,
                corrupted: false,
            });
        }
        !was_busy
    }

    /// The signal `id` stops arriving.
    ///
    /// Returns whether the frame was decoded and whether the medium is now
    /// idle. Unknown ids are ignored (reported as not delivered), which
    /// makes replays of stale edges harmless.
    pub fn signal_ends(&mut self, id: SignalId) -> RxEndReport {
        if let Some(pos) = self.arrivals.iter().position(|a| a.id == id) {
            self.arrivals.swap_remove(pos);
        }
        let (delivered, corrupted) = match self.candidates.iter().position(|c| c.id == id) {
            Some(pos) => {
                let c = self.candidates.swap_remove(pos);
                let ok = !c.corrupted && !self.transmitting;
                (ok, !ok)
            }
            None => (false, false),
        };
        RxEndReport {
            delivered,
            corrupted,
            medium_idle_after: !self.carrier_busy(),
        }
    }
}

/// Whether an interferer (heading `i_heading`, distance `i_distance`)
/// disturbs the reception of a frame (heading `f_heading`, distance
/// `f_distance`) under `mode`.
fn interferes(
    mode: ReceptionMode,
    f_heading: Angle,
    f_distance: f64,
    i_heading: Angle,
    i_distance: f64,
) -> bool {
    match mode {
        ReceptionMode::Omni => true,
        ReceptionMode::Directional { beamwidth } => {
            beamwidth.covers_separation(f_heading.separation(i_heading))
        }
        ReceptionMode::Capture { ratio } => i_distance < ratio * f_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn omni() -> Transceiver {
        Transceiver::new(ReceptionMode::Omni)
    }

    fn east() -> Angle {
        Angle::ZERO
    }

    fn west() -> Angle {
        Angle::from_degrees(180.0)
    }

    #[test]
    fn clean_single_frame_is_delivered() {
        let mut rx = omni();
        assert!(
            rx.signal_arrives(SignalId(1), east(), t(100)),
            "idle→busy edge"
        );
        let r = rx.signal_ends(SignalId(1));
        assert!(r.delivered);
        assert!(r.medium_idle_after);
    }

    #[test]
    fn overlap_corrupts_both_frames() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(100));
        assert!(
            !rx.signal_arrives(SignalId(2), west(), t(50)),
            "already busy"
        );
        let r2 = rx.signal_ends(SignalId(2));
        assert!(!r2.delivered);
        assert!(!r2.medium_idle_after, "signal 1 still in the air");
        let r1 = rx.signal_ends(SignalId(1));
        assert!(!r1.delivered, "first frame was hit by the second");
        assert!(r1.medium_idle_after);
    }

    #[test]
    fn frame_starting_after_collision_clears_is_clean() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(10));
        rx.signal_arrives(SignalId(2), west(), t(20));
        rx.signal_ends(SignalId(1));
        rx.signal_ends(SignalId(2));
        rx.signal_arrives(SignalId(3), east(), t(30));
        assert!(rx.signal_ends(SignalId(3)).delivered);
    }

    #[test]
    fn joining_mid_signal_is_not_decodable() {
        // Node stops transmitting while a signal is mid-flight: the leftover
        // signal keeps the medium busy but cannot be decoded.
        let mut rx = omni();
        rx.begin_transmit();
        rx.signal_arrives(SignalId(1), east(), t(100));
        rx.end_transmit();
        assert!(rx.carrier_busy());
        let r = rx.signal_ends(SignalId(1));
        assert!(!r.delivered);
        assert!(r.medium_idle_after);
    }

    #[test]
    fn transmitting_node_is_deaf() {
        let mut rx = omni();
        rx.begin_transmit();
        rx.signal_arrives(SignalId(1), east(), t(100));
        let r = rx.signal_ends(SignalId(1));
        assert!(!r.delivered);
        assert!(!r.medium_idle_after, "still transmitting");
        rx.end_transmit();
        assert!(!rx.carrier_busy());
    }

    #[test]
    fn transmit_during_reception_kills_frame() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(100));
        rx.begin_transmit();
        rx.end_transmit();
        assert!(!rx.signal_ends(SignalId(1)).delivered);
    }

    #[test]
    fn second_signal_after_first_ends_is_decodable() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(10));
        assert!(rx.signal_ends(SignalId(1)).delivered);
        rx.signal_arrives(SignalId(2), east(), t(20));
        assert!(rx.signal_ends(SignalId(2)).delivered);
    }

    #[test]
    fn carrier_busy_tracks_all_energy() {
        let mut rx = omni();
        assert!(!rx.carrier_busy());
        rx.signal_arrives(SignalId(1), east(), t(10));
        rx.signal_arrives(SignalId(2), east(), t(20));
        assert!(rx.carrier_busy());
        rx.signal_ends(SignalId(1));
        assert!(rx.carrier_busy());
        rx.signal_ends(SignalId(2));
        assert!(!rx.carrier_busy());
    }

    #[test]
    fn unknown_signal_end_is_harmless() {
        let mut rx = omni();
        let r = rx.signal_ends(SignalId(42));
        assert!(!r.delivered);
        assert!(r.medium_idle_after);
    }

    #[test]
    fn directional_rx_ignores_out_of_beam_interference() {
        let beam = Beamwidth::from_degrees(60.0).unwrap();
        let mut rx = Transceiver::new(ReceptionMode::Directional { beamwidth: beam });
        rx.signal_arrives(SignalId(1), east(), t(100));
        // Interferer from the opposite side: outside the selected antenna.
        rx.signal_arrives(SignalId(2), west(), t(50));
        rx.signal_ends(SignalId(2));
        assert!(
            rx.signal_ends(SignalId(1)).delivered,
            "out-of-beam interference must not corrupt under directional reception"
        );
    }

    #[test]
    fn directional_rx_still_corrupted_in_beam() {
        let beam = Beamwidth::from_degrees(60.0).unwrap();
        let mut rx = Transceiver::new(ReceptionMode::Directional { beamwidth: beam });
        rx.signal_arrives(SignalId(1), east(), t(100));
        rx.signal_arrives(SignalId(2), Angle::from_degrees(20.0), t(50));
        rx.signal_ends(SignalId(2));
        assert!(!rx.signal_ends(SignalId(1)).delivered);
    }

    #[test]
    fn directional_rx_locks_through_out_of_beam_jammer() {
        // A frame arriving while an out-of-beam signal is already present
        // can still be locked onto and decoded under directional reception.
        let beam = Beamwidth::from_degrees(60.0).unwrap();
        let mut rx = Transceiver::new(ReceptionMode::Directional { beamwidth: beam });
        rx.signal_arrives(SignalId(1), west(), t(100));
        // Out-of-beam relative to the jammer: lock succeeds.
        rx.signal_arrives(SignalId(2), east(), t(50));
        assert!(rx.signal_ends(SignalId(2)).delivered);
    }

    #[test]
    fn omni_rx_cannot_lock_through_jammer() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), west(), t(100));
        rx.signal_arrives(SignalId(2), east(), t(50));
        assert!(!rx.signal_ends(SignalId(2)).delivered);
    }

    #[test]
    fn directional_carrier_sense_is_still_omni() {
        let beam = Beamwidth::from_degrees(30.0).unwrap();
        let mut rx = Transceiver::new(ReceptionMode::Directional { beamwidth: beam });
        rx.signal_arrives(SignalId(1), west(), t(100));
        assert!(rx.carrier_busy(), "energy detection ignores direction");
    }

    #[test]
    fn three_way_pileup_delivers_nothing() {
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(100));
        rx.signal_arrives(SignalId(2), west(), t(100));
        rx.signal_arrives(SignalId(3), Angle::from_degrees(90.0), t(100));
        assert!(!rx.signal_ends(SignalId(1)).delivered);
        assert!(!rx.signal_ends(SignalId(2)).delivered);
        let last = rx.signal_ends(SignalId(3));
        assert!(!last.delivered);
        assert!(last.medium_idle_after);
    }

    #[test]
    fn mode_accessor() {
        assert_eq!(omni().mode(), ReceptionMode::Omni);
    }

    #[test]
    fn energy_until_tracks_latest_trailing_edge() {
        let mut rx = omni();
        assert_eq!(rx.energy_until(), None);
        rx.signal_arrives(SignalId(1), east(), t(10));
        rx.signal_arrives(SignalId(2), west(), t(25));
        assert_eq!(rx.energy_until(), Some(t(25)));
        rx.signal_ends(SignalId(2));
        assert_eq!(rx.energy_until(), Some(t(10)));
        rx.signal_ends(SignalId(1));
        assert_eq!(rx.energy_until(), None);
    }

    #[test]
    fn capture_survives_distant_interference() {
        let mut rx = Transceiver::new(ReceptionMode::Capture { ratio: 2.0 });
        // Frame from 0.2 away; interferer from 0.9 away: 0.9 >= 2×0.2.
        rx.signal_arrives_at(SignalId(1), east(), 0.2, t(100));
        rx.signal_arrives_at(SignalId(2), west(), 0.9, t(50));
        rx.signal_ends(SignalId(2));
        assert!(rx.signal_ends(SignalId(1)).delivered, "near frame captured");
    }

    #[test]
    fn capture_lost_to_near_interference() {
        let mut rx = Transceiver::new(ReceptionMode::Capture { ratio: 2.0 });
        rx.signal_arrives_at(SignalId(1), east(), 0.5, t(100));
        rx.signal_arrives_at(SignalId(2), west(), 0.6, t(50));
        rx.signal_ends(SignalId(2));
        assert!(!rx.signal_ends(SignalId(1)).delivered, "0.6 < 2×0.5 jams");
    }

    #[test]
    fn capture_cannot_lock_onto_late_frame_through_near_jammer() {
        let mut rx = Transceiver::new(ReceptionMode::Capture { ratio: 2.0 });
        // A jammer from 0.2 is already on the air; a frame from 0.9 cannot
        // be locked (the jammer interferes with it).
        rx.signal_arrives_at(SignalId(1), west(), 0.2, t(100));
        rx.signal_arrives_at(SignalId(2), east(), 0.9, t(50));
        assert!(!rx.signal_ends(SignalId(2)).delivered);
    }

    #[test]
    fn capture_ratio_one_is_strictly_nearer_wins() {
        let mut rx = Transceiver::new(ReceptionMode::Capture { ratio: 1.0 });
        rx.signal_arrives_at(SignalId(1), east(), 0.5, t(100));
        // Equal distance: not strictly nearer, frame survives.
        rx.signal_arrives_at(SignalId(2), west(), 0.5, t(50));
        rx.signal_ends(SignalId(2));
        assert!(rx.signal_ends(SignalId(1)).delivered);
    }

    #[test]
    fn omni_default_distance_path_unchanged() {
        // signal_arrives (no distance) must behave exactly like before for
        // the omni mode.
        let mut rx = omni();
        rx.signal_arrives(SignalId(1), east(), t(100));
        rx.signal_arrives(SignalId(2), west(), t(50));
        rx.signal_ends(SignalId(2));
        assert!(!rx.signal_ends(SignalId(1)).delivered);
    }
}
