//! Deterministic fault-injection plans for the unit-disk channel.
//!
//! The paper's channel is perfect: every covered frame is received. A
//! [`FaultPlan`] declares controlled departures from that ideal —
//!
//! * an i.i.d. **frame error rate** applied independently at every
//!   receiver,
//! * **per-link degradation**: elevated FER on a configured subset of
//!   `(src, dst)` pairs (asymmetric links, partial obstructions),
//! * **node outages**: a node is deaf *and* mute over `[from, until)`
//!   windows (battery death, reboot), exercising DCF retry exhaustion and
//!   NAV staleness at its peers.
//!
//! The plan itself is pure data — validation and per-run lookup tables live
//! here, while the random draws (and their dedicated per-node RNG streams)
//! belong to the network layer that owns the event loop. A
//! [`trivial`](FaultPlan::is_trivial) plan injects nothing and must leave
//! the simulation byte-identical to one with no plan at all.

use std::fmt;

use dirca_sim::SimTime;

use crate::NodeId;

/// Elevated frame-error rate on one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Probability that a frame on this link is corrupted at `dst`.
    /// Combined with the plan-wide rate by taking the maximum.
    pub fer: f64,
}

/// One node's radio is out of service over `[from, until)`: it neither
/// decodes incoming frames (deaf) nor radiates energy (mute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
}

/// Declarative description of the channel imperfections for one run.
///
/// Build with the consuming `with_*` methods, then hand it to the network
/// layer via its simulation config. The default plan is trivial (perfect
/// channel).
///
/// ```
/// use dirca_radio::{FaultPlan, NodeId};
/// use dirca_sim::SimTime;
///
/// let plan = FaultPlan::default()
///     .with_frame_error_rate(0.05)
///     .with_link_fault(NodeId(0), NodeId(1), 0.5)
///     .with_outage(NodeId(2), SimTime::from_millis(100), SimTime::from_millis(250));
/// assert!(!plan.is_trivial());
/// assert!(plan.validate(3).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Base i.i.d. frame error rate applied to every `(src, dst)` pair.
    pub frame_error_rate: f64,
    /// Per-link overrides; each link's effective FER is
    /// `max(frame_error_rate, link.fer)`.
    pub link_faults: Vec<LinkFault>,
    /// Out-of-service windows.
    pub outages: Vec<Outage>,
}

impl FaultPlan {
    /// Sets the plan-wide i.i.d. frame error rate.
    pub fn with_frame_error_rate(mut self, fer: f64) -> Self {
        self.frame_error_rate = fer;
        self
    }

    /// Adds an elevated FER on the directed link `src -> dst`.
    pub fn with_link_fault(mut self, src: NodeId, dst: NodeId, fer: f64) -> Self {
        self.link_faults.push(LinkFault { src, dst, fer });
        self
    }

    /// Adds an out-of-service window `[from, until)` for `node`.
    pub fn with_outage(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.outages.push(Outage { node, from, until });
        self
    }

    /// Whether the plan perturbs nothing. A trivial plan must not alter a
    /// run in any way — not even RNG stream consumption — so zero-fault
    /// simulations stay byte-identical to golden traces.
    pub fn is_trivial(&self) -> bool {
        // FERs are validated into [0, 1], so `<= 0` is exact-zero here
        // without tripping the float-equality lint.
        self.frame_error_rate <= 0.0
            && self.link_faults.iter().all(|l| l.fer <= 0.0)
            && self.outages.iter().all(|o| o.from >= o.until)
    }

    /// Validates the plan against a topology of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), FaultPlanError> {
        check_fer("frame_error_rate", self.frame_error_rate)?;
        for link in &self.link_faults {
            if link.src.0 >= n || link.dst.0 >= n {
                return Err(FaultPlanError::NodeOutOfRange {
                    node: link.src.0.max(link.dst.0),
                    nodes: n,
                });
            }
            if link.src == link.dst {
                return Err(FaultPlanError::SelfLink { node: link.src.0 });
            }
            check_fer("link fer", link.fer)?;
        }
        for outage in &self.outages {
            if outage.node.0 >= n {
                return Err(FaultPlanError::NodeOutOfRange {
                    node: outage.node.0,
                    nodes: n,
                });
            }
            if outage.from >= outage.until {
                return Err(FaultPlanError::EmptyOutage {
                    node: outage.node.0,
                });
            }
        }
        Ok(())
    }

    /// Validates and compiles the plan into per-run lookup tables for a
    /// topology of `n` nodes.
    pub fn compile(&self, n: usize) -> Result<CompiledFaults, FaultPlanError> {
        self.validate(n)?;
        let mut fer = vec![self.frame_error_rate; n * n];
        for link in &self.link_faults {
            let cell = &mut fer[link.src.0 * n + link.dst.0];
            *cell = cell.max(link.fer);
        }
        let mut outages: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n];
        for outage in &self.outages {
            outages[outage.node.0].push((outage.from, outage.until));
        }
        for windows in &mut outages {
            windows.sort();
        }
        Ok(CompiledFaults { n, fer, outages })
    }
}

fn check_fer(what: &'static str, fer: f64) -> Result<(), FaultPlanError> {
    if fer.is_finite() && (0.0..=1.0).contains(&fer) {
        Ok(())
    } else {
        Err(FaultPlanError::BadErrorRate { what, fer })
    }
}

/// Why a [`FaultPlan`] was rejected for a given topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An error rate was not a probability in `[0, 1]`.
    BadErrorRate {
        /// Which rate field.
        what: &'static str,
        /// The offending value.
        fer: f64,
    },
    /// A referenced node id does not exist in the topology.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Topology size.
        nodes: usize,
    },
    /// A link fault names the same node as source and destination.
    SelfLink {
        /// The offending node id.
        node: usize,
    },
    /// An outage window is empty (`from >= until`).
    EmptyOutage {
        /// The affected node id.
        node: usize,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadErrorRate { what, fer } => {
                write!(f, "{what} must be a probability in [0, 1], got {fer}")
            }
            FaultPlanError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault plan names node {node}, topology has {nodes} nodes"
                )
            }
            FaultPlanError::SelfLink { node } => {
                write!(f, "link fault from node {node} to itself")
            }
            FaultPlanError::EmptyOutage { node } => {
                write!(f, "empty outage window for node {node} (from >= until)")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Per-run lookup tables compiled from a validated [`FaultPlan`]: a dense
/// per-link FER matrix and sorted per-node outage windows, so the per-frame
/// hot path answers every fault query without search or allocation.
#[derive(Debug, Clone)]
pub struct CompiledFaults {
    n: usize,
    /// Row-major `[src][dst]` effective FER.
    fer: Vec<f64>,
    /// Per-node outage windows, sorted by start.
    outages: Vec<Vec<(SimTime, SimTime)>>,
}

impl CompiledFaults {
    /// Effective frame error rate on the link `src -> dst`.
    pub fn fer(&self, src: NodeId, dst: NodeId) -> f64 {
        self.fer[src.0 * self.n + dst.0]
    }

    /// Whether `node` is out of service at instant `t`.
    pub fn in_outage(&self, node: NodeId, t: SimTime) -> bool {
        self.outages[node.0]
            .iter()
            .any(|&(from, until)| from <= t && t < until)
    }

    /// Whether any part of the closed interval `[start, end]` (a frame's
    /// reception at `node`) overlaps one of the node's outage windows. A
    /// receiver that is dead for even part of a frame cannot decode it.
    pub fn outage_overlaps(&self, node: NodeId, start: SimTime, end: SimTime) -> bool {
        self.outages[node.0]
            .iter()
            .any(|&(from, until)| from <= end && start < until)
    }

    /// Whether any node has outage windows at all.
    pub fn has_outages(&self) -> bool {
        self.outages.iter().any(|w| !w.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn default_plan_is_trivial_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_trivial());
        assert!(plan.validate(5).is_ok());
        let compiled = plan.compile(3).unwrap();
        assert_eq!(compiled.fer(NodeId(0), NodeId(2)), 0.0);
        assert!(!compiled.has_outages());
        assert!(!compiled.in_outage(NodeId(1), ms(10)));
    }

    #[test]
    fn zero_rate_link_faults_and_empty_outages_stay_trivial() {
        // A plan that names links and windows but perturbs nothing must be
        // recognized as trivial so it cannot disturb golden traces. (An
        // empty window is invalid under validate(), but is_trivial() is the
        // cheap pre-check used before validation.)
        let plan = FaultPlan::default().with_link_fault(NodeId(0), NodeId(1), 0.0);
        assert!(plan.is_trivial());
    }

    #[test]
    fn link_fault_takes_max_with_base_rate() {
        let plan = FaultPlan::default()
            .with_frame_error_rate(0.2)
            .with_link_fault(NodeId(0), NodeId(1), 0.5)
            .with_link_fault(NodeId(1), NodeId(0), 0.05);
        let compiled = plan.compile(2).unwrap();
        assert_eq!(compiled.fer(NodeId(0), NodeId(1)), 0.5);
        // The weaker override loses to the base rate.
        assert_eq!(compiled.fer(NodeId(1), NodeId(0)), 0.2);
    }

    #[test]
    fn outage_queries_honor_half_open_windows() {
        let plan = FaultPlan::default().with_outage(NodeId(1), ms(100), ms(200));
        let compiled = plan.compile(3).unwrap();
        assert!(!compiled.in_outage(NodeId(1), ms(99)));
        assert!(compiled.in_outage(NodeId(1), ms(100)));
        assert!(compiled.in_outage(NodeId(1), ms(199)));
        assert!(!compiled.in_outage(NodeId(1), ms(200)));
        assert!(!compiled.in_outage(NodeId(0), ms(150)));
    }

    #[test]
    fn reception_overlap_catches_partial_windows() {
        let plan = FaultPlan::default().with_outage(NodeId(0), ms(100), ms(200));
        let compiled = plan.compile(1).unwrap();
        // Fully before / fully after.
        assert!(!compiled.outage_overlaps(NodeId(0), ms(0), ms(99)));
        assert!(!compiled.outage_overlaps(NodeId(0), ms(200), ms(300)));
        // Straddling either edge, or contained.
        assert!(compiled.outage_overlaps(NodeId(0), ms(90), ms(110)));
        assert!(compiled.outage_overlaps(NodeId(0), ms(190), ms(210)));
        assert!(compiled.outage_overlaps(NodeId(0), ms(120), ms(130)));
        assert!(compiled.outage_overlaps(NodeId(0), ms(50), ms(400)));
        // A reception ending exactly as the outage begins is lost (the
        // window is inclusive of its start), one starting exactly at the
        // outage end is fine.
        assert!(compiled.outage_overlaps(NodeId(0), ms(50), ms(100)));
        assert!(!compiled.outage_overlaps(NodeId(0), ms(200), ms(250)));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let n = 3;
        assert!(matches!(
            FaultPlan::default().with_frame_error_rate(1.5).validate(n),
            Err(FaultPlanError::BadErrorRate { .. })
        ));
        assert!(matches!(
            FaultPlan::default()
                .with_frame_error_rate(f64::NAN)
                .validate(n),
            Err(FaultPlanError::BadErrorRate { .. })
        ));
        assert!(matches!(
            FaultPlan::default()
                .with_link_fault(NodeId(0), NodeId(7), 0.1)
                .validate(n),
            Err(FaultPlanError::NodeOutOfRange { node: 7, nodes: 3 })
        ));
        assert!(matches!(
            FaultPlan::default()
                .with_link_fault(NodeId(1), NodeId(1), 0.1)
                .validate(n),
            Err(FaultPlanError::SelfLink { node: 1 })
        ));
        assert!(matches!(
            FaultPlan::default()
                .with_outage(NodeId(9), ms(0), ms(1))
                .validate(n),
            Err(FaultPlanError::NodeOutOfRange { node: 9, nodes: 3 })
        ));
        assert!(matches!(
            FaultPlan::default()
                .with_outage(NodeId(0), ms(5), ms(5))
                .validate(n),
            Err(FaultPlanError::EmptyOutage { node: 0 })
        ));
    }

    #[test]
    fn errors_display_the_problem() {
        let e = FaultPlan::default().with_frame_error_rate(2.0).validate(1);
        assert!(e.unwrap_err().to_string().contains("probability"));
        let e = FaultPlan::default()
            .with_outage(NodeId(0), ms(1), ms(1))
            .validate(1);
        assert!(e.unwrap_err().to_string().contains("empty outage"));
    }

    #[test]
    fn overlapping_windows_merge_behaviorally() {
        let plan = FaultPlan::default()
            .with_outage(NodeId(0), ms(100), ms(150))
            .with_outage(NodeId(0), ms(140), ms(220));
        let compiled = plan.compile(1).unwrap();
        for t in [100, 149, 150, 219] {
            assert!(compiled.in_outage(NodeId(0), ms(t)), "t = {t} ms");
        }
        assert!(!compiled.in_outage(NodeId(0), ms(220)));
    }
}
