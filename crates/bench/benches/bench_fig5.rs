//! Benchmarks regenerating Fig. 5 (E1): the full analytical beamwidth
//! sweep, per density.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dirca_analysis::sweep::{fig5, paper_theta_grid};
use dirca_analysis::ProtocolTimes;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for n in [3.0, 5.0, 8.0] {
        group.bench_function(format!("sweep_n{n}"), |b| {
            b.iter(|| {
                let rows = fig5(ProtocolTimes::paper(), black_box(n), &paper_theta_grid());
                black_box(rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
