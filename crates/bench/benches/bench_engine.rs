//! Micro-benchmarks of the simulation substrate: event-queue throughput
//! and end-to-end simulated-seconds-per-wallclock-second of the full
//! 802.11 stack on fixture topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dirca_mac::Scheme;
use dirca_net::{run, SimConfig};
use dirca_sim::{EventQueue, SimDuration, SimTime};
use dirca_topology::fixtures;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-shuffled timestamps.
                q.push(SimTime::from_nanos(i.wrapping_mul(0x9E3779B97F4A7C15)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_1s");
    group.sample_size(10);
    for (name, topo) in [
        ("pair", fixtures::pair(0.5, 1.0)),
        ("hidden_terminal", fixtures::hidden_terminal()),
        ("parallel_pairs", fixtures::parallel_pairs()),
    ] {
        group.bench_function(name, |b| {
            let config = SimConfig::new(Scheme::OrtsOcts)
                .with_seed(1)
                .with_warmup(SimDuration::from_millis(10))
                .with_measure(SimDuration::from_secs(1));
            b.iter(|| black_box(run(black_box(&topo), &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_end_to_end);
criterion_main!(benches);
