//! Benchmarks regenerating one cell of Figs. 6/7 and the collision-ratio/
//! fairness statistics (E3-E6; the same simulation runs produce all four
//! metrics).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dirca_experiments::ringsim::{run_cell, RingExperiment};
use dirca_mac::Scheme;

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_cell");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        for (n, theta) in [(3usize, 30.0), (5, 90.0)] {
            group.bench_function(format!("{scheme}_n{n}_theta{theta}"), |b| {
                let exp = RingExperiment::quick(scheme, n, theta);
                b.iter(|| black_box(run_cell(black_box(&exp), 2)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
