//! Benchmarks for the analytical model (E7): single-point throughput
//! evaluations, the p-optimizer, and the ablation table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dirca_analysis::ablation::ablation_table;
use dirca_analysis::optimize::max_throughput;
use dirca_analysis::{throughput, ModelInput, ProtocolTimes};
use dirca_mac::Scheme;

fn bench_throughput_eval(c: &mut Criterion) {
    let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
    let mut group = c.benchmark_group("analysis_throughput");
    for scheme in Scheme::ALL {
        group.bench_function(format!("{scheme}"), |b| {
            b.iter(|| black_box(throughput(scheme, black_box(&input), black_box(0.02))))
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
    c.bench_function("analysis_optimize_drts_dcts", |b| {
        b.iter(|| black_box(max_throughput(Scheme::DrtsDcts, black_box(&input))))
    });
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_ablation");
    group.sample_size(10);
    group.bench_function("table_three_thetas", |b| {
        b.iter(|| {
            black_box(ablation_table(
                ProtocolTimes::paper(),
                black_box(5.0),
                &[30.0, 90.0, 150.0],
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_throughput_eval,
    bench_optimizer,
    bench_ablation
);
criterion_main!(benches);
