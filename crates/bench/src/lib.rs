//! Benchmark support crate.
//!
//! The interesting content lives in `benches/`: one Criterion target per
//! reproduced experiment (`bench_fig5`, `bench_fig6` covering Figs. 6/7
//! whose runs are shared, `bench_analysis` for the model ablations) plus
//! `bench_engine` micro-benchmarks of the simulation substrate.
//!
//! The `dirca-bench` binary (`src/main.rs`) is the pinned-seed harness:
//! it times the quick paper grid end to end and writes
//! `BENCH_paper_grid.json` at the repository root.
