//! `dirca-bench`: the pinned-seed performance harness.
//!
//! Runs the quick profile of the paper's Figs. 6/7 ring grid (every
//! `(N, θ, scheme)` cell at 4 topologies each, master seed `0xD1CA`),
//! two engine micro-benchmarks, and a large-field scaling benchmark
//! (pinned Poisson fields of 1k/10k/100k nodes exercising the uniform-grid
//! coverage index), and writes the measurements to
//! `BENCH_paper_grid.json` at the repository root:
//!
//! ```text
//! cargo run --release -p dirca-bench            # default output path
//! cargo run --release -p dirca-bench -- --out /tmp/bench.json --threads 4
//! cargo run --release -p dirca-bench -- --scaling-max 100000   # full sweep
//! ```
//!
//! `--scaling-max` caps the largest scaling field (default 10000; 0 skips
//! the sweep entirely while keeping the empty `scaling` section in the
//! report).
//!
//! The workload is deterministic — identical seeds, topologies, and event
//! streams on every invocation — so run-to-run differences in the JSON are
//! pure wall-clock noise, and two checkouts can be compared by running the
//! harness on each. Wall-clock timing itself is the *point* of this
//! binary, which is why the `dirca-audit` static rules exempt the bench
//! crate from the `std::time` ban that covers the deterministic core.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use dirca_experiments::ringsim::{paper_grid, run_cell, topology_config, RingExperiment};
use dirca_mac::Scheme;
use dirca_net::{run, SimConfig};
use dirca_radio::{Channel, CoveragePlan};
use dirca_sim::rng::derive_seed;
use dirca_sim::{EventQueue, SimDuration, SimTime};
use dirca_topology::{poisson_field_pinned, RingSpec};

/// Master seed shared with the `paper_grid` experiment binary.
const SEED: u64 = 0xD1CA;

fn main() {
    let (out_path, threads, scaling_max) = parse_args();
    let mut cells = Vec::new();

    eprintln!("dirca-bench: quick paper grid, {threads} threads, seed {SEED:#x}");
    let grid_start = Instant::now();
    for (n_avg, theta, scheme) in paper_grid() {
        let experiment = RingExperiment::quick(scheme, n_avg, theta);
        let plan = plan_metrics(&experiment);
        let cell_start = Instant::now();
        let outcome = run_cell(&experiment, threads);
        let wall_ms = cell_start.elapsed().as_secs_f64() * 1e3;
        eprintln!("  {scheme:?} N={n_avg} θ={theta:>5.1}°: {wall_ms:7.1} ms");
        cells.push(CellRow {
            scheme,
            n_avg,
            theta,
            wall_ms,
            throughput_mean: outcome.throughput.mean().unwrap_or(0.0),
            plan_build_ms: plan.build_ms,
            plan_arena_bytes: plan.arena_bytes,
        });
    }
    let grid_wall_ms = grid_start.elapsed().as_secs_f64() * 1e3;

    let engine = engine_microbench();
    let queue_ns = queue_microbench();
    eprintln!(
        "  grid {grid_wall_ms:.0} ms | engine {:.2} Mev/s, {:.0} ns/transmit | queue {queue_ns:.1} ns/cycle",
        engine.events_per_sec / 1e6,
        engine.ns_per_transmit
    );

    let scaling = scaling_bench(scaling_max);

    #[cfg(feature = "trace")]
    let extra_sections = {
        eprintln!("  profiling per-event-class dispatch (trace feature)");
        vec![profile::event_profile_section()]
    };
    #[cfg(not(feature = "trace"))]
    let extra_sections: Vec<String> = Vec::new();

    let json = render_json(
        threads,
        grid_wall_ms,
        &cells,
        &engine,
        queue_ns,
        &scaling,
        &extra_sections,
    );
    std::fs::write(&out_path, json).expect("failed to write benchmark report");
    eprintln!("dirca-bench: wrote {out_path}");
}

/// Parses `--out <path>`, `--threads <n>`, and `--scaling-max <nodes>`
/// (all optional).
fn parse_args() -> (String, usize, usize) {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_paper_grid.json");
    let mut out = default_out.to_string();
    let mut threads = 2usize;
    let mut scaling_max = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = args.next().expect("--out requires a path");
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads requires a positive integer");
            }
            "--scaling-max" => {
                scaling_max = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scaling-max requires a non-negative integer");
            }
            other => {
                panic!("unrecognized flag {other:?} (expected --out, --threads, or --scaling-max)")
            }
        }
    }
    assert!(threads > 0, "--threads requires a positive integer");
    (out, threads, scaling_max)
}

/// One measured grid cell.
struct CellRow {
    scheme: Scheme,
    n_avg: usize,
    theta: f64,
    wall_ms: f64,
    throughput_mean: f64,
    plan_build_ms: f64,
    plan_arena_bytes: usize,
}

/// Coverage-plan construction cost for one grid cell's first topology.
struct PlanMetrics {
    build_ms: f64,
    arena_bytes: usize,
}

/// Times `CoveragePlan` construction on topology 0 of the cell — the
/// plan-build cost the steady-state throughput numbers never showed.
fn plan_metrics(experiment: &RingExperiment) -> PlanMetrics {
    let (topology, config) = topology_config(experiment, 0);
    let channel = Channel::new(
        topology.positions.clone(),
        topology.range,
        config.params.propagation_delay,
    )
    .expect("ring topology range is valid");
    let start = Instant::now();
    let plan = CoveragePlan::new(&channel, config.beamwidth);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    PlanMetrics {
        build_ms,
        arena_bytes: black_box(plan).index_bytes(),
    }
}

/// One row of the large-field scaling benchmark.
struct ScalingRow {
    nodes: usize,
    plan_build_ms: f64,
    plan_index_bytes: usize,
    dense_plan_bytes: u64,
    sim_wall_ms: f64,
    events: u64,
    events_per_sec: f64,
}

/// Runs pinned Poisson fields of increasing size (up to `scaling_max`
/// nodes) through plan construction and a short DRTS/DCTS simulation.
///
/// Field sizes and simulation windows are pinned; only wall-clock varies
/// between runs. `dense_plan_bytes` is what the pre-grid dense plan would
/// have allocated (two f64 and one `(u32, u32)` matrix: 24 bytes per node
/// pair) for the sub-quadratic comparison the report commits.
fn scaling_bench(scaling_max: usize) -> Vec<ScalingRow> {
    // (nodes, warmup, measure): windows shrink as fields grow so the
    // sweep stays minutes-bounded while still processing millions of
    // events per row.
    let profiles: [(usize, SimDuration, SimDuration); 3] = [
        (
            1_000,
            SimDuration::from_millis(20),
            SimDuration::from_millis(100),
        ),
        (
            10_000,
            SimDuration::from_millis(5),
            SimDuration::from_millis(25),
        ),
        (
            100_000,
            SimDuration::from_millis(2),
            SimDuration::from_millis(5),
        ),
    ];
    let scaling_master = derive_seed(SEED, dirca_net::salts::SCALING_STREAM_SALT);
    let mut rows = Vec::new();
    for (nodes, warmup, measure) in profiles {
        if nodes > scaling_max {
            continue;
        }
        // Mean degree 8 at range 1 — the paper's densest ring setting,
        // held constant across scales so only n varies.
        let topology =
            poisson_field_pinned(derive_seed(scaling_master, nodes as u64), nodes, 8.0, 1.0);
        let config = SimConfig::new(Scheme::DrtsDcts)
            .with_beamwidth_degrees(30.0)
            .with_seed(derive_seed(scaling_master, nodes as u64 + 1))
            .with_warmup(warmup)
            .with_measure(measure);

        let channel = Channel::new(
            topology.positions.clone(),
            topology.range,
            config.params.propagation_delay,
        )
        .expect("field range is valid");
        let start = Instant::now();
        let plan = CoveragePlan::new(&channel, config.beamwidth);
        let plan_build_ms = start.elapsed().as_secs_f64() * 1e3;
        let plan_index_bytes = black_box(plan).index_bytes();

        let start = Instant::now();
        let result = run(&topology, &config);
        let sim_wall = start.elapsed();
        let events = result.events_processed();
        let events_per_sec = events as f64 / sim_wall.as_secs_f64();
        eprintln!(
            "  scaling n={nodes}: plan {plan_build_ms:.1} ms / {:.1} MB, sim {:.0} ms, {:.2} Mev/s",
            plan_index_bytes as f64 / 1e6,
            sim_wall.as_secs_f64() * 1e3,
            events_per_sec / 1e6,
        );
        rows.push(ScalingRow {
            nodes,
            plan_build_ms,
            plan_index_bytes,
            dense_plan_bytes: 24 * (nodes as u64) * (nodes as u64),
            sim_wall_ms: sim_wall.as_secs_f64() * 1e3,
            events,
            events_per_sec,
        });
    }
    rows
}

/// End-to-end engine throughput on one pinned quick-profile workload.
struct EngineBench {
    events: u64,
    frames: u64,
    wall_ms: f64,
    events_per_sec: f64,
    ns_per_transmit: f64,
}

/// Simulates the densest quick cell's four topologies single-threaded and
/// reports raw event throughput and per-frame cost.
fn engine_microbench() -> EngineBench {
    let spec = RingSpec::paper(8, 1.0);
    let mut topologies = Vec::new();
    for t in 0..4u64 {
        let mut rng = dirca_sim::rng::stream_rng(
            dirca_sim::rng::derive_seed(SEED, dirca_net::salts::TOPOLOGY_STREAM_SALT),
            t,
        );
        topologies.push(spec.generate(&mut rng).expect("ring topology generation"));
    }
    let config = SimConfig::new(Scheme::DrtsDcts)
        .with_beamwidth_degrees(30.0)
        .with_seed(1)
        .with_warmup(SimDuration::from_millis(100))
        .with_measure(SimDuration::from_secs(1));

    let start = Instant::now();
    let mut events = 0u64;
    let mut frames = 0u64;
    for topology in &topologies {
        let result = run(topology, &config);
        events += result.events_processed();
        let c = result.aggregate_counters();
        frames += c.rts_tx + c.cts_tx + c.data_tx + c.ack_tx;
    }
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    EngineBench {
        events,
        frames,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64(),
        ns_per_transmit: wall.as_secs_f64() * 1e9 / frames as f64,
    }
}

/// Times pop+push cycles on a steady-state ~400-entry event heap with
/// near-future deadlines, the access pattern the simulator produces.
fn queue_microbench() -> f64 {
    let mut q = EventQueue::new();
    let mut horizon = 0u64;
    for i in 0..400u64 {
        q.push(SimTime::from_nanos(i * 131 % 50_000), i);
    }
    let cycles = 1_000_000u64;
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..cycles {
        let (t, v) = q.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(v);
        horizon = horizon.max(t.as_nanos());
        q.push(SimTime::from_nanos(horizon + (i * 977) % 40_000), i);
    }
    black_box(acc);
    start.elapsed().as_secs_f64() * 1e9 / cycles as f64
}

/// Renders the report by hand; the workspace deliberately has no JSON
/// dependency. `extra_sections` holds pre-rendered `"key": {...}` fragments
/// (e.g. the trace feature's event profile) appended after the fixed
/// sections.
fn render_json(
    threads: usize,
    grid_wall_ms: f64,
    cells: &[CellRow],
    engine: &EngineBench,
    queue_ns: f64,
    scaling: &[ScalingRow],
    extra_sections: &[String],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"dirca-bench/paper-grid/v2\",\n");
    s.push_str("  \"profile\": \"quick\",\n");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"grid_wall_ms\": {grid_wall_ms:.1},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"scheme\": \"{:?}\", \"n_avg\": {}, \"theta_deg\": {:.1}, \
             \"wall_ms\": {:.1}, \"throughput_mean\": {:.6}, \
             \"plan_build_ms\": {:.3}, \"plan_arena_bytes\": {}}}{comma}",
            c.scheme,
            c.n_avg,
            c.theta,
            c.wall_ms,
            c.throughput_mean,
            c.plan_build_ms,
            c.plan_arena_bytes
        );
    }
    s.push_str("  ],\n");
    s.push_str("  \"engine\": {\n");
    let _ = writeln!(
        s,
        "    \"workload\": \"DrtsDcts N=8 theta=30 x4 topologies, 1s measure\","
    );
    let _ = writeln!(s, "    \"events\": {},", engine.events);
    let _ = writeln!(s, "    \"frames\": {},", engine.frames);
    let _ = writeln!(s, "    \"wall_ms\": {:.1},", engine.wall_ms);
    let _ = writeln!(s, "    \"events_per_sec\": {:.0},", engine.events_per_sec);
    let _ = writeln!(s, "    \"ns_per_transmit\": {:.1}", engine.ns_per_transmit);
    s.push_str("  },\n");
    s.push_str("  \"scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"nodes\": {}, \"plan_build_ms\": {:.1}, \
             \"plan_index_bytes\": {}, \"dense_plan_bytes\": {}, \
             \"sim_wall_ms\": {:.1}, \"events\": {}, \
             \"events_per_sec\": {:.0}}}{comma}",
            r.nodes,
            r.plan_build_ms,
            r.plan_index_bytes,
            r.dense_plan_bytes,
            r.sim_wall_ms,
            r.events,
            r.events_per_sec
        );
    }
    s.push_str("  ],\n");
    let tail = if extra_sections.is_empty() { "" } else { "," };
    let _ = writeln!(s, "  \"event_queue_ns_per_cycle\": {queue_ns:.1}{tail}");
    for (i, section) in extra_sections.iter().enumerate() {
        let comma = if i + 1 < extra_sections.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "  {section}{comma}");
    }
    s.push_str("}\n");
    s
}

/// Per-event-class dispatch profiling via the engine's probe hooks
/// (compiled only with the `trace` feature).
#[cfg(feature = "trace")]
mod profile {
    use std::cell::RefCell;
    use std::fmt::Write as _;
    use std::rc::Rc;
    use std::time::Instant;

    use dirca_mac::Scheme;
    use dirca_net::{NetEvent, NetWorld, SimConfig};
    use dirca_sim::probe::Probe;
    use dirca_sim::{SimDuration, SimTime, Simulation};
    use dirca_stats::{Histogram, Summary};
    use dirca_topology::RingSpec;

    /// Dispatch-time samples keyed by event class. A linear scan over a
    /// handful of classes beats hashing on this hot path.
    #[derive(Debug, Default)]
    struct ProfileData {
        classes: Vec<(&'static str, Summary, Histogram)>,
    }

    impl ProfileData {
        fn record(&mut self, class: &'static str, ns: f64) {
            let entry = match self.classes.iter().position(|(c, _, _)| *c == class) {
                Some(i) => &mut self.classes[i],
                None => {
                    self.classes.push((
                        class,
                        Summary::new(),
                        // 64 ns bins to 4.096 µs cover dispatch costs; the
                        // overflow gutter catches allocation hiccups.
                        Histogram::new(0.0, 4096.0, 64).expect("static bounds are valid"),
                    ));
                    self.classes.last_mut().expect("just pushed")
                }
            };
            entry.1.push(ns);
            entry.2.record(ns);
        }
    }

    /// The probe: stamps `Instant::now()` around every dispatch and books
    /// the elapsed time under the event's class.
    #[derive(Debug)]
    struct DispatchProfiler {
        data: Rc<RefCell<ProfileData>>,
        inflight: Option<(&'static str, Instant)>,
    }

    impl Probe<NetWorld> for DispatchProfiler {
        fn before_event(&mut self, _now: SimTime, event: &NetEvent) {
            self.inflight = Some((event.class(), Instant::now()));
        }

        fn after_event(&mut self, _now: SimTime) {
            if let Some((class, start)) = self.inflight.take() {
                self.data
                    .borrow_mut()
                    .record(class, start.elapsed().as_nanos() as f64);
            }
        }
    }

    /// Runs the engine micro-benchmark's densest topology with the profiler
    /// installed and renders the `"event_profile"` report section.
    pub fn event_profile_section() -> String {
        let spec = RingSpec::paper(8, 1.0);
        let mut rng = dirca_sim::rng::stream_rng(
            dirca_sim::rng::derive_seed(super::SEED, dirca_net::salts::TOPOLOGY_STREAM_SALT),
            0,
        );
        let topology = spec.generate(&mut rng).expect("ring topology generation");
        let config = SimConfig::new(Scheme::DrtsDcts)
            .with_beamwidth_degrees(30.0)
            .with_seed(1)
            .with_warmup(SimDuration::from_millis(100))
            .with_measure(SimDuration::from_secs(1));

        let data = Rc::new(RefCell::new(ProfileData::default()));
        let world = NetWorld::build(&topology, &config);
        let mut sim = Simulation::new(world);
        sim.set_probe(Some(Box::new(DispatchProfiler {
            data: Rc::clone(&data),
            inflight: None,
        })));
        {
            let (world, sched) = sim.world_and_scheduler_mut();
            world.prime(sched);
        }
        sim.run_until(SimTime::ZERO + config.warmup + config.measure);

        let mut data = data.borrow_mut();
        data.classes.sort_by_key(|(class, _, _)| *class);
        let mut s = String::new();
        s.push_str("\"event_profile\": {\n");
        s.push_str("    \"workload\": \"DrtsDcts N=8 theta=30 topology 0, 1s measure\",\n");
        s.push_str("    \"hist\": {\"unit\": \"ns\", \"lo\": 0, \"hi\": 4096, \"bins\": 64},\n");
        s.push_str("    \"classes\": {\n");
        for (i, (class, summary, hist)) in data.classes.iter().enumerate() {
            let comma = if i + 1 < data.classes.len() { "," } else { "" };
            let _ = write!(
                s,
                "      \"{class}\": {{\"count\": {}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.0}, \"max_ns\": {:.0}, \"bins\": [",
                summary.count(),
                summary.mean().unwrap_or(0.0),
                summary.min().unwrap_or(0.0),
                summary.max().unwrap_or(0.0),
            );
            for b in 0..hist.len() {
                if b > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{}", hist.bin_count(b));
            }
            let _ = writeln!(
                s,
                "], \"underflow\": {}, \"overflow\": {}}}{comma}",
                hist.underflow(),
                hist.overflow()
            );
        }
        s.push_str("    }\n");
        s.push_str("  }");
        s
    }
}
