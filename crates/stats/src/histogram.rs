//! Fixed-width histograms.

use std::fmt;

/// A histogram with uniform bin width over `[lo, hi)`, plus underflow and
/// overflow counters.
///
/// # Example
///
/// ```
/// use dirca_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [0.5, 1.5, 2.5, 2.6, 11.0, -1.0] {
///     h.record(x);
/// }
/// assert_eq!(h.bin_count(0), 2);  // [0, 2): 0.5, 1.5
/// assert_eq!(h.bin_count(1), 2);  // [2, 4): 2.5, 2.6
/// assert_eq!(h.overflow(), 1);    // 11.0
/// assert_eq!(h.underflow(), 1);   // -1.0
/// assert_eq!(h.total(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Returns `None` if `bins == 0`, the bounds are not finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the histogram has zero bins (never true for a constructed
    /// histogram).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The half-open range `[lo, hi)` covered by bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Samples below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Iterates over `(bin_low, bin_high, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (lo, hi) = self.bin_range(i);
            (lo, hi, self.bins[i])
        })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram [{}, {}) n={}", self.lo, self.hi, self.total())?;
        for (lo, hi, n) in self.iter() {
            writeln!(f, "  [{lo:10.4}, {hi:10.4}): {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 4).is_some());
    }

    #[test]
    fn samples_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(0.0);
        h.record(0.999);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(5), 1);
        assert_eq!(h.bin_count(9), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn boundaries_are_half_open() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(1.0); // exactly on a bin edge: belongs to bin 1
        assert_eq!(h.bin_count(0), 0);
        assert_eq!(h.bin_count(1), 1);
        h.record(10.0); // == hi: overflow
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(-1.0, 1.0, 2).unwrap();
        h.record(-2.0);
        h.record(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut expected_lo = 0.0;
        for i in 0..h.len() {
            let (lo, hi) = h.bin_range(i);
            assert!((lo - expected_lo).abs() < 1e-12);
            expected_lo = hi;
        }
        assert!((expected_lo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_matches_bins() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        h.record(0.5);
        h.record(2.5);
        let counts: Vec<u64> = h.iter().map(|(_, _, n)| n).collect();
        assert_eq!(counts, vec![1, 0, 1]);
    }

    #[test]
    fn display_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(0.25);
        assert!(format!("{h}").contains("n=1"));
    }
}
