//! Streaming summary statistics.

use std::fmt;

/// Streaming mean, variance, min, and max over a sequence of samples
/// (Welford's online algorithm — numerically stable, O(1) memory).
///
/// # Example
///
/// ```
/// use dirca_stats::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev().unwrap() - 2.0).abs() < 1e-12);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Identical to [`Summary::new`] — in particular `min`/`max` start at
    /// ±∞, not zero, so the first sample sets them.
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite — a NaN would silently poison every
    /// later statistic.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sample must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Unbiased sample variance (n−1 denominator); `None` with fewer than
    /// two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Square root of [`Summary::sample_variance`].
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Population variance (n denominator); `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Square root of [`Summary::population_variance`].
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Standard error of the mean; `None` with fewer than two samples.
    pub fn std_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Half-width of the 95% Student-t confidence interval on the mean;
    /// `None` with fewer than two samples.
    pub fn ci95_half_width(&self) -> Option<f64> {
        let se = self.std_error()?;
        Some(se * t_critical_95((self.count - 1) as usize))
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "{m:.4} ±{:.4} [{:.4}, {:.4}] (n={})",
                self.ci95_half_width().unwrap_or(0.0),
                self.min,
                self.max,
                self.count
            ),
            None => f.write_str("(no samples)"),
        }
    }
}

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
///
/// Table for small dof, asymptote 1.96 beyond 120.
fn t_critical_95(dof: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        d if d <= 40 => 2.021,
        d if d <= 60 => 2.000,
        d if d <= 120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new_and_first_sample_sets_extrema() {
        // Regression: a derived Default would start min/max at 0.0, making
        // every distribution appear to contain a zero sample.
        let mut s = Summary::default();
        s.push(5.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn empty_summary_returns_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.ci95_half_width(), None);
        assert_eq!(format!("{s}"), "(no samples)");
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.push(3.0);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min(), Some(3.0));
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.sample_variance(), None);
        assert_eq!(s.population_variance(), Some(0.0));
    }

    #[test]
    fn known_variance() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].iter().copied().collect();
        assert_eq!(s.mean(), Some(3.0));
        assert!((s.sample_variance().unwrap() - 2.5).abs() < 1e-12);
        assert!((s.population_variance().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive_on_shifted_data() {
        // A large offset breaks naive sum-of-squares; Welford must not care.
        let base = 1e9;
        let s: Summary = (0..1000).map(|i| base + (i % 7) as f64).collect();
        let xs: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let mean = xs.iter().sum::<f64>() / 1000.0;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 999.0;
        assert!((s.sample_variance().unwrap() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..20].iter().copied().collect();
        let right: Summary = xs[20..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-9);
        assert!((left.sample_variance().unwrap() - all.sample_variance().unwrap()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].iter().copied().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), s.mean());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let narrow: Summary = (0..10).map(|i| (i % 2) as f64).collect();
        let wide: Summary = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(wide.ci95_half_width().unwrap() < narrow.ci95_half_width().unwrap());
    }

    #[test]
    fn t_table_sane() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(49) - 2.0).abs() < 1e-9);
        assert!((t_critical_95(10_000) - 1.96).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn extend_and_collect_agree() {
        let xs = [0.5, 1.5, 2.5];
        let collected: Summary = xs.iter().copied().collect();
        let mut extended = Summary::new();
        extended.extend(xs.iter().copied());
        assert_eq!(collected.mean(), extended.mean());
        assert_eq!(collected.count(), extended.count());
    }

    #[test]
    fn display_contains_fields() {
        let s: Summary = [1.0, 2.0, 3.0].iter().copied().collect();
        let text = format!("{s}");
        assert!(text.contains("n=3"));
    }
}
