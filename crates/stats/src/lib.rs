//! Statistics utilities for the experiment harness.
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford's algorithm)
//!   with Student-t confidence intervals, used for the mean and the
//!   min–max "range whiskers" the paper plots in Figs. 6 and 7.
//! * [`Histogram`] — fixed-bin-width histogram for delay distributions.
//! * [`jain_index`] — Jain's fairness index for the per-node throughput
//!   discussion in §4.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod histogram;
mod summary;

pub use histogram::Histogram;
pub use summary::Summary;

/// Jain's fairness index `(Σx)² / (n·Σx²)` over per-entity allocations.
///
/// Ranges from `1/n` (one entity hogs everything) to `1` (perfectly even).
/// Returns `None` for an empty slice or when every allocation is zero.
///
/// # Example
///
/// ```
/// use dirca_stats::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0, 1.0]), Some(1.0));
/// let skewed = jain_index(&[4.0, 0.0, 0.0, 0.0]).unwrap();
/// assert!((skewed - 0.25).abs() < 1e-12);
/// ```
pub fn jain_index(allocations: &[f64]) -> Option<f64> {
    if allocations.is_empty() {
        return None;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    // A sum of squares is non-negative, so this is an exact zero guard.
    if sum_sq <= 0.0 {
        return None;
    }
    Some(sum * sum / (allocations.len() as f64 * sum_sq))
}

/// Exact percentile of a sample set by linear interpolation between order
/// statistics (the "R-7" definition used by most statistics packages).
///
/// `q` is the percentile in `[0, 100]`. Returns `None` for an empty slice
/// or non-finite inputs.
///
/// # Example
///
/// ```
/// use dirca_stats::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// ```
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let h = (sorted.len() - 1) as f64 * q / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_order_statistics() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        let p95 = percentile(&xs, 95.0).unwrap();
        assert!((p95 - 95.05).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
    }

    #[test]
    fn percentile_rejects_bad_input() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[1.0], 101.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn percentile_is_monotone_in_q() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for q in (0..=100).step_by(5) {
            let v = percentile(&xs, q as f64).unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn jain_equal_is_one() {
        let j = jain_index(&[3.5; 10]).unwrap();
        assert!((j - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let mut xs = vec![0.0; 8];
        xs[3] = 7.0;
        let j = jain_index(&xs).unwrap();
        assert!((j - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        let xs = [0.5, 1.5, 2.5, 0.1];
        let j = jain_index(&xs).unwrap();
        assert!(j > 1.0 / xs.len() as f64 && j <= 1.0);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn jain_scale_invariant() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 30.0];
        assert!((jain_index(&xs).unwrap() - jain_index(&ys).unwrap()).abs() < 1e-12);
    }
}
