//! Property tests of the statistics layer.
//!
//! The metrics registry snapshots these types into experiment reports, so
//! the observability work leans on their arithmetic being exactly right:
//! half-open bin membership, conservation of recorded samples, and
//! numerically stable moments.

use dirca_stats::{jain_index, Histogram, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn histogram_bins_are_half_open(xs in prop::collection::vec(-16.0f64..80.0, 0..400)) {
        // Bounds and width chosen as exact powers of two so every bin edge
        // is representable and the membership predicate below is exact.
        let mut h = Histogram::new(0.0, 64.0, 64).expect("valid histogram");
        for &x in &xs {
            h.record(x);
        }
        for i in 0..h.len() {
            let (lo, hi) = h.bin_range(i);
            let expected = xs.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
            prop_assert_eq!(
                h.bin_count(i),
                expected,
                "bin {} = [{}, {}) miscounts",
                i,
                lo,
                hi
            );
        }
    }

    #[test]
    fn histogram_underflow_overflow_accounting(
        xs in prop::collection::vec(-100.0f64..200.0, 0..400),
    ) {
        let mut h = Histogram::new(0.0, 64.0, 16).expect("valid histogram");
        for &x in &xs {
            h.record(x);
        }
        let below = xs.iter().filter(|&&x| x < 0.0).count() as u64;
        let above = xs.iter().filter(|&&x| x >= 64.0).count() as u64;
        prop_assert_eq!(h.underflow(), below);
        prop_assert_eq!(h.overflow(), above);
    }

    #[test]
    fn histogram_conserves_every_sample(
        xs in prop::collection::vec(-1e6f64..1e6, 0..400),
        bins in 1usize..40,
    ) {
        // No sample may vanish or double-count: in-range bins plus the
        // under/overflow gutters account for exactly the recorded total.
        let mut h = Histogram::new(-10.0, 10.0, bins).expect("valid histogram");
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let binned: u64 = (0..h.len()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 2..200)) {
        let s: Summary = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let scale = 1.0 + mean.abs();
        prop_assert!((s.mean().expect("non-empty") - mean).abs() / scale < 1e-9);
        let var_scale = 1.0 + var.abs();
        prop_assert!(
            (s.sample_variance().expect("n >= 2") - var).abs() / var_scale < 1e-9,
            "welford {} vs two-pass {}",
            s.sample_variance().expect("n >= 2"),
            var
        );
    }

    #[test]
    fn ci_half_width_is_monotone_in_n(
        pattern in prop::collection::vec(-50.0f64..50.0, 2..20),
        spread in 0.1f64..10.0,
    ) {
        // Repeating the same sample pattern cannot widen the confidence
        // interval: the sample variance is unchanged while both sqrt(n)
        // and the t critical value move in the interval's favour.
        let mut varied = pattern.clone();
        varied[0] += spread; // guard against an all-equal pattern (CI = 0)
        let once: Summary = varied.iter().copied().collect();
        let twice: Summary = varied.iter().chain(varied.iter()).copied().collect();
        let w1 = once.ci95_half_width().expect("n >= 2");
        let w2 = twice.ci95_half_width().expect("n >= 4");
        prop_assert!(w2 <= w1, "CI widened with more samples: {} -> {}", w1, w2);
    }

    #[test]
    fn jain_index_is_bounded(xs in prop::collection::vec(0.0f64..1e6, 1..100)) {
        if let Some(j) = jain_index(&xs) {
            let n = xs.len() as f64;
            prop_assert!(j >= 1.0 / n - 1e-12, "below 1/n: {} < 1/{}", j, n);
            prop_assert!(j <= 1.0 + 1e-12, "above 1: {}", j);
        } else {
            // None only for the all-zero allocation (the slice is non-empty).
            prop_assert!(xs.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn jain_index_extremes_are_exact(n in 1usize..64, share in 0.5f64..1e3) {
        // Perfect fairness: every node gets the same non-zero share.
        let even = vec![share; n];
        let j = jain_index(&even).expect("non-zero allocations");
        prop_assert!((j - 1.0).abs() < 1e-12);
        // Perfect unfairness: one node hogs everything.
        let mut hog = vec![0.0; n];
        hog[0] = share;
        let j = jain_index(&hog).expect("non-zero allocations");
        prop_assert!((j - 1.0 / n as f64).abs() < 1e-12);
    }
}
