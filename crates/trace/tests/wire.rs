//! Exhaustive robustness battery for the binary wire format.
//!
//! The wire module's contract is *total decoding*: any byte stream —
//! well-formed, bit-flipped, truncated, or random garbage — decodes to
//! every valid prefix frame plus at most one typed diagnostic, without
//! panicking. The batteries below prove that contract systematically
//! rather than by spot checks:
//!
//! * proptest round-trips over every record kind (codec exactness),
//! * a single-bit-flip sweep over a whole multi-frame stream (every flip
//!   is caught, and frames before the flipped one still decode),
//! * a truncate-at-every-byte sweep (every prefix decodes its intact
//!   frames; mid-frame cuts yield `Truncated`),
//! * random-garbage payload decoding (typed error, never a panic).

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_mac::{FrameKind, TimerKind};
use dirca_radio::NodeId;
use dirca_sim::SimTime;
use dirca_trace::wire::{
    self, decode_all, decode_record_payload, encode_frame, encode_frame_into, kind, record_payload,
    WireError, HEADER_LEN, TRAILER_LEN,
};
use dirca_trace::{RecordKind, TraceRecord};
use proptest::prelude::*;

/// One representative of every `RecordKind` variant (all timers included),
/// mirroring the JSON round-trip fixture in `record.rs`.
fn all_kinds() -> Vec<RecordKind> {
    let mut kinds = vec![
        RecordKind::FrameTx {
            kind: FrameKind::Rts,
            peer: NodeId(3),
            bytes: 1460,
            directional: true,
        },
        RecordKind::FrameRx {
            kind: FrameKind::Ack,
            peer: NodeId(0),
        },
        RecordKind::RxCorrupted,
        RecordKind::BackoffDraw { cw: 31, slots: 7 },
        RecordKind::NavSet {
            until: SimTime::from_micros(812),
        },
        RecordKind::NavExpire,
        RecordKind::PacketAcked,
        RecordKind::PacketDropped,
        RecordKind::FaultCorrupt,
        RecordKind::FaultOutage,
    ];
    for timer in TimerKind::ALL {
        kinds.push(RecordKind::Timeout { timer });
    }
    kinds
}

fn frame_kind_strategy() -> BoxedStrategy<FrameKind> {
    (0usize..FrameKind::ALL.len())
        .prop_map(|i| FrameKind::ALL[i])
        .boxed()
}

fn timer_kind_strategy() -> BoxedStrategy<TimerKind> {
    (0usize..TimerKind::ALL.len())
        .prop_map(|i| TimerKind::ALL[i])
        .boxed()
}

fn record_kind_strategy() -> BoxedStrategy<RecordKind> {
    prop_oneof![
        (
            frame_kind_strategy(),
            0u64..1 << 32,
            0u32..1 << 16,
            prop::bool::ANY,
        )
            .prop_map(|(kind, peer, bytes, directional)| RecordKind::FrameTx {
                kind,
                peer: NodeId(peer as usize),
                bytes,
                directional,
            }),
        (frame_kind_strategy(), 0u64..1 << 32).prop_map(|(kind, peer)| {
            RecordKind::FrameRx {
                kind,
                peer: NodeId(peer as usize),
            }
        }),
        Just(RecordKind::RxCorrupted),
        (0u32..2048, 0u32..2048).prop_map(|(cw, slots)| RecordKind::BackoffDraw { cw, slots }),
        (0u64..u64::MAX / 2).prop_map(|ns| RecordKind::NavSet {
            until: SimTime::from_nanos(ns),
        }),
        Just(RecordKind::NavExpire),
        timer_kind_strategy().prop_map(|timer| RecordKind::Timeout { timer }),
        Just(RecordKind::PacketAcked),
        Just(RecordKind::PacketDropped),
        Just(RecordKind::FaultCorrupt),
        Just(RecordKind::FaultOutage),
    ]
    .boxed()
}

fn record_strategy() -> BoxedStrategy<TraceRecord> {
    (0u64..u64::MAX / 2, 0u64..1 << 32, record_kind_strategy())
        .prop_map(|(t, node, kind)| TraceRecord {
            time: SimTime::from_nanos(t),
            node: NodeId(node as usize),
            kind,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_records_round_trip(record in record_strategy()) {
        let payload = record_payload(&record);
        let back = decode_record_payload(&payload).expect("round trip");
        prop_assert_eq!(back, record);
    }

    #[test]
    fn framed_record_streams_round_trip(
        records in prop::collection::vec(record_strategy(), 0..40),
    ) {
        let mut bytes = Vec::new();
        for record in &records {
            encode_frame_into(kind::RECORD, &record_payload(record), &mut bytes);
        }
        let (frames, err) = decode_all(&bytes);
        prop_assert_eq!(err, None);
        prop_assert_eq!(frames.len(), records.len());
        for (frame, record) in frames.iter().zip(&records) {
            prop_assert_eq!(frame.kind, kind::RECORD);
            let back = decode_record_payload(&frame.payload).expect("payload decodes");
            prop_assert_eq!(back, *record);
        }
    }

    #[test]
    fn garbage_payloads_never_panic(payload in prop::collection::vec(0u8..=255, 0..64)) {
        // Any outcome is fine as long as it is a value, not a panic.
        let _ = decode_record_payload(&payload);
    }

    #[test]
    fn garbage_streams_never_panic(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let (frames, _err) = decode_all(&bytes);
        // Garbage can never fabricate a frame out of thin air unless it
        // happens to be a real frame; just force full evaluation.
        let _ = frames.len();
    }
}

/// Every record kind survives the binary round trip (deterministic twin of
/// the proptest sweep, pinning the fixed corpus the JSON tests also use).
#[test]
fn every_kind_round_trips() {
    for (i, record_kind) in all_kinds().into_iter().enumerate() {
        let record = TraceRecord {
            time: SimTime::from_micros(i as u64),
            node: NodeId(i),
            kind: record_kind,
        };
        let payload = record_payload(&record);
        let back = decode_record_payload(&payload).expect("round trip");
        assert_eq!(back, record, "mismatch for kind {i}");
    }
}

/// A stream of frames covering every record kind, with assorted payload
/// sizes, used by both corruption batteries below.
fn fixture_stream() -> (Vec<u8>, Vec<(u64, u64)>) {
    let mut bytes = Vec::new();
    let mut spans = Vec::new();
    let mut push = |frame_kind: u8, payload: &[u8], bytes: &mut Vec<u8>| {
        let start = bytes.len() as u64;
        encode_frame_into(frame_kind, payload, bytes);
        spans.push((start, bytes.len() as u64));
    };
    push(kind::TRACE_HEADER, b"", &mut bytes);
    for (i, record_kind) in all_kinds().into_iter().enumerate() {
        let record = TraceRecord {
            time: SimTime::from_micros(i as u64),
            node: NodeId(i),
            kind: record_kind,
        };
        push(kind::RECORD, &record_payload(&record), &mut bytes);
    }
    push(kind::METRICS, &[0xA5; 37], &mut bytes);
    (bytes, spans)
}

/// Flipping any single bit anywhere in the stream is caught: the decoder
/// reports a typed error at (or before) the corrupted frame and every
/// frame *before* it still decodes byte-identically.
#[test]
fn single_bit_flip_battery() {
    let (clean, spans) = fixture_stream();
    let (clean_frames, clean_err) = decode_all(&clean);
    assert_eq!(clean_err, None);
    assert_eq!(clean_frames.len(), spans.len());

    for byte_idx in 0..clean.len() {
        let frame_idx = spans
            .iter()
            .position(|&(start, end)| (byte_idx as u64) >= start && (byte_idx as u64) < end)
            .expect("every byte belongs to a frame");
        for bit in 0..8 {
            let mut corrupt = clean.clone();
            corrupt[byte_idx] ^= 1 << bit;
            let (frames, err) = decode_all(&corrupt);
            assert!(
                err.is_some(),
                "flip of bit {bit} in byte {byte_idx} went undetected"
            );
            // The corruption must not eat earlier frames, and the
            // corrupted frame itself must not decode as if intact.
            assert!(
                frames.len() <= frame_idx,
                "flip of bit {bit} in byte {byte_idx} (frame {frame_idx}) \
                 left {} frames decoded",
                frames.len()
            );
            assert_eq!(
                frames,
                clean_frames[..frames.len()],
                "prefix frames changed under a flip in frame {frame_idx}"
            );
        }
    }
}

/// Truncating the stream at every possible byte boundary never panics:
/// fully-contained frames decode, a mid-frame cut is a typed `Truncated`,
/// and a cut exactly on a frame boundary is a clean (shorter) document.
#[test]
fn truncate_at_every_byte_battery() {
    let (clean, spans) = fixture_stream();
    let (clean_frames, _) = decode_all(&clean);

    for cut in 0..=clean.len() {
        let prefix = &clean[..cut];
        let (frames, err) = decode_all(prefix);
        let intact = spans
            .iter()
            .take_while(|&&(_, end)| end <= cut as u64)
            .count();
        assert_eq!(
            frames.len(),
            intact,
            "cut at byte {cut}: expected {intact} intact frames"
        );
        assert_eq!(frames, clean_frames[..intact]);
        let on_boundary = cut == 0 || spans.iter().any(|&(_, end)| end == cut as u64);
        if on_boundary {
            assert_eq!(err, None, "cut at frame boundary {cut} is a clean doc");
        } else {
            match err {
                Some(WireError::Truncated { offset, .. }) => {
                    let frame_start = spans
                        .get(intact)
                        .map(|&(start, _)| start)
                        .expect("a partial frame exists past the cut");
                    assert_eq!(offset, frame_start);
                }
                other => panic!("cut at byte {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

/// The error taxonomy is reachable and carries the right offsets.
#[test]
fn error_taxonomy_offsets() {
    let first = encode_frame(kind::RECORD, b"abc");
    let first_len = first.len() as u64;

    // BadMagic in the second frame.
    let mut bytes = first.clone();
    let mut second = encode_frame(kind::RECORD, b"def");
    second[0] = b'X';
    bytes.extend_from_slice(&second);
    let (frames, err) = decode_all(&bytes);
    assert_eq!(frames.len(), 1);
    assert_eq!(err, Some(WireError::BadMagic { offset: first_len }));
    assert_eq!(err.unwrap().offset(), first_len);

    // CrcMismatch with stored/computed both reported.
    let mut bytes = encode_frame(kind::RECORD, b"abc");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    match decode_all(&bytes).1 {
        Some(WireError::CrcMismatch {
            offset,
            stored,
            computed,
        }) => {
            assert_eq!(offset, 0);
            assert_ne!(stored, computed);
        }
        other => panic!("expected CrcMismatch, got {other:?}"),
    }

    // Truncated header reports needed vs available.
    let bytes = &encode_frame(kind::RECORD, b"abc")[..HEADER_LEN - 3];
    match decode_all(bytes).1 {
        Some(WireError::Truncated {
            offset,
            needed,
            available,
        }) => {
            assert_eq!(offset, 0);
            assert_eq!(needed, HEADER_LEN as u64);
            assert_eq!(available, (HEADER_LEN - 3) as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

/// Binary records are strictly smaller than their JSONL twins — the size
/// claim EXPERIMENTS.md makes, pinned here so it cannot silently rot.
#[test]
fn binary_records_are_smaller_than_jsonl() {
    for (i, record_kind) in all_kinds().into_iter().enumerate() {
        let record = TraceRecord {
            time: SimTime::from_micros(i as u64),
            node: NodeId(i),
            kind: record_kind,
        };
        let framed = HEADER_LEN + record_payload(&record).len() + TRAILER_LEN;
        let jsonl = record.to_json().len() + 1;
        assert!(
            framed < jsonl,
            "framed binary record ({framed} B) not smaller than JSONL ({jsonl} B) for kind {i}"
        );
    }
}

/// `wire::crc32` agrees with the IEEE reference on a longer vector, so
/// the const-fn table is not just internally consistent.
#[test]
fn crc_reference_vectors() {
    assert_eq!(
        wire::crc32(b"The quick brown fox jumps over the lazy dog"),
        0x414F_A339
    );
}
