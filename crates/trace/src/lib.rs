//! Deterministic observability for the DirCA simulation stack.
//!
//! This crate is the data layer behind the workspace's `trace` feature: the
//! consuming crates (`dirca-sim`, `dirca-net`, `dirca-experiments`,
//! `dirca-bench`) gate their hooks behind `--features trace` and pull this
//! crate in as an optional dependency, so a default build carries none of
//! it. It provides three pieces:
//!
//! * [`TraceRecord`] / [`RecordKind`] — typed, `Copy`, fixed-size records
//!   of MAC/PHY events (frame tx/rx, backoff draws, NAV activity, timeouts,
//!   fault hits), with a stable JSONL encoding.
//! * [`RingTrace`] — a preallocated ring buffer holding the last N records
//!   of a run, exportable as JSONL and hashable with the same FNV-1a
//!   convention as the golden ring-trace tests.
//! * [`MetricsRegistry`] — statically-named counters, gauges, and
//!   [`dirca_stats::Histogram`]s snapshotted into experiment reports.
//!
//! Everything here is *observation only*: recording consumes no randomness,
//! reads no wall clock, and never reorders events — the golden-hash test
//! battery in `dirca-net` enforces that attaching a recorder leaves the
//! simulation byte-identical.
//!
//! # Example
//!
//! ```
//! use dirca_mac::FrameKind;
//! use dirca_radio::NodeId;
//! use dirca_sim::SimTime;
//! use dirca_trace::{RecordKind, RingTrace, TraceRecord};
//!
//! let mut trace = RingTrace::with_capacity(1024);
//! trace.push(TraceRecord {
//!     time: SimTime::from_micros(20),
//!     node: NodeId(1),
//!     kind: RecordKind::FrameTx {
//!         kind: FrameKind::Rts,
//!         peer: NodeId(2),
//!         bytes: 1460,
//!         directional: true,
//!     },
//! });
//! assert_eq!(trace.len(), 1);
//! assert!(trace.to_jsonl().contains("\"ev\":\"frame_tx\""));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod json;
mod metrics;
mod record;
mod ring;
pub mod wire;

pub use json::{Json, JsonError};
pub use metrics::MetricsRegistry;
pub use record::{RecordKind, TraceRecord};
pub use ring::{fnv1a, RingTrace};
pub use wire::{Frame, FrameDecoder, PayloadError, WireError, WireReader, WireWriter};
