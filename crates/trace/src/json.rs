//! A minimal JSON value, parser, and string escaper.
//!
//! The workspace deliberately carries no serde dependency: experiment
//! reports are rendered by hand and parsed with small recursive-descent
//! parsers. This module gives the trace layer the same facility — enough
//! JSON to round-trip trace lines for schema validation, with objects kept
//! as ordered vectors so no hash-map iteration order can leak into output.
//!
//! Numbers are held as `f64`. Every integer the trace layer emits (sim-time
//! nanoseconds of multi-second runs, node ids, byte counts) stays far below
//! 2^53, so the round trip is lossless.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with keys in source order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// Trailing non-whitespace after the first value is an error, so a
    /// JSONL line parses iff it is exactly one object.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number ≥ 0
    /// within the f64-exact range.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_num()?;
        let in_range = x.is_finite() && (0.0..=9_007_199_254_740_992.0).contains(&x);
        // fract() is non-negative here, so "< EPSILON" means exactly zero
        // without a direct float equality.
        if in_range && x.fract() < f64::EPSILON {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Appends `s` to `out` in JSON string-literal form, without the
/// surrounding quotes.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Traces never emit surrogate pairs; reject them
                        // rather than silently mangling.
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 straight from the input;
                    // the source &str guarantees validity.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if x.is_finite() {
            Ok(Json::Num(x))
        } else {
            Err(self.err("non-finite number"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn object_preserves_key_order() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        let fields = v.as_obj().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{0001}");
        let quoted = format!("\"{out}\"");
        let back = Json::parse(&quoted).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{0001}"));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"µs→done\"").unwrap();
        assert_eq!(v.as_str(), Some("µs→done"));
        let v = Json::parse("\"\\u00b5\"").unwrap();
        assert_eq!(v.as_str(), Some("µ"));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(
            Json::parse("10000000000").unwrap().as_u64(),
            Some(10_000_000_000)
        );
    }
}
