//! `dirca-wire`: the CRC-framed binary trace/wire format.
//!
//! JSONL traces are self-describing but heavy (~100 bytes per record) and
//! fragile under truncation: a crash mid-write leaves a torn final line
//! that a strict parser rejects wholesale. This module is the compact,
//! crash-tolerant alternative — the on-disk format behind
//! `paper_grid --trace-format bin`, the binary checkpoint format of the
//! fault-tolerant runner, and the socket protocol `dirca-serve` speaks.
//!
//! # Frame layout
//!
//! Every frame is self-delimiting and independently checksummed:
//!
//! ```text
//! offset 0   magic      4 bytes  0x44 0x43 0x57 0x46  ("DCWF")
//! offset 4   version    1 byte   WIRE_VERSION (currently 1)
//! offset 5   kind       1 byte   frame kind (see [`kind`])
//! offset 6   len        4 bytes  payload length, little-endian u32
//! offset 10  payload    len bytes
//! offset 10+len  crc    4 bytes  CRC-32/IEEE over bytes [4, 10+len)
//! ```
//!
//! The CRC covers version, kind, length, and payload — everything after
//! the magic — so a single flipped bit anywhere in a frame is detected
//! either by the magic check, the header sanity checks, or the CRC.
//!
//! # Total decoding
//!
//! Decoding never panics and never discards good data because of bad
//! data that follows it: [`FrameDecoder`] yields every valid prefix frame
//! and then at most one typed [`WireError`] describing the first byte it
//! could not accept. A truncated file, a torn tail from a crash
//! mid-write, or a flipped bit therefore degrade to "everything up to
//! here, plus a diagnostic" — never a crash, never silent corruption.

use std::fmt;

use dirca_mac::{FrameKind, Scheme, TimerKind};
use dirca_radio::NodeId;
use dirca_sim::SimTime;

use crate::record::{RecordKind, TraceRecord};

/// Frame magic: `"DCWF"` (DirCA Wire Format). Doubles as the format
/// sniff for readers that accept both JSONL and binary inputs — no JSONL
/// document starts with these bytes.
pub const MAGIC: [u8; 4] = *b"DCWF";

/// Schema version stamped into every frame. Bump on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// Bytes before the payload: magic + version + kind + length.
pub const HEADER_LEN: usize = 10;

/// Bytes after the payload: the CRC-32.
pub const TRAILER_LEN: usize = 4;

/// Upper bound on a frame payload (16 MiB). A length field above this is
/// a [`WireError::LengthOverrun`] — corrupt headers must not turn into
/// multi-gigabyte allocations.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Frame kind registry: one byte, partitioned by subsystem. All kinds
/// live here so the byte values are pairwise-unique by inspection.
pub mod kind {
    /// Trace document: header (seed, cell count).
    pub const TRACE_HEADER: u8 = 0x01;
    /// Trace document: start-of-cell marker (n, θ, scheme, topology).
    pub const CELL_MARKER: u8 = 0x02;
    /// Trace document: one [`crate::TraceRecord`].
    pub const RECORD: u8 = 0x03;
    /// Trace document: end-of-cell metrics snapshot (JSON text payload).
    pub const METRICS: u8 = 0x04;

    /// Checkpoint: header (grid fingerprint).
    pub const CKPT_HEADER: u8 = 0x10;
    /// Checkpoint: one completed or failed cell.
    pub const CKPT_CELL: u8 = 0x11;

    /// Service: client submits a scenario spec.
    pub const SUBMIT: u8 = 0x20;
    /// Service: server accepted a scenario (fingerprint, cell count).
    pub const ACCEPT: u8 = 0x21;
    /// Service: server rejected a malformed scenario (code, message).
    pub const REJECT: u8 = 0x22;
    /// Service: server shed the scenario — pending queue full.
    pub const BUSY: u8 = 0x23;
    /// Service: per-cell progress heartbeat while a scenario runs.
    pub const PROGRESS: u8 = 0x24;
    /// Service: the rendered scenario report (text payload).
    pub const REPORT: u8 = 0x25;
    /// Service: scenario finished (executed/restored/failed counts).
    pub const DONE: u8 = 0x26;
    /// Service: client asks the server to shut down gracefully.
    pub const SHUTDOWN: u8 = 0x27;
    /// Service: server acknowledges shutdown before exiting.
    pub const SHUTDOWN_ACK: u8 = 0x28;
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `bytes` (the checksum `cksum`-compatible tools call
/// "crc32"; initial value `!0`, final XOR `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        // Infallible: idx is masked to 0..256 and the table has 256 slots.
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Why a byte stream stopped decoding. Every variant carries the byte
/// offset of the frame (or header field) it refuses, so diagnostics can
/// name the exact corruption site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The four bytes at `offset` are not the frame magic.
    BadMagic {
        /// Byte offset of the expected frame start.
        offset: u64,
    },
    /// The frame at `offset` carries an unsupported schema version.
    BadVersion {
        /// Byte offset of the frame start.
        offset: u64,
        /// The version byte found.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    LengthOverrun {
        /// Byte offset of the frame start.
        offset: u64,
        /// The declared payload length.
        len: u32,
    },
    /// The stream ends before the frame does (torn tail, truncation).
    Truncated {
        /// Byte offset of the frame start.
        offset: u64,
        /// Bytes the complete frame needs from `offset`.
        needed: u64,
        /// Bytes actually available from `offset`.
        available: u64,
    },
    /// The stored CRC does not match the frame contents.
    CrcMismatch {
        /// Byte offset of the frame start.
        offset: u64,
        /// CRC stored in the frame trailer.
        stored: u32,
        /// CRC computed over the frame contents.
        computed: u32,
    },
}

impl WireError {
    /// The byte offset of the frame this error refuses.
    pub fn offset(&self) -> u64 {
        match *self {
            WireError::BadMagic { offset }
            | WireError::BadVersion { offset, .. }
            | WireError::LengthOverrun { offset, .. }
            | WireError::Truncated { offset, .. }
            | WireError::CrcMismatch { offset, .. } => offset,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WireError::BadMagic { offset } => {
                write!(f, "byte {offset}: bad frame magic")
            }
            WireError::BadVersion { offset, found } => write!(
                f,
                "byte {offset}: unsupported wire version {found} (expected {WIRE_VERSION})"
            ),
            WireError::LengthOverrun { offset, len } => write!(
                f,
                "byte {offset}: declared payload length {len} exceeds the {MAX_PAYLOAD}-byte cap"
            ),
            WireError::Truncated {
                offset,
                needed,
                available,
            } => write!(
                f,
                "byte {offset}: truncated frame (need {needed} bytes, have {available})"
            ),
            WireError::CrcMismatch {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "byte {offset}: CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Why a frame payload could not be decoded into its typed form. Distinct
/// from [`WireError`]: the frame itself was intact (CRC passed), but its
/// contents do not parse as the claimed kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadError {
    /// Byte offset *within the payload* of the refused field.
    pub offset: usize,
    /// What was expected there.
    pub what: &'static str,
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for PayloadError {}

// ---------------------------------------------------------------------
// Frames and the streaming decoder.
// ---------------------------------------------------------------------

/// One decoded frame: its kind byte and its (CRC-verified) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind (see [`kind`]).
    pub kind: u8,
    /// The verified payload bytes.
    pub payload: Vec<u8>,
}

/// Appends one frame carrying `payload` to `out`.
pub fn encode_frame_into(frame_kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_PAYLOAD));
    out.extend_from_slice(&MAGIC);
    let body_start = out.len();
    out.push(WIRE_VERSION);
    out.push(frame_kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One frame carrying `payload`, as a standalone byte vector.
pub fn encode_frame(frame_kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    encode_frame_into(frame_kind, payload, &mut out);
    out
}

/// Validates a frame header (the first [`HEADER_LEN`] bytes of a frame at
/// stream offset `offset`) and returns `(kind, payload_len)`.
///
/// Shared by the slice decoder below and the socket reader in
/// `dirca-serve`, so both enforce identical magic/version/length rules.
pub fn parse_header(header: &[u8; HEADER_LEN], offset: u64) -> Result<(u8, u32), WireError> {
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic { offset });
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion {
            offset,
            found: header[4],
        });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::LengthOverrun { offset, len });
    }
    Ok((header[5], len))
}

/// Verifies the CRC of a frame whose post-magic bytes (version, kind,
/// length, payload) are `body` and whose stored trailer is `stored`.
pub fn verify_crc(body: &[u8], stored: u32, offset: u64) -> Result<(), WireError> {
    let computed = crc32(body);
    if computed != stored {
        return Err(WireError::CrcMismatch {
            offset,
            stored,
            computed,
        });
    }
    Ok(())
}

/// Streaming decoder over an in-memory byte slice.
///
/// Iteration yields `Ok(Frame)` for every valid prefix frame, then at
/// most one `Err(WireError)` at the first unacceptable byte, then `None`
/// forever — a total function of the input with no panicking paths.
#[derive(Debug)]
pub struct FrameDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> FrameDecoder<'a> {
    /// Starts decoding at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameDecoder {
            bytes,
            pos: 0,
            failed: false,
        }
    }

    /// The byte offset the next frame would start at.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    fn decode_next(&mut self) -> Option<Result<Frame, WireError>> {
        let remaining = self.bytes.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        let offset = self.pos as u64;
        if remaining < HEADER_LEN {
            return Some(Err(WireError::Truncated {
                offset,
                needed: HEADER_LEN as u64,
                available: remaining as u64,
            }));
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&self.bytes[self.pos..self.pos + HEADER_LEN]);
        let (frame_kind, len) = match parse_header(&header, offset) {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        let total = HEADER_LEN + len as usize + TRAILER_LEN;
        if remaining < total {
            return Some(Err(WireError::Truncated {
                offset,
                needed: total as u64,
                available: remaining as u64,
            }));
        }
        let body = &self.bytes[self.pos + 4..self.pos + HEADER_LEN + len as usize];
        let trailer_at = self.pos + HEADER_LEN + len as usize;
        let stored = u32::from_le_bytes([
            self.bytes[trailer_at],
            self.bytes[trailer_at + 1],
            self.bytes[trailer_at + 2],
            self.bytes[trailer_at + 3],
        ]);
        if let Err(e) = verify_crc(body, stored, offset) {
            return Some(Err(e));
        }
        let payload = self.bytes[self.pos + HEADER_LEN..trailer_at].to_vec();
        self.pos += total;
        Some(Ok(Frame {
            kind: frame_kind,
            payload,
        }))
    }
}

impl Iterator for FrameDecoder<'_> {
    type Item = Result<Frame, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let item = self.decode_next();
        if matches!(item, Some(Err(_))) {
            self.failed = true;
        }
        item
    }
}

/// Decodes every valid prefix frame of `bytes`; the second element is the
/// diagnostic for the first unacceptable byte, or `None` if the stream
/// decoded cleanly to its end.
pub fn decode_all(bytes: &[u8]) -> (Vec<Frame>, Option<WireError>) {
    let mut frames = Vec::new();
    let mut error = None;
    for item in FrameDecoder::new(bytes) {
        match item {
            Ok(frame) => frames.push(frame),
            Err(e) => error = Some(e),
        }
    }
    (frames, error)
}

// ---------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------

/// Append-only payload builder with fixed-endianness primitive encoders.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty payload builder.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// including NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a payload with typed, bounds-checked field readers. Every
/// accessor returns a [`PayloadError`] instead of panicking when the
/// payload is shorter or differently shaped than claimed.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), PayloadError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(self.err("trailing bytes after the last field"))
        }
    }

    fn err(&self, what: &'static str) -> PayloadError {
        PayloadError {
            offset: self.pos,
            what,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PayloadError> {
        if self.remaining() < n {
            return Err(self.err(what));
        }
        let chunk = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(chunk)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1, "missing u8 field")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PayloadError> {
        let b = self.take(4, "missing u32 field")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PayloadError> {
        let b = self.take(8, "missing u64 field")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, PayloadError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool byte; values other than 0/1 are an error.
    pub fn take_bool(&mut self) -> Result<bool, PayloadError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PayloadError {
                offset: self.pos - 1,
                what: "bool byte is neither 0 nor 1",
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, PayloadError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len, "string shorter than its length prefix")?;
        std::str::from_utf8(bytes).map_err(|_| PayloadError {
            offset: self.pos - len,
            what: "string is not valid UTF-8",
        })
    }
}

// ---------------------------------------------------------------------
// Typed codecs for workspace enums and trace records.
// ---------------------------------------------------------------------

/// Encodes a [`Scheme`] as its index in [`Scheme::ALL`].
pub fn encode_scheme(scheme: Scheme) -> u8 {
    Scheme::ALL
        .iter()
        .position(|&s| s == scheme)
        .map_or(0, |i| i as u8)
}

/// Decodes a [`Scheme`] from its [`Scheme::ALL`] index.
pub fn decode_scheme(byte: u8, at: usize) -> Result<Scheme, PayloadError> {
    Scheme::ALL.get(byte as usize).copied().ok_or(PayloadError {
        offset: at,
        what: "scheme index out of range",
    })
}

fn encode_frame_kind(kind: FrameKind) -> u8 {
    FrameKind::ALL
        .iter()
        .position(|&k| k == kind)
        .map_or(0, |i| i as u8)
}

fn decode_frame_kind(byte: u8, at: usize) -> Result<FrameKind, PayloadError> {
    FrameKind::ALL
        .get(byte as usize)
        .copied()
        .ok_or(PayloadError {
            offset: at,
            what: "frame-kind index out of range",
        })
}

fn encode_timer_kind(kind: TimerKind) -> u8 {
    TimerKind::ALL
        .iter()
        .position(|&k| k == kind)
        .map_or(0, |i| i as u8)
}

fn decode_timer_kind(byte: u8, at: usize) -> Result<TimerKind, PayloadError> {
    TimerKind::ALL
        .get(byte as usize)
        .copied()
        .ok_or(PayloadError {
            offset: at,
            what: "timer-kind index out of range",
        })
}

// Record payload tags, one per `RecordKind` variant.
const TAG_FRAME_TX: u8 = 0;
const TAG_FRAME_RX: u8 = 1;
const TAG_RX_CORRUPTED: u8 = 2;
const TAG_BACKOFF_DRAW: u8 = 3;
const TAG_NAV_SET: u8 = 4;
const TAG_NAV_EXPIRE: u8 = 5;
const TAG_TIMEOUT: u8 = 6;
const TAG_PACKET_ACKED: u8 = 7;
const TAG_PACKET_DROPPED: u8 = 8;
const TAG_FAULT_CORRUPT: u8 = 9;
const TAG_FAULT_OUTAGE: u8 = 10;

/// Encodes one [`TraceRecord`] into `w`; the binary twin of
/// [`TraceRecord::to_json_into`]. Layout: `t:u64, node:u64, tag:u8`,
/// then the tag's fields.
pub fn encode_record(record: &TraceRecord, w: &mut WireWriter) {
    w.put_u64(record.time.as_nanos());
    w.put_u64(record.node.0 as u64);
    match record.kind {
        RecordKind::FrameTx {
            kind,
            peer,
            bytes,
            directional,
        } => {
            w.put_u8(TAG_FRAME_TX);
            w.put_u8(encode_frame_kind(kind));
            w.put_u64(peer.0 as u64);
            w.put_u32(bytes);
            w.put_bool(directional);
        }
        RecordKind::FrameRx { kind, peer } => {
            w.put_u8(TAG_FRAME_RX);
            w.put_u8(encode_frame_kind(kind));
            w.put_u64(peer.0 as u64);
        }
        RecordKind::RxCorrupted => w.put_u8(TAG_RX_CORRUPTED),
        RecordKind::BackoffDraw { cw, slots } => {
            w.put_u8(TAG_BACKOFF_DRAW);
            w.put_u32(cw);
            w.put_u32(slots);
        }
        RecordKind::NavSet { until } => {
            w.put_u8(TAG_NAV_SET);
            w.put_u64(until.as_nanos());
        }
        RecordKind::NavExpire => w.put_u8(TAG_NAV_EXPIRE),
        RecordKind::Timeout { timer } => {
            w.put_u8(TAG_TIMEOUT);
            w.put_u8(encode_timer_kind(timer));
        }
        RecordKind::PacketAcked => w.put_u8(TAG_PACKET_ACKED),
        RecordKind::PacketDropped => w.put_u8(TAG_PACKET_DROPPED),
        RecordKind::FaultCorrupt => w.put_u8(TAG_FAULT_CORRUPT),
        RecordKind::FaultOutage => w.put_u8(TAG_FAULT_OUTAGE),
    }
}

/// One [`TraceRecord`] as a standalone payload (no frame wrapper).
pub fn record_payload(record: &TraceRecord) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_record(record, &mut w);
    w.into_bytes()
}

/// Decodes one [`TraceRecord`] from `r`; the exact inverse of
/// [`encode_record`], total over arbitrary payload bytes.
pub fn decode_record(r: &mut WireReader<'_>) -> Result<TraceRecord, PayloadError> {
    let time = SimTime::from_nanos(r.take_u64()?);
    let node = NodeId(r.take_u64()? as usize);
    let tag_at = r.bytes.len() - r.remaining();
    let tag = r.take_u8()?;
    let kind = match tag {
        TAG_FRAME_TX => {
            let fk_at = r.bytes.len() - r.remaining();
            let fk = decode_frame_kind(r.take_u8()?, fk_at)?;
            RecordKind::FrameTx {
                kind: fk,
                peer: NodeId(r.take_u64()? as usize),
                bytes: r.take_u32()?,
                directional: r.take_bool()?,
            }
        }
        TAG_FRAME_RX => {
            let fk_at = r.bytes.len() - r.remaining();
            let fk = decode_frame_kind(r.take_u8()?, fk_at)?;
            RecordKind::FrameRx {
                kind: fk,
                peer: NodeId(r.take_u64()? as usize),
            }
        }
        TAG_RX_CORRUPTED => RecordKind::RxCorrupted,
        TAG_BACKOFF_DRAW => RecordKind::BackoffDraw {
            cw: r.take_u32()?,
            slots: r.take_u32()?,
        },
        TAG_NAV_SET => RecordKind::NavSet {
            until: SimTime::from_nanos(r.take_u64()?),
        },
        TAG_NAV_EXPIRE => RecordKind::NavExpire,
        TAG_TIMEOUT => {
            let tk_at = r.bytes.len() - r.remaining();
            RecordKind::Timeout {
                timer: decode_timer_kind(r.take_u8()?, tk_at)?,
            }
        }
        TAG_PACKET_ACKED => RecordKind::PacketAcked,
        TAG_PACKET_DROPPED => RecordKind::PacketDropped,
        TAG_FAULT_CORRUPT => RecordKind::FaultCorrupt,
        TAG_FAULT_OUTAGE => RecordKind::FaultOutage,
        _ => {
            return Err(PayloadError {
                offset: tag_at,
                what: "unknown record tag",
            })
        }
    };
    Ok(TraceRecord { time, node, kind })
}

/// Decodes a standalone record payload, requiring exact consumption.
pub fn decode_record_payload(payload: &[u8]) -> Result<TraceRecord, PayloadError> {
    let mut r = WireReader::new(payload);
    let record = decode_record(&mut r)?;
    r.finish()?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips() {
        let bytes = encode_frame(kind::RECORD, b"hello");
        let (frames, err) = decode_all(&bytes);
        assert_eq!(err, None);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].kind, kind::RECORD);
        assert_eq!(frames[0].payload, b"hello");
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut bytes = Vec::new();
        encode_frame_into(kind::TRACE_HEADER, b"", &mut bytes);
        encode_frame_into(kind::CELL_MARKER, b"abc", &mut bytes);
        encode_frame_into(kind::METRICS, &[0xFF; 100], &mut bytes);
        let (frames, err) = decode_all(&bytes);
        assert_eq!(err, None);
        let kinds: Vec<u8> = frames.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            [kind::TRACE_HEADER, kind::CELL_MARKER, kind::METRICS]
        );
    }

    #[test]
    fn truncation_yields_prefix_plus_diagnostic() {
        let mut bytes = encode_frame(kind::RECORD, b"first");
        let second = encode_frame(kind::RECORD, b"second");
        let cut = bytes.len() + second.len() / 2;
        bytes.extend_from_slice(&second);
        bytes.truncate(cut);
        let (frames, err) = decode_all(&bytes);
        assert_eq!(frames.len(), 1, "the intact prefix frame must survive");
        match err {
            Some(WireError::Truncated { offset, .. }) => {
                assert_eq!(offset as usize, HEADER_LEN + 5 + TRAILER_LEN);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = encode_frame(kind::RECORD, b"x");
        bytes[0] ^= 0xFF;
        let (frames, err) = decode_all(&bytes);
        assert!(frames.is_empty());
        assert_eq!(err, Some(WireError::BadMagic { offset: 0 }));

        let mut bytes = encode_frame(kind::RECORD, b"x");
        bytes[4] = 9;
        let (_, err) = decode_all(&bytes);
        assert_eq!(
            err,
            Some(WireError::BadVersion {
                offset: 0,
                found: 9
            })
        );
    }

    #[test]
    fn oversized_length_is_refused_before_allocation() {
        let mut bytes = encode_frame(kind::RECORD, b"x");
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let (_, err) = decode_all(&bytes);
        assert!(matches!(err, Some(WireError::LengthOverrun { .. })));
    }

    #[test]
    fn payload_flip_is_a_crc_mismatch() {
        let mut bytes = encode_frame(kind::RECORD, b"payload");
        bytes[HEADER_LEN + 2] ^= 0x01;
        let (_, err) = decode_all(&bytes);
        assert!(matches!(err, Some(WireError::CrcMismatch { .. })));
    }

    #[test]
    fn reader_rejects_short_and_trailing_payloads() {
        let mut w = WireWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.take_u64().is_err(), "4 bytes cannot yield a u64");
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_u32().expect("u32 present"), 7);
        assert!(r.finish().is_ok());
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_u8().expect("byte present"), 7);
        assert!(r.finish().is_err(), "unconsumed bytes must be an error");
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut w = WireWriter::new();
        w.put_str("θ=90° résumé");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.take_str().expect("string decodes"), "θ=90° résumé");
        assert!(r.finish().is_ok());

        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_u8(0xFF);
        w.put_u8(0xFE);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.take_str().is_err(), "invalid UTF-8 must be refused");
    }

    #[test]
    fn scheme_codec_covers_all_and_rejects_out_of_range() {
        for scheme in Scheme::ALL {
            let byte = encode_scheme(scheme);
            assert_eq!(decode_scheme(byte, 0).expect("valid index"), scheme);
        }
        assert!(decode_scheme(3, 0).is_err());
    }
}
