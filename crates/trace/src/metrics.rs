//! A statically-named metrics registry: counters, gauges, and
//! `dirca-stats` histograms, rendered as one JSON object.
//!
//! Names are `&'static str` by construction, so the set of metrics a build
//! can emit is fixed at compile time. Storage is ordered vectors with
//! linear find-or-insert — metric counts are small (tens), lookups are off
//! the simulation hot path, and registration order (not hash order)
//! determines output order, keeping reports byte-stable across runs.

use std::fmt::Write as _;

use dirca_stats::Histogram;

/// A snapshot-oriented registry of named metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Whether no metrics have been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the counter `name`, registering it at zero first if
    /// needed.
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, value)) => *value += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Sets the gauge `name` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — NaN/inf in a report JSON would
    /// corrupt the document.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        assert!(value.is_finite(), "gauge {name} must be finite");
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, slot)) => *slot = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Records `x` into the histogram `name`, creating it with the given
    /// shape on first use. The shape arguments are ignored on subsequent
    /// calls — the first registration wins.
    ///
    /// # Panics
    ///
    /// Panics if the first-use shape is invalid (`bins == 0`, non-finite or
    /// inverted bounds).
    pub fn record_histogram(&mut self, name: &'static str, lo: f64, hi: f64, bins: usize, x: f64) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            h.record(x);
            return;
        }
        let mut h = Histogram::new(lo, hi, bins)
            .expect("histogram shapes are compile-time constants and must be valid");
        h.record(x);
        self.histograms.push((name, h));
    }

    /// The current value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The current value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Renders the registry as one single-line JSON object:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},"histograms":{"name":
    ///  {"lo":..,"hi":..,"bins":[..],"underflow":..,"overflow":..}}}
    /// ```
    ///
    /// Keys appear in registration order. Gauges are rendered with `{:?}`
    /// (shortest f64 round trip), so parsing the JSON back recovers the
    /// exact values.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value:?}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let lo = h.bin_range(0).0;
            let hi = h.bin_range(h.len() - 1).1;
            let _ = write!(out, "\"{name}\":{{\"lo\":{lo:?},\"hi\":{hi:?},\"bins\":[");
            for b in 0..h.len() {
                if b > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", h.bin_count(b));
            }
            let _ = write!(
                out,
                "],\"underflow\":{},\"overflow\":{}}}",
                h.underflow(),
                h.overflow()
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.add_counter("rts_tx", 2);
        m.add_counter("rts_tx", 3);
        m.add_counter("cts_tx", 1);
        assert_eq!(m.counter("rts_tx"), Some(5));
        assert_eq!(m.counter("cts_tx"), Some(1));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("airtime_s", 0.25);
        m.set_gauge("airtime_s", 0.5);
        assert_eq!(m.gauge("airtime_s"), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_gauge_panics() {
        MetricsRegistry::new().set_gauge("bad", f64::NAN);
    }

    #[test]
    fn histograms_record_and_keep_first_shape() {
        let mut m = MetricsRegistry::new();
        m.record_histogram("delay_s", 0.0, 1.0, 10, 0.35);
        m.record_histogram("delay_s", 5.0, 9.0, 2, 0.15);
        let h = m.histogram("delay_s").unwrap();
        assert_eq!(h.len(), 10);
        assert_eq!(h.total(), 2);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.bin_count(1), 1);
    }

    #[test]
    fn json_snapshot_parses_and_preserves_order() {
        let mut m = MetricsRegistry::new();
        m.add_counter("b_second", 1);
        m.add_counter("a_first", 2);
        m.set_gauge("g", 1.5);
        m.record_histogram("h", 0.0, 4.0, 4, 2.5);
        m.record_histogram("h", 0.0, 4.0, 4, 9.0);
        let text = m.to_json();
        let v = Json::parse(&text).unwrap();
        let counters = v.get("counters").unwrap().as_obj().unwrap();
        assert_eq!(counters[0].0, "b_second");
        assert_eq!(counters[1].0, "a_first");
        assert_eq!(
            v.get("gauges").unwrap().get("g").unwrap().as_num(),
            Some(1.5)
        );
        let h = v.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("overflow").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("bins").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(
            m.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }
}
