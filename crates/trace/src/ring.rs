//! A preallocated ring buffer of trace records.

use crate::record::TraceRecord;

/// FNV-1a offset basis, matching the golden-hash convention used by
/// `crates/net/tests/golden_ring_hash.rs`.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A bounded trace: the last `capacity` records of a run, oldest first.
///
/// Storage is allocated once up front; recording never allocates. When the
/// buffer is full the oldest record is overwritten and
/// [`RingTrace::overwritten`] counts the loss, so a truncated trace is
/// detectable rather than silent.
#[derive(Debug, Clone)]
pub struct RingTrace {
    buf: Vec<TraceRecord>,
    /// Index of the oldest record once the buffer has wrapped.
    start: usize,
    cap: usize,
    overwritten: u64,
}

impl RingTrace {
    /// Creates an empty trace holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "RingTrace capacity must be non-zero");
        RingTrace {
            buf: Vec::with_capacity(capacity),
            start: 0,
            cap: capacity,
            overwritten: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(record);
        } else {
            if let Some(slot) = self.buf.get_mut(self.start) {
                *slot = record;
            }
            self.start = (self.start + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many records were lost to wrap-around.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates records oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        let (tail, head) = self.buf.split_at(self.start.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }

    /// Renders the whole trace as JSONL, one record per line, oldest first,
    /// each line terminated by `\n`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.len() * 96);
        for record in self.iter() {
            record.to_json_into(&mut out);
            out.push('\n');
        }
        out
    }

    /// FNV-1a hash of the JSONL rendering — a compact fingerprint two
    /// same-seed runs must agree on byte-for-byte.
    pub fn hash(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }
}

/// FNV-1a over `bytes`, using the same constants as the golden ring-trace
/// hashes in `dirca-net`'s test suite.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use dirca_radio::NodeId;
    use dirca_sim::SimTime;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(i),
            node: NodeId(i as usize % 4),
            kind: RecordKind::BackoffDraw {
                cw: 31,
                slots: i as u32 % 32,
            },
        }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut ring = RingTrace::with_capacity(4);
        for i in 0..6 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.overwritten(), 2);
        let times: Vec<u64> = ring.iter().map(|r| r.time.as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4, 5]);
    }

    #[test]
    fn unwrapped_iteration_is_in_order() {
        let mut ring = RingTrace::with_capacity(8);
        for i in 0..5 {
            ring.push(rec(i));
        }
        assert_eq!(ring.overwritten(), 0);
        let times: Vec<u64> = ring.iter().map(|r| r.time.as_nanos()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let mut ring = RingTrace::with_capacity(8);
        for i in 0..3 {
            ring.push(rec(i));
        }
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn equal_contents_hash_equal() {
        let mut a = RingTrace::with_capacity(4);
        let mut b = RingTrace::with_capacity(4);
        for i in 0..6 {
            a.push(rec(i));
            b.push(rec(i));
        }
        assert_eq!(a.hash(), b.hash());
        b.push(rec(6));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = RingTrace::with_capacity(0);
    }
}
