//! Typed trace records and their JSONL encoding.
//!
//! Every record is a fixed-size `Copy` value: recording is a stamp-and-push
//! into a preallocated ring buffer, with no allocation, hashing, or clock
//! reads on the hot path. The JSONL rendering below is the *documented
//! schema* — `trace_view --check` and the CI smoke job validate exported
//! traces against [`TraceRecord::from_json`], which is the exact inverse of
//! [`TraceRecord::to_json_into`].

use std::fmt::Write as _;

use dirca_mac::{FrameKind, TimerKind};
use dirca_radio::NodeId;
use dirca_sim::SimTime;

use crate::json::{escape_into, Json};

/// One observable MAC/PHY event, stamped with sim-time and node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation instant the event occurred.
    pub time: SimTime,
    /// The node the event is attributed to.
    pub node: NodeId,
    /// What happened.
    pub kind: RecordKind,
}

/// The payload of a [`TraceRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A frame left this node's radio.
    FrameTx {
        /// Frame class.
        kind: FrameKind,
        /// Addressed node.
        peer: NodeId,
        /// On-air payload bytes (0 for control frames).
        bytes: u32,
        /// Whether the transmission used a directional beam.
        directional: bool,
    },
    /// A frame addressed to this node was decoded successfully.
    FrameRx {
        /// Frame class.
        kind: FrameKind,
        /// Transmitting node.
        peer: NodeId,
    },
    /// A reception at this node ended corrupted (collision or fault).
    RxCorrupted,
    /// The MAC drew a fresh backoff.
    BackoffDraw {
        /// Contention-window upper bound the draw was taken from.
        cw: u32,
        /// The drawn slot count in `[0, cw]`.
        slots: u32,
    },
    /// An overheard frame reserved the medium: NAV set until `until`.
    NavSet {
        /// Instant the reservation ends.
        until: SimTime,
    },
    /// The node's NAV reservation expired.
    NavExpire,
    /// A response timer fired without the awaited frame.
    Timeout {
        /// Which timer.
        timer: TimerKind,
    },
    /// A data packet completed service successfully (ACK received).
    PacketAcked,
    /// A data packet was dropped after exhausting retries.
    PacketDropped,
    /// Fault injection corrupted an otherwise-clean reception.
    FaultCorrupt,
    /// A link outage suppressed an otherwise-clean reception.
    FaultOutage,
}

impl RecordKind {
    /// The record's `ev` field: a stable snake_case event name.
    pub fn event_name(&self) -> &'static str {
        match self {
            RecordKind::FrameTx { .. } => "frame_tx",
            RecordKind::FrameRx { .. } => "frame_rx",
            RecordKind::RxCorrupted => "rx_corrupted",
            RecordKind::BackoffDraw { .. } => "backoff_draw",
            RecordKind::NavSet { .. } => "nav_set",
            RecordKind::NavExpire => "nav_expire",
            RecordKind::Timeout { .. } => "timeout",
            RecordKind::PacketAcked => "packet_acked",
            RecordKind::PacketDropped => "packet_dropped",
            RecordKind::FaultCorrupt => "fault_corrupt",
            RecordKind::FaultOutage => "fault_outage",
        }
    }
}

impl TraceRecord {
    /// Appends this record as one JSON object (no trailing newline).
    ///
    /// Field order is fixed: `t`, `node`, `ev`, then the event-specific
    /// fields — so equal records render to byte-identical lines.
    pub fn to_json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t\":{},\"node\":{},\"ev\":\"{}\"",
            self.time.as_nanos(),
            self.node.0,
            self.kind.event_name()
        );
        match self.kind {
            RecordKind::FrameTx {
                kind,
                peer,
                bytes,
                directional,
            } => {
                let _ = write!(
                    out,
                    ",\"frame\":\"{}\",\"peer\":{},\"bytes\":{bytes},\"dir\":{directional}",
                    kind.label(),
                    peer.0
                );
            }
            RecordKind::FrameRx { kind, peer } => {
                let _ = write!(out, ",\"frame\":\"{}\",\"peer\":{}", kind.label(), peer.0);
            }
            RecordKind::BackoffDraw { cw, slots } => {
                let _ = write!(out, ",\"cw\":{cw},\"slots\":{slots}");
            }
            RecordKind::NavSet { until } => {
                let _ = write!(out, ",\"until\":{}", until.as_nanos());
            }
            RecordKind::Timeout { timer } => {
                out.push_str(",\"timer\":\"");
                escape_into(out, timer.label());
                out.push('"');
            }
            RecordKind::RxCorrupted
            | RecordKind::NavExpire
            | RecordKind::PacketAcked
            | RecordKind::PacketDropped
            | RecordKind::FaultCorrupt
            | RecordKind::FaultOutage => {}
        }
        out.push('}');
    }

    /// This record as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.to_json_into(&mut out);
        out
    }

    /// Parses a record from a decoded JSON object; the exact inverse of
    /// [`TraceRecord::to_json_into`]. Used by `trace_view --check` and the
    /// round-trip tests to validate exported traces against the schema.
    pub fn from_json(value: &Json) -> Result<TraceRecord, &'static str> {
        let time = value
            .get("t")
            .and_then(Json::as_u64)
            .ok_or("missing or invalid 't'")?;
        let node = value
            .get("node")
            .and_then(Json::as_u64)
            .ok_or("missing or invalid 'node'")?;
        let ev = value
            .get("ev")
            .and_then(Json::as_str)
            .ok_or("missing or invalid 'ev'")?;
        let frame = || {
            value
                .get("frame")
                .and_then(Json::as_str)
                .and_then(FrameKind::from_label)
                .ok_or("missing or invalid 'frame'")
        };
        let peer = || {
            value
                .get("peer")
                .and_then(Json::as_u64)
                .ok_or("missing or invalid 'peer'")
        };
        let kind = match ev {
            "frame_tx" => RecordKind::FrameTx {
                kind: frame()?,
                peer: NodeId(peer()? as usize),
                bytes: value
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .and_then(|b| u32::try_from(b).ok())
                    .ok_or("missing or invalid 'bytes'")?,
                directional: value
                    .get("dir")
                    .and_then(Json::as_bool)
                    .ok_or("missing or invalid 'dir'")?,
            },
            "frame_rx" => RecordKind::FrameRx {
                kind: frame()?,
                peer: NodeId(peer()? as usize),
            },
            "rx_corrupted" => RecordKind::RxCorrupted,
            "backoff_draw" => RecordKind::BackoffDraw {
                cw: value
                    .get("cw")
                    .and_then(Json::as_u64)
                    .and_then(|c| u32::try_from(c).ok())
                    .ok_or("missing or invalid 'cw'")?,
                slots: value
                    .get("slots")
                    .and_then(Json::as_u64)
                    .and_then(|s| u32::try_from(s).ok())
                    .ok_or("missing or invalid 'slots'")?,
            },
            "nav_set" => RecordKind::NavSet {
                until: SimTime::from_nanos(
                    value
                        .get("until")
                        .and_then(Json::as_u64)
                        .ok_or("missing or invalid 'until'")?,
                ),
            },
            "nav_expire" => RecordKind::NavExpire,
            "timeout" => RecordKind::Timeout {
                timer: value
                    .get("timer")
                    .and_then(Json::as_str)
                    .and_then(TimerKind::from_label)
                    .ok_or("missing or invalid 'timer'")?,
            },
            "packet_acked" => RecordKind::PacketAcked,
            "packet_dropped" => RecordKind::PacketDropped,
            "fault_corrupt" => RecordKind::FaultCorrupt,
            "fault_outage" => RecordKind::FaultOutage,
            _ => return Err("unknown 'ev' value"),
        };
        Ok(TraceRecord {
            time: SimTime::from_nanos(time),
            node: NodeId(node as usize),
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_sim::SimDuration;

    fn all_kinds() -> Vec<RecordKind> {
        let mut kinds = vec![
            RecordKind::FrameTx {
                kind: FrameKind::Rts,
                peer: NodeId(3),
                bytes: 1460,
                directional: true,
            },
            RecordKind::FrameRx {
                kind: FrameKind::Ack,
                peer: NodeId(0),
            },
            RecordKind::RxCorrupted,
            RecordKind::BackoffDraw { cw: 31, slots: 7 },
            RecordKind::NavSet {
                until: SimTime::from_micros(812),
            },
            RecordKind::NavExpire,
            RecordKind::PacketAcked,
            RecordKind::PacketDropped,
            RecordKind::FaultCorrupt,
            RecordKind::FaultOutage,
        ];
        for timer in TimerKind::ALL {
            kinds.push(RecordKind::Timeout { timer });
        }
        kinds
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let record = TraceRecord {
                time: SimTime::ZERO + SimDuration::from_micros(i as u64),
                node: NodeId(i),
                kind,
            };
            let line = record.to_json();
            let parsed = Json::parse(&line).unwrap();
            let back = TraceRecord::from_json(&parsed).unwrap();
            assert_eq!(back, record, "mismatch for line {line}");
        }
    }

    #[test]
    fn rendering_is_stable() {
        let record = TraceRecord {
            time: SimTime::from_micros(20),
            node: NodeId(1),
            kind: RecordKind::FrameTx {
                kind: FrameKind::Rts,
                peer: NodeId(2),
                bytes: 1460,
                directional: false,
            },
        };
        assert_eq!(
            record.to_json(),
            r#"{"t":20000,"node":1,"ev":"frame_tx","frame":"RTS","peer":2,"bytes":1460,"dir":false}"#
        );
    }

    #[test]
    fn from_json_rejects_malformed_records() {
        for bad in [
            r#"{"node":1,"ev":"nav_expire"}"#,
            r#"{"t":1,"ev":"nav_expire"}"#,
            r#"{"t":1,"node":1}"#,
            r#"{"t":1,"node":1,"ev":"warp_drive"}"#,
            r#"{"t":1,"node":1,"ev":"frame_tx","frame":"XTS","peer":2,"bytes":0,"dir":true}"#,
            r#"{"t":1,"node":1,"ev":"frame_tx","frame":"RTS","peer":2,"dir":true}"#,
            r#"{"t":1,"node":1,"ev":"timeout","timer":"difs"}"#,
            r#"{"t":1.5,"node":1,"ev":"nav_expire"}"#,
        ] {
            let parsed = Json::parse(bad).unwrap();
            assert!(
                TraceRecord::from_json(&parsed).is_err(),
                "accepted malformed record {bad}"
            );
        }
    }
}
