//! Scenario specifications: what a client asks the service to run.
//!
//! A [`ScenarioSpec`] is the wire twin of the batch harness's
//! `GridScale` + runner knobs. Validation happens *before* any work is
//! scheduled — [`ScenarioSpec::validate`] checks every field against the
//! ranges the simulator is built for, and the server turns a violation
//! into a typed `REJECT` frame instead of crashing or running garbage.

use dirca_experiments::report::GridScale;
use dirca_experiments::runner::Cell;
use dirca_mac::Scheme;
use dirca_sim::SimDuration;
use dirca_trace::wire::{decode_scheme, encode_scheme, PayloadError, WireReader, WireWriter};

/// One scenario: the full parameterization of a simulation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Master seed; also seeds the client's retry-jitter stream.
    pub seed: u64,
    /// Topologies per cell.
    pub topologies: usize,
    /// Measurement window per topology, in milliseconds.
    pub measure_ms: u64,
    /// Warm-up window per topology, in milliseconds.
    pub warmup_ms: u64,
    /// Densities (average neighbourhood sizes) to sweep.
    pub densities: Vec<usize>,
    /// Beamwidths in degrees to sweep.
    pub beamwidths: Vec<f64>,
    /// I.i.d. injected frame error rate; `0.0` keeps the fault layer
    /// trivial and the run byte-identical to a plan-free grid.
    pub fer: f64,
    /// Extra attempts for a failed cell beyond the first.
    pub retries: u32,
    /// Watchdog event budget per topology; `0` disables the watchdog.
    pub events_budget: u64,
    /// Drill switch: this cell deliberately panics (used by fault drills
    /// to exercise the failed-cell path end to end).
    pub inject_panic: Option<Cell>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 0xD1CA,
            topologies: 4,
            measure_ms: 1_000,
            warmup_ms: 100,
            densities: vec![3, 5, 8],
            beamwidths: vec![30.0, 90.0, 150.0],
            fer: 0.0,
            retries: 1,
            events_budget: 0,
            inject_panic: None,
        }
    }
}

/// Validation limits: the ranges the service will schedule. They bound
/// resource use (a spec is untrusted input), not simulator correctness.
pub mod limits {
    /// Maximum topologies per cell.
    pub const MAX_TOPOLOGIES: usize = 10_000;
    /// Maximum measurement window (ms) per topology.
    pub const MAX_MEASURE_MS: u64 = 600_000;
    /// Maximum warm-up window (ms).
    pub const MAX_WARMUP_MS: u64 = 60_000;
    /// Maximum entries in the density sweep.
    pub const MAX_DENSITIES: usize = 16;
    /// Maximum average neighbourhood size.
    pub const MAX_DENSITY: usize = 64;
    /// Maximum entries in the beamwidth sweep.
    pub const MAX_BEAMWIDTHS: usize = 16;
    /// Maximum cell retries.
    pub const MAX_RETRIES: u32 = 16;
}

/// Why a spec was refused. Every variant names the offending field so the
/// client-side message is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The field that failed validation.
    pub field: &'static str,
    /// What the field must satisfy.
    pub expected: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid spec: {} must be {}", self.field, self.expected)
    }
}

impl std::error::Error for SpecError {}

fn invalid(field: &'static str, expected: impl Into<String>) -> SpecError {
    SpecError {
        field,
        expected: expected.into(),
    }
}

impl ScenarioSpec {
    /// Checks every field against [`limits`]. `Ok(())` means the server
    /// can schedule this spec without resource surprises.
    pub fn validate(&self) -> Result<(), SpecError> {
        use limits::*;
        if !(1..=MAX_TOPOLOGIES).contains(&self.topologies) {
            return Err(invalid("topologies", format!("in 1..={MAX_TOPOLOGIES}")));
        }
        if !(1..=MAX_MEASURE_MS).contains(&self.measure_ms) {
            return Err(invalid("measure_ms", format!("in 1..={MAX_MEASURE_MS}")));
        }
        if self.warmup_ms > MAX_WARMUP_MS {
            return Err(invalid("warmup_ms", format!("at most {MAX_WARMUP_MS}")));
        }
        if self.densities.is_empty() || self.densities.len() > MAX_DENSITIES {
            return Err(invalid(
                "densities",
                format!("a non-empty list of at most {MAX_DENSITIES} entries"),
            ));
        }
        if let Some(n) = self
            .densities
            .iter()
            .find(|&&n| !(1..=MAX_DENSITY).contains(&n))
        {
            return Err(invalid(
                "densities",
                format!("each in 1..={MAX_DENSITY}, got {n}"),
            ));
        }
        if self.beamwidths.is_empty() || self.beamwidths.len() > MAX_BEAMWIDTHS {
            return Err(invalid(
                "beamwidths",
                format!("a non-empty list of at most {MAX_BEAMWIDTHS} entries"),
            ));
        }
        if let Some(t) = self
            .beamwidths
            .iter()
            .find(|&&t| !t.is_finite() || t <= 0.0 || t > 360.0)
        {
            return Err(invalid(
                "beamwidths",
                format!("each finite in (0, 360], got {t}"),
            ));
        }
        if !self.fer.is_finite() || !(0.0..1.0).contains(&self.fer) {
            return Err(invalid(
                "fer",
                format!("a finite rate in [0, 1), got {}", self.fer),
            ));
        }
        if self.retries > MAX_RETRIES {
            return Err(invalid("retries", format!("at most {MAX_RETRIES}")));
        }
        Ok(())
    }

    /// The grid scale this spec describes. `threads` is a server-side
    /// policy knob, deliberately not part of the spec: per-cell results
    /// are thread-count independent, so it cannot change the report.
    pub fn scale(&self, threads: usize) -> GridScale {
        GridScale {
            topologies: self.topologies,
            measure: SimDuration::from_millis(self.measure_ms),
            warmup: SimDuration::from_millis(self.warmup_ms),
            threads,
            seed: self.seed,
            densities: self.densities.clone(),
            beamwidths: self.beamwidths.clone(),
            fer: self.fer,
        }
    }

    /// Encodes the spec as a `SUBMIT` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.seed);
        w.put_u64(self.topologies as u64);
        w.put_u64(self.measure_ms);
        w.put_u64(self.warmup_ms);
        w.put_f64(self.fer);
        w.put_u32(self.retries);
        w.put_u64(self.events_budget);
        w.put_u32(self.densities.len() as u32);
        for &n in &self.densities {
            w.put_u64(n as u64);
        }
        w.put_u32(self.beamwidths.len() as u32);
        for &t in &self.beamwidths {
            w.put_f64(t);
        }
        match &self.inject_panic {
            None => w.put_bool(false),
            Some(cell) => {
                w.put_bool(true);
                w.put_u64(cell.n as u64);
                w.put_f64(cell.theta);
                w.put_u8(encode_scheme(cell.scheme));
            }
        }
        w.into_bytes()
    }

    /// Decodes a `SUBMIT` payload. A typed [`PayloadError`] — never a
    /// panic — on any malformed byte; list lengths are bounds-checked
    /// against [`limits`] *before* allocation so a hostile length prefix
    /// cannot balloon memory.
    pub fn decode(payload: &[u8]) -> Result<ScenarioSpec, PayloadError> {
        let mut r = WireReader::new(payload);
        let seed = r.take_u64()?;
        let topologies = r.take_u64()? as usize;
        let measure_ms = r.take_u64()?;
        let warmup_ms = r.take_u64()?;
        let fer = r.take_f64()?;
        let retries = r.take_u32()?;
        let events_budget = r.take_u64()?;
        let n_densities = r.take_u32()? as usize;
        if n_densities > limits::MAX_DENSITIES {
            return Err(PayloadError {
                offset: 52,
                what: "density list longer than the service limit",
            });
        }
        let mut densities = Vec::with_capacity(n_densities);
        for _ in 0..n_densities {
            densities.push(r.take_u64()? as usize);
        }
        let n_beamwidths = r.take_u32()? as usize;
        if n_beamwidths > limits::MAX_BEAMWIDTHS {
            return Err(PayloadError {
                offset: 56 + 8 * n_densities,
                what: "beamwidth list longer than the service limit",
            });
        }
        let mut beamwidths = Vec::with_capacity(n_beamwidths);
        for _ in 0..n_beamwidths {
            beamwidths.push(r.take_f64()?);
        }
        let inject_panic = if r.take_bool()? {
            let n = r.take_u64()? as usize;
            let theta = r.take_f64()?;
            let scheme: Scheme = decode_scheme(r.take_u8()?, 0)?;
            Some(Cell { n, theta, scheme })
        } else {
            None
        };
        r.finish()?;
        Ok(ScenarioSpec {
            seed,
            topologies,
            measure_ms,
            warmup_ms,
            densities,
            beamwidths,
            fer,
            retries,
            events_budget,
            inject_panic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            seed: 42,
            topologies: 2,
            measure_ms: 150,
            warmup_ms: 25,
            densities: vec![3, 5],
            beamwidths: vec![30.0, 90.0],
            fer: 0.125,
            retries: 2,
            events_budget: 1_000_000,
            inject_panic: Some(Cell {
                n: 3,
                theta: 90.0,
                scheme: Scheme::DrtsDcts,
            }),
        }
    }

    #[test]
    fn specs_round_trip_bit_exactly() {
        let s = spec();
        assert_eq!(ScenarioSpec::decode(&s.encode()).unwrap(), s);
        let plain = ScenarioSpec::default();
        assert_eq!(ScenarioSpec::decode(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn garbage_payloads_are_typed_errors_never_panics() {
        assert!(ScenarioSpec::decode(&[]).is_err());
        for len in 0..spec().encode().len() {
            assert!(
                ScenarioSpec::decode(&spec().encode()[..len]).is_err(),
                "every truncation must be refused (len {len})"
            );
        }
        assert!(ScenarioSpec::decode(&[0xFF; 64]).is_err());
    }

    #[test]
    fn hostile_length_prefixes_are_bounded_before_allocation() {
        // A payload claiming u32::MAX densities must be refused by the
        // limit check, not by an allocation attempt.
        let mut w = WireWriter::new();
        w.put_u64(1); // seed
        w.put_u64(1); // topologies
        w.put_u64(1); // measure_ms
        w.put_u64(1); // warmup_ms
        w.put_f64(0.0); // fer
        w.put_u32(1); // retries
        w.put_u64(0); // events_budget
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = ScenarioSpec::decode(&bytes).unwrap_err();
        assert_eq!(err.offset, 52);
        assert!(err.what.contains("limit"), "{err:?}");
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let ok = ScenarioSpec::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases: Vec<(&str, ScenarioSpec)> = vec![
            (
                "topologies",
                ScenarioSpec {
                    topologies: 0,
                    ..ok.clone()
                },
            ),
            (
                "topologies",
                ScenarioSpec {
                    topologies: 1_000_000,
                    ..ok.clone()
                },
            ),
            (
                "measure_ms",
                ScenarioSpec {
                    measure_ms: 0,
                    ..ok.clone()
                },
            ),
            (
                "warmup_ms",
                ScenarioSpec {
                    warmup_ms: u64::MAX,
                    ..ok.clone()
                },
            ),
            (
                "densities",
                ScenarioSpec {
                    densities: vec![],
                    ..ok.clone()
                },
            ),
            (
                "densities",
                ScenarioSpec {
                    densities: vec![0],
                    ..ok.clone()
                },
            ),
            (
                "densities",
                ScenarioSpec {
                    densities: vec![1000],
                    ..ok.clone()
                },
            ),
            (
                "beamwidths",
                ScenarioSpec {
                    beamwidths: vec![],
                    ..ok.clone()
                },
            ),
            (
                "beamwidths",
                ScenarioSpec {
                    beamwidths: vec![400.0],
                    ..ok.clone()
                },
            ),
            (
                "beamwidths",
                ScenarioSpec {
                    beamwidths: vec![f64::NAN],
                    ..ok.clone()
                },
            ),
            (
                "beamwidths",
                ScenarioSpec {
                    beamwidths: vec![-30.0],
                    ..ok.clone()
                },
            ),
            (
                "fer",
                ScenarioSpec {
                    fer: 1.0,
                    ..ok.clone()
                },
            ),
            (
                "fer",
                ScenarioSpec {
                    fer: -0.5,
                    ..ok.clone()
                },
            ),
            (
                "fer",
                ScenarioSpec {
                    fer: f64::NAN,
                    ..ok.clone()
                },
            ),
            (
                "retries",
                ScenarioSpec {
                    retries: 1000,
                    ..ok.clone()
                },
            ),
        ];
        for (field, bad) in cases {
            let err = bad.validate().expect_err("must reject");
            assert_eq!(err.field, field, "{err}");
        }
    }
}
