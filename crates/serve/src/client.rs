//! The scenario client: submits a spec and collects the streamed result.
//!
//! Retry policy: a connection failure, a mid-stream transport error, or a
//! `BUSY` shed is retried with exponential backoff plus seeded jitter —
//! the jitter stream is `derive_seed(spec.seed,
//! SERVE_BACKOFF_STREAM_SALT)` indexed per attempt, so two clients with
//! different seeds desynchronize deterministically and a test can replay
//! the exact schedule. Retrying a half-finished grid is cheap by design:
//! the server restores every already-checkpointed cell instantly and the
//! final report is byte-identical regardless of how many tries it took.
//! A typed `REJECT` is *not* retried — resending a bad spec cannot fix it.

use std::net::TcpStream;

use dirca_net::salts::SERVE_BACKOFF_STREAM_SALT;
use dirca_sim::rng::{derive_seed, stream_rng};
use dirca_trace::wire::kind;
use rand::Rng;

use crate::proto::{
    decode_accept, decode_busy, decode_done, decode_progress, decode_reject, decode_report, Accept,
    Done, FrameConn, Progress, Reject, TransportError,
};
use crate::spec::ScenarioSpec;
use crate::Duration;

/// Client policy knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total connection attempts before giving up.
    pub attempts: u32,
    /// Base backoff step in milliseconds; attempt `k` waits
    /// `base * 2^(k-1)` plus jitter drawn from `[0, base]`.
    pub backoff_base_ms: u64,
    /// Socket read/write timeout. Reads are bounded per *frame* and the
    /// server heartbeats after every cell, so this only needs to exceed
    /// one cell's runtime, not the whole grid's.
    pub io_timeout: Duration,
}

impl ClientConfig {
    /// A config pointed at `addr` with default retry policy.
    pub fn to(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            attempts: 5,
            backoff_base_ms: 50,
            io_timeout: Duration::from_millis(60_000),
        }
    }
}

/// The server's verdict on a submission.
#[derive(Debug, Clone)]
pub enum Served {
    /// The grid ran (or was restored) to completion.
    Done {
        /// The rendered report, byte-identical to the batch harness's.
        report: String,
        /// Executed/restored/failed counts.
        summary: Done,
        /// Every progress heartbeat received, in order.
        progress: Vec<Progress>,
    },
    /// The server refused the spec with a typed reason (not retried).
    Rejected(Reject),
}

/// Why a submission could not be completed.
#[derive(Debug)]
pub enum ClientError {
    /// Connection attempts exhausted (connect failures, mid-stream
    /// drops, and `BUSY` sheds all land here after the last retry).
    Transport(String),
    /// The server spoke the protocol wrong; retrying will not help.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport failure: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One attempt's outcome: a final answer, or a reason to back off.
enum Attempt {
    Final(Served),
    Busy(u32),
}

/// The deterministic backoff delay before retry attempt `attempt` (1-based).
fn backoff_delay(seed: u64, attempt: u32, base_ms: u64) -> Duration {
    let mut rng = stream_rng(
        derive_seed(seed, SERVE_BACKOFF_STREAM_SALT),
        u64::from(attempt),
    );
    let step = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    let jitter: u64 = rng.random_range(0..=base_ms.max(1));
    Duration::from_millis(step.saturating_add(jitter))
}

/// Submits `spec` and blocks until the server's final answer, retrying
/// transport failures and `BUSY` sheds with jittered backoff.
pub fn submit(spec: &ScenarioSpec, config: &ClientConfig) -> Result<Served, ClientError> {
    let mut last = String::from("no attempts were made");
    for attempt in 0..config.attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(spec.seed, attempt, config.backoff_base_ms));
        }
        match attempt_once(spec, config) {
            Ok(Attempt::Final(served)) => return Ok(served),
            Ok(Attempt::Busy(pending)) => {
                last = format!("server busy ({pending} submissions already queued)");
            }
            Err(ClientError::Transport(m)) => last = m,
            Err(protocol) => return Err(protocol),
        }
    }
    Err(ClientError::Transport(format!(
        "gave up after {} attempts; last failure: {last}",
        config.attempts.max(1)
    )))
}

/// Asks the server to exit; `Ok` once the `SHUTDOWN_ACK` arrives.
pub fn shutdown(config: &ClientConfig) -> Result<(), ClientError> {
    let mut conn = connect(config)?;
    conn.write_frame(kind::SHUTDOWN, &[]).map_err(transport)?;
    let frame = conn.expect_frame().map_err(transport)?;
    if frame.kind == kind::SHUTDOWN_ACK {
        Ok(())
    } else {
        Err(ClientError::Protocol(format!(
            "expected SHUTDOWN_ACK, got frame kind {:#04x}",
            frame.kind
        )))
    }
}

fn transport(e: TransportError) -> ClientError {
    ClientError::Transport(e.to_string())
}

fn protocol(e: impl std::fmt::Display) -> ClientError {
    ClientError::Protocol(e.to_string())
}

fn connect(config: &ClientConfig) -> Result<FrameConn, ClientError> {
    let stream = TcpStream::connect(&config.addr)
        .map_err(|e| ClientError::Transport(format!("connect {}: {e}", config.addr)))?;
    stream
        .set_read_timeout(Some(config.io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(config.io_timeout)))
        .map_err(|e| ClientError::Transport(format!("set timeouts: {e}")))?;
    Ok(FrameConn::new(stream))
}

fn attempt_once(spec: &ScenarioSpec, config: &ClientConfig) -> Result<Attempt, ClientError> {
    let mut conn = connect(config)?;
    conn.write_frame(kind::SUBMIT, &spec.encode())
        .map_err(transport)?;
    let mut accept: Option<Accept> = None;
    let mut progress = Vec::new();
    let mut report: Option<String> = None;
    loop {
        let frame = conn.expect_frame().map_err(transport)?;
        match frame.kind {
            kind::BUSY => {
                return Ok(Attempt::Busy(
                    decode_busy(&frame.payload).map_err(protocol)?,
                ));
            }
            kind::REJECT => {
                let reject = decode_reject(&frame.payload).map_err(protocol)?;
                return Ok(Attempt::Final(Served::Rejected(reject)));
            }
            kind::ACCEPT => {
                accept = Some(decode_accept(&frame.payload).map_err(protocol)?);
            }
            kind::PROGRESS if accept.is_some() => {
                progress.push(decode_progress(&frame.payload).map_err(protocol)?);
            }
            kind::REPORT if accept.is_some() => {
                report = Some(decode_report(&frame.payload).map_err(protocol)?);
            }
            kind::DONE if accept.is_some() => {
                let summary = decode_done(&frame.payload).map_err(protocol)?;
                let report = report.ok_or_else(|| {
                    ClientError::Protocol("DONE arrived before any REPORT".into())
                })?;
                return Ok(Attempt::Final(Served::Done {
                    report,
                    summary,
                    progress,
                }));
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected frame kind {other:#04x} at this point in the conversation"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_seed_deterministic_and_grows() {
        let a: Vec<Duration> = (1..=4).map(|k| backoff_delay(7, k, 50)).collect();
        let b: Vec<Duration> = (1..=4).map(|k| backoff_delay(7, k, 50)).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c: Vec<Duration> = (1..=4).map(|k| backoff_delay(8, k, 50)).collect();
        assert_ne!(a, c, "different seeds must desynchronize");
        for (k, d) in a.iter().enumerate() {
            let step = 50 * (1 << k);
            assert!(
                (step..=step + 50).contains(&(d.as_millis() as u64)),
                "attempt {}: {d:?} outside [{step}, {step} + base]",
                k + 1
            );
        }
    }
}
