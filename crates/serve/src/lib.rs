//! `dirca-serve`: a crash-tolerant scenario service.
//!
//! The batch harness (`paper_grid`) runs one grid per invocation; this
//! crate wraps the same runner in a long-lived TCP service. A client
//! submits a [`spec::ScenarioSpec`] over the CRC-framed protocol from
//! `dirca_trace::wire` — the same framing as the on-disk trace and
//! checkpoint formats — and streams back per-cell progress heartbeats,
//! the rendered report, and a terminal summary.
//!
//! The robustness contract, end to end:
//!
//! * **Untrusted input never crashes the server.** A `SUBMIT` payload is
//!   decoded totally (typed [`dirca_trace::wire::PayloadError`]s, list
//!   lengths bounded before allocation) and validated against
//!   [`spec::limits`] before any work is scheduled; every failure is a
//!   typed `REJECT` frame.
//! * **A `SIGKILL` at any instant loses at most one in-flight cell.**
//!   Each finished cell is flushed to a binary checkpoint *before* its
//!   progress heartbeat; a restarted server resumes the same spec from
//!   the checkpoint and the report comes out byte-identical.
//! * **Overload is shed, not queued unboundedly.** Connections beyond
//!   the pending-queue cap get a `BUSY` frame; the client retries with
//!   exponential backoff and seeded jitter.
//!
//! Determinism note: the served report is byte-identical to
//! `paper_grid`'s for the same spec — thread counts, retries, timeouts,
//! and crash/restart cycles can change *when* bytes arrive but never
//! *which* bytes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

/// Wall-clock duration, used only for service plumbing: socket timeouts,
/// accept-loop polling, and client retry backoff. Simulation code never
/// sees wall-clock time — all simulated time is `dirca_sim::SimTime`.
pub use std::time::Duration; // audit-allow(wall-clock-entropy): socket timeouts and retry backoff are service plumbing; simulated time stays virtual

pub mod client;
pub mod proto;
pub mod server;
pub mod spec;

pub use client::{shutdown, submit, ClientConfig, ClientError, Served};
pub use server::{Server, ServerConfig};
pub use spec::{ScenarioSpec, SpecError};
