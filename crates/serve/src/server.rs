//! The scenario server: a single-threaded TCP accept loop.
//!
//! One conversation is served at a time; connections that arrive while a
//! grid is running are parked in a bounded pending queue (polled between
//! cells, so admission latency is one cell at worst) or shed with a
//! `BUSY` frame once the queue is full. Every completed cell is flushed
//! to a binary checkpoint named by the grid fingerprint *before* its
//! `PROGRESS` heartbeat goes out, so a `SIGKILL` at any instant loses at
//! most one in-flight cell: a restarted server resumes the same spec from
//! the checkpoint and streams back a byte-identical report.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

use dirca_experiments::report::render_combined;
use dirca_experiments::ringsim::RingOutcome;
use dirca_experiments::runner::{enumerate_cells, grid_fingerprint, run_grid_with, RunnerConfig};
use dirca_experiments::wireio::WireFormat;
use dirca_net::Watchdog;
use dirca_trace::wire::kind;

use crate::proto::{
    encode_accept, encode_busy, encode_done, encode_progress, encode_reject, encode_report, reject,
    Accept, Done, FrameConn, Progress, TransportError,
};
use crate::spec::ScenarioSpec;
use crate::Duration;

/// Server policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on; port 0 picks an ephemeral port.
    pub listen: String,
    /// Directory for per-grid checkpoints (created if absent).
    pub state_dir: PathBuf,
    /// Connections parked while a grid runs before newcomers are shed
    /// with `BUSY`.
    pub queue_cap: usize,
    /// Worker threads per cell (never affects report bytes).
    pub threads: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".into(),
            state_dir: PathBuf::from(".dirca-serve"),
            queue_cap: 4,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            io_timeout: Duration::from_millis(10_000),
        }
    }
}

/// What a served conversation asked the accept loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Shutdown,
}

/// The scenario server. See the module docs for the protocol.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    pending: VecDeque<TcpStream>,
}

/// Accepts every connection currently queued on the listener: parks them
/// while there is room, sheds the rest with a best-effort `BUSY` frame.
fn poll_accept(listener: &TcpListener, pending: &mut VecDeque<TcpStream>, config: &ServerConfig) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if pending.len() < config.queue_cap {
                    pending.push_back(stream);
                } else {
                    // Shedding is deliberately terse: one frame, then
                    // close. The write is best-effort — a peer that
                    // vanished mid-shed changes nothing for us.
                    let _ = stream.set_write_timeout(Some(config.io_timeout));
                    let mut conn = FrameConn::new(stream);
                    let _ = conn.write_frame(kind::BUSY, &encode_busy(pending.len() as u32));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            // Transient accept errors (e.g. a peer that reset before we
            // got to it) must not kill the service.
            Err(_) => break,
        }
    }
}

impl Server {
    /// Binds the listener and prepares the state directory.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.state_dir)?;
        let listener = TcpListener::bind(&config.listen)?;
        // Non-blocking so the accept loop can poll between grid cells.
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            pending: VecDeque::new(),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client sends `SHUTDOWN`. Individual connection
    /// failures are contained: a malformed spec, a mid-conversation
    /// disconnect, or garbage bytes end that conversation (with a typed
    /// reject where possible), never the server.
    pub fn run(&mut self) -> std::io::Result<()> {
        loop {
            if let Some(stream) = self.pending.pop_front() {
                if self.serve_connection(stream) == Flow::Shutdown {
                    return Ok(());
                }
                continue;
            }
            // Idle: take the next connection directly. The queue cap only
            // bounds connections that arrive *while a grid runs* — an idle
            // server always has room for one.
            match self.listener.accept() {
                Ok((stream, _)) => self.pending.push_back(stream),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Serves one accepted connection end to end.
    fn serve_connection(&mut self, stream: TcpStream) -> Flow {
        if stream
            .set_read_timeout(Some(self.config.io_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.io_timeout))
                .is_err()
        {
            return Flow::Continue;
        }
        let mut conn = FrameConn::new(stream);
        let frame = match conn.read_frame() {
            Ok(Some(frame)) => frame,
            // Clean EOF (a port probe), a timeout, or garbage bytes: log
            // and move on. For garbage we owe no reply — the peer is not
            // speaking our protocol.
            Ok(None) => return Flow::Continue,
            Err(TransportError::Wire(e)) => {
                eprintln!("dropping connection: {e}");
                let _ = conn.write_frame(
                    kind::REJECT,
                    &encode_reject(reject::SERVER, &format!("not a protocol frame: {e}")),
                );
                return Flow::Continue;
            }
            Err(e) => {
                eprintln!("dropping connection: {e}");
                return Flow::Continue;
            }
        };
        match frame.kind {
            kind::SHUTDOWN => {
                let _ = conn.write_frame(kind::SHUTDOWN_ACK, &[]);
                Flow::Shutdown
            }
            kind::SUBMIT => {
                self.serve_submission(&mut conn, &frame.payload);
                Flow::Continue
            }
            other => {
                let _ = conn.write_frame(
                    kind::REJECT,
                    &encode_reject(
                        reject::SERVER,
                        &format!("expected SUBMIT or SHUTDOWN, got frame kind {other:#04x}"),
                    ),
                );
                Flow::Continue
            }
        }
    }

    /// Validates and runs one submission, streaming progress heartbeats.
    fn serve_submission(&mut self, conn: &mut FrameConn, payload: &[u8]) {
        let spec = match ScenarioSpec::decode(payload) {
            Ok(spec) => spec,
            Err(e) => {
                let _ = conn.write_frame(
                    kind::REJECT,
                    &encode_reject(reject::MALFORMED, &format!("undecodable spec: {e}")),
                );
                return;
            }
        };
        if let Err(e) = spec.validate() {
            let _ = conn.write_frame(
                kind::REJECT,
                &encode_reject(reject::INVALID, &e.to_string()),
            );
            return;
        }
        let scale = spec.scale(self.config.threads);
        let fingerprint = grid_fingerprint(&scale);
        let checkpoint = self.config.state_dir.join(format!("{fingerprint}.ckpt"));
        let total = enumerate_cells(&scale).len() as u32;
        let runner = RunnerConfig {
            threads: self.config.threads,
            retries: spec.retries,
            watchdog: (spec.events_budget > 0).then(|| Watchdog::max_events(spec.events_budget)),
            resume: checkpoint.exists(),
            checkpoint: Some(checkpoint),
            checkpoint_format: WireFormat::Bin,
            max_cells: None,
            inject_panic: spec.inject_panic,
            inject_timeout: None,
        };
        if conn
            .write_frame(kind::ACCEPT, &encode_accept(&Accept { fingerprint, total }))
            .is_err()
        {
            return;
        }
        // The client may die mid-stream; the grid keeps running (every
        // finished cell is already checkpointed, so the work is not
        // wasted — a resubmission restores it instantly).
        let mut client_gone = false;
        let mut done = 0u32;
        let listener = &self.listener;
        let pending = &mut self.pending;
        let config = &self.config;
        let outcome = run_grid_with(&scale, &runner, &mut |o| {
            done += 1;
            if !client_gone {
                let p = Progress {
                    done,
                    total,
                    cell: o.cell,
                    ok: o.result.is_ok(),
                    attempts: o.attempts,
                };
                if conn
                    .write_frame(kind::PROGRESS, &encode_progress(&p))
                    .is_err()
                {
                    client_gone = true;
                }
            }
            poll_accept(listener, pending, config);
        });
        let run = match outcome {
            Ok(run) => run,
            Err(e) => {
                eprintln!("grid failed: {e}");
                let _ = conn.write_frame(
                    kind::REJECT,
                    &encode_reject(reject::SERVER, &format!("cannot serve this grid: {e}")),
                );
                return;
            }
        };
        for w in &run.warnings {
            eprintln!("warning: {w}");
        }
        if client_gone {
            return;
        }
        let completed: Vec<_> = run
            .outcomes
            .iter()
            .filter_map(|o| {
                o.result.as_ref().ok().map(|s| {
                    (
                        o.cell.n,
                        o.cell.theta,
                        o.cell.scheme,
                        RingOutcome::from_samples(s),
                    )
                })
            })
            .collect();
        let report = render_combined(&scale, &completed);
        if conn
            .write_frame(kind::REPORT, &encode_report(&report))
            .is_err()
        {
            return;
        }
        let _ = conn.write_frame(
            kind::DONE,
            &encode_done(&Done {
                executed: run.executed as u32,
                restored: run.restored as u32,
                failed: run.failures().len() as u32,
            }),
        );
    }
}
