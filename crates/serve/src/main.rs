//! The `dirca-serve` binary: a crash-tolerant scenario service.
//!
//! ```text
//! dirca-serve [--listen ADDR] [--state-dir DIR] [--queue-cap K]
//!             [--threads T] [--io-timeout-ms MS]
//! ```
//!
//! Prints `listening on ADDR` on stdout once bound (with `--listen
//! 127.0.0.1:0` this reveals the ephemeral port), then serves until a
//! client sends `SHUTDOWN`, exiting 0. Checkpoints live under
//! `--state-dir`, one file per grid fingerprint: kill the process at any
//! point, restart it on the same state dir, resubmit the same spec, and
//! the report comes back byte-identical with the finished cells restored
//! instead of re-run.

use std::io::Write;
use std::path::PathBuf;

use dirca_experiments::cli::Flags;
use dirca_serve::{Duration, Server, ServerConfig};

fn main() {
    let flags = Flags::from_env();
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        listen: flags.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        state_dir: flags
            .get("state-dir")
            .map_or(defaults.state_dir, PathBuf::from),
        queue_cap: flags.get_usize("queue-cap", defaults.queue_cap),
        threads: flags.get_usize("threads", defaults.threads),
        io_timeout: Duration::from_millis(flags.get_u64("io-timeout-ms", 10_000)),
    };
    let mut server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr().unwrap_or_else(|e| {
        eprintln!("cannot read bound address: {e}");
        std::process::exit(1);
    });
    println!("listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("server failed: {e}");
        std::process::exit(1);
    }
}
