//! The service protocol: CRC-framed messages over TCP.
//!
//! Every message is one `dirca_trace::wire` frame — the same magic,
//! version, length-prefix, and CRC32 trailer as the on-disk trace and
//! checkpoint formats, so a network capture is decodable by the same
//! tooling that reads a checkpoint. The conversation:
//!
//! ```text
//! client                               server
//!   SUBMIT(spec) ──────────────────────▶
//!   ◀────────────────── ACCEPT(fingerprint, total)   (or REJECT / BUSY)
//!   ◀────────────────── PROGRESS(done, total, cell, ok, attempts)  ×cells
//!   ◀────────────────── REPORT(text)
//!   ◀────────────────── DONE(executed, restored, failed)
//! ```
//!
//! `PROGRESS` frames double as heartbeats: one arrives after every cell,
//! so a client read timeout generously above the per-cell runtime
//! distinguishes "slow grid" from "dead server". A `SHUTDOWN` frame in
//! place of `SUBMIT` asks the server to exit after `SHUTDOWN_ACK`.

use std::io::{Read, Write};
use std::net::TcpStream;

use dirca_experiments::runner::Cell;
use dirca_mac::Scheme;
use dirca_trace::wire::{
    self, decode_scheme, encode_scheme, Frame, PayloadError, WireError, WireReader, WireWriter,
    HEADER_LEN, TRAILER_LEN,
};

/// Reject codes carried by a `REJECT` frame.
pub mod reject {
    /// The `SUBMIT` payload did not decode as a spec.
    pub const MALFORMED: u8 = 1;
    /// The spec decoded but failed validation.
    pub const INVALID: u8 = 2;
    /// The server could not serve a valid spec (internal error, e.g. an
    /// unreadable state directory) or the conversation broke protocol.
    pub const SERVER: u8 = 3;
}

/// Transport-layer failure: the connection died or carried bytes that are
/// not valid frames.
#[derive(Debug)]
pub enum TransportError {
    /// Socket I/O failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The peer sent bytes that are not a valid frame.
    Wire(WireError),
    /// The peer closed the connection mid-conversation.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "socket error: {e}"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Closed => write!(f, "peer closed the connection mid-conversation"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// A framed TCP connection: reads and writes whole CRC-verified frames,
/// tracking the stream offset so wire errors carry the exact byte
/// position, just like the on-disk decoders.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    read_offset: u64,
}

/// Reads exactly `buf.len()` bytes unless EOF intervenes; returns how
/// many bytes were read (a short count means EOF).
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

impl FrameConn {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        FrameConn {
            stream,
            read_offset: 0,
        }
    }

    /// The underlying stream (for timeouts and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads one frame. `Ok(None)` is a clean EOF *at a frame boundary*;
    /// EOF mid-frame is a typed [`WireError::Truncated`], exactly like a
    /// torn file tail.
    pub fn read_frame(&mut self) -> Result<Option<Frame>, TransportError> {
        let offset = self.read_offset;
        let mut header = [0u8; HEADER_LEN];
        let got = read_full(&mut self.stream, &mut header)?;
        if got == 0 {
            return Ok(None);
        }
        if got < HEADER_LEN {
            return Err(TransportError::Wire(WireError::Truncated {
                offset,
                needed: HEADER_LEN as u64,
                available: got as u64,
            }));
        }
        let (kind, len) = wire::parse_header(&header, offset).map_err(TransportError::Wire)?;
        let mut rest = vec![0u8; len as usize + TRAILER_LEN];
        let got = read_full(&mut self.stream, &mut rest)?;
        if got < rest.len() {
            return Err(TransportError::Wire(WireError::Truncated {
                offset,
                needed: (HEADER_LEN + len as usize + TRAILER_LEN) as u64,
                available: (HEADER_LEN + got) as u64,
            }));
        }
        let payload_end = len as usize;
        let stored = u32::from_le_bytes([
            rest[payload_end],
            rest[payload_end + 1],
            rest[payload_end + 2],
            rest[payload_end + 3],
        ]);
        // The CRC covers version..payload: header minus the magic, plus
        // the payload bytes.
        let mut body = Vec::with_capacity(HEADER_LEN - 4 + payload_end);
        body.extend_from_slice(&header[4..]);
        body.extend_from_slice(&rest[..payload_end]);
        wire::verify_crc(&body, stored, offset).map_err(TransportError::Wire)?;
        self.read_offset += (HEADER_LEN + len as usize + TRAILER_LEN) as u64;
        rest.truncate(payload_end);
        Ok(Some(Frame {
            kind,
            payload: rest,
        }))
    }

    /// Like [`FrameConn::read_frame`], but a clean EOF is also an error —
    /// for conversation points where the peer owes us a frame.
    pub fn expect_frame(&mut self) -> Result<Frame, TransportError> {
        self.read_frame()?.ok_or(TransportError::Closed)
    }

    /// Writes one frame and flushes it.
    pub fn write_frame(&mut self, kind: u8, payload: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(&wire::encode_frame(kind, payload))?;
        self.stream.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Message payload codecs.
// ---------------------------------------------------------------------

/// `ACCEPT`: the server took the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accept {
    /// Fingerprint of the grid (names the server-side checkpoint).
    pub fingerprint: String,
    /// Total cells in the grid.
    pub total: u32,
}

/// Encodes an [`Accept`] payload.
pub fn encode_accept(a: &Accept) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_str(&a.fingerprint);
    w.put_u32(a.total);
    w.into_bytes()
}

/// Decodes an [`Accept`] payload.
pub fn decode_accept(payload: &[u8]) -> Result<Accept, PayloadError> {
    let mut r = WireReader::new(payload);
    let fingerprint = r.take_str()?.to_string();
    let total = r.take_u32()?;
    r.finish()?;
    Ok(Accept { fingerprint, total })
}

/// `REJECT`: the server refused the job with a typed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// One of the [`reject`] codes.
    pub code: u8,
    /// Human-readable diagnosis.
    pub message: String,
}

/// Encodes a [`Reject`] payload.
pub fn encode_reject(code: u8, message: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(code);
    w.put_str(message);
    w.into_bytes()
}

/// Decodes a [`Reject`] payload.
pub fn decode_reject(payload: &[u8]) -> Result<Reject, PayloadError> {
    let mut r = WireReader::new(payload);
    let code = r.take_u8()?;
    let message = r.take_str()?.to_string();
    r.finish()?;
    Ok(Reject { code, message })
}

/// `PROGRESS`: one cell finished (or was restored from the checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub struct Progress {
    /// Cells complete so far (restored + executed).
    pub done: u32,
    /// Total cells in the grid.
    pub total: u32,
    /// The cell that just completed.
    pub cell: Cell,
    /// Whether it produced samples (false: recorded failure).
    pub ok: bool,
    /// Attempts spent this invocation (0 for a restored cell).
    pub attempts: u32,
}

/// Encodes a [`Progress`] payload.
pub fn encode_progress(p: &Progress) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(p.done);
    w.put_u32(p.total);
    w.put_u64(p.cell.n as u64);
    w.put_f64(p.cell.theta);
    w.put_u8(encode_scheme(p.cell.scheme));
    w.put_bool(p.ok);
    w.put_u32(p.attempts);
    w.into_bytes()
}

/// Decodes a [`Progress`] payload.
pub fn decode_progress(payload: &[u8]) -> Result<Progress, PayloadError> {
    let mut r = WireReader::new(payload);
    let done = r.take_u32()?;
    let total = r.take_u32()?;
    let n = r.take_u64()? as usize;
    let theta = r.take_f64()?;
    let scheme: Scheme = decode_scheme(r.take_u8()?, 24)?;
    let ok = r.take_bool()?;
    let attempts = r.take_u32()?;
    r.finish()?;
    Ok(Progress {
        done,
        total,
        cell: Cell { n, theta, scheme },
        ok,
        attempts,
    })
}

/// `DONE`: the terminal summary after the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Done {
    /// Cells executed this run.
    pub executed: u32,
    /// Cells restored from the checkpoint.
    pub restored: u32,
    /// Cells that ended in a recorded failure.
    pub failed: u32,
}

/// Encodes a [`Done`] payload.
pub fn encode_done(d: &Done) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(d.executed);
    w.put_u32(d.restored);
    w.put_u32(d.failed);
    w.into_bytes()
}

/// Decodes a [`Done`] payload.
pub fn decode_done(payload: &[u8]) -> Result<Done, PayloadError> {
    let mut r = WireReader::new(payload);
    let done = Done {
        executed: r.take_u32()?,
        restored: r.take_u32()?,
        failed: r.take_u32()?,
    };
    r.finish()?;
    Ok(done)
}

/// Encodes a `REPORT` payload (the rendered report text).
pub fn encode_report(text: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_str(text);
    w.into_bytes()
}

/// Decodes a `REPORT` payload.
pub fn decode_report(payload: &[u8]) -> Result<String, PayloadError> {
    let mut r = WireReader::new(payload);
    let text = r.take_str()?.to_string();
    r.finish()?;
    Ok(text)
}

/// Encodes a `BUSY` payload: how many submissions are already waiting.
pub fn encode_busy(pending: u32) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(pending);
    w.into_bytes()
}

/// Decodes a `BUSY` payload.
pub fn decode_busy(payload: &[u8]) -> Result<u32, PayloadError> {
    let mut r = WireReader::new(payload);
    let pending = r.take_u32()?;
    r.finish()?;
    Ok(pending)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_payloads_round_trip() {
        let a = Accept {
            fingerprint: "0123456789abcdef".into(),
            total: 27,
        };
        assert_eq!(decode_accept(&encode_accept(&a)).unwrap(), a);

        let rej = Reject {
            code: reject::INVALID,
            message: "invalid spec: fer must be in [0, 1)".into(),
        };
        assert_eq!(
            decode_reject(&encode_reject(rej.code, &rej.message)).unwrap(),
            rej
        );

        let p = Progress {
            done: 3,
            total: 27,
            cell: Cell {
                n: 5,
                theta: 150.0,
                scheme: Scheme::DrtsOcts,
            },
            ok: true,
            attempts: 2,
        };
        assert_eq!(decode_progress(&encode_progress(&p)).unwrap(), p);

        let d = Done {
            executed: 20,
            restored: 7,
            failed: 1,
        };
        assert_eq!(decode_done(&encode_done(&d)).unwrap(), d);

        assert_eq!(
            decode_report(&encode_report("Fig. 6 …\n")).unwrap(),
            "Fig. 6 …\n"
        );
        assert_eq!(decode_busy(&encode_busy(4)).unwrap(), 4);
    }

    #[test]
    fn garbage_message_payloads_are_typed_errors() {
        assert!(decode_accept(&[1, 2]).is_err());
        assert!(decode_reject(&[]).is_err());
        assert!(decode_progress(&[0xAB; 7]).is_err());
        assert!(decode_done(&[0; 13]).is_err(), "trailing bytes refused");
        assert!(
            decode_report(&[9, 0, 0, 0]).is_err(),
            "short string refused"
        );
        assert!(decode_busy(&[]).is_err());
    }
}
