//! End-to-end drills for the scenario service: the served report is
//! byte-identical to the batch harness's, malformed input gets typed
//! rejects (never a crash), a `SIGKILL` mid-grid resumes to the same
//! bytes, overload is shed with `BUSY`, and shutdown is acknowledged.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dirca_experiments::report::render_combined;
use dirca_experiments::ringsim::RingOutcome;
use dirca_experiments::runner::{grid_fingerprint, run_grid, RunnerConfig};
use dirca_serve::proto::{decode_busy, decode_reject, reject, FrameConn};
use dirca_serve::{client, ClientConfig, ScenarioSpec, Served};
use dirca_trace::wire::kind;

/// A tiny 3-cell grid that completes in well under a second.
fn quick_spec() -> ScenarioSpec {
    ScenarioSpec {
        seed: 7,
        topologies: 2,
        measure_ms: 60,
        warmup_ms: 10,
        densities: vec![3],
        beamwidths: vec![90.0],
        fer: 0.0,
        retries: 1,
        events_budget: 0,
        inject_panic: None,
    }
}

/// An 18-cell grid with a long enough measure window (seconds of wall
/// time) that a drill can reliably interrupt it partway through.
fn wide_spec() -> ScenarioSpec {
    ScenarioSpec {
        topologies: 2,
        measure_ms: 1_500,
        densities: vec![3, 5],
        beamwidths: vec![30.0, 90.0, 150.0],
        ..quick_spec()
    }
}

/// What `paper_grid` would print (minus the trailing newline `println!`
/// adds) for the same parameters: the byte-identity oracle.
fn batch_report(spec: &ScenarioSpec) -> String {
    let scale = spec.scale(2);
    let run = run_grid(
        &scale,
        &RunnerConfig {
            threads: 2,
            ..RunnerConfig::default()
        },
    )
    .unwrap();
    let completed: Vec<_> = run
        .outcomes
        .iter()
        .filter_map(|o| {
            o.result.as_ref().ok().map(|s| {
                (
                    o.cell.n,
                    o.cell.theta,
                    o.cell.scheme,
                    RingOutcome::from_samples(s),
                )
            })
        })
        .collect();
    render_combined(&scale, &completed)
}

fn state_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dirca_serve_{}_{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn start(state_dir: &std::path::Path, queue_cap: usize) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dirca-serve"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--state-dir",
                state_dir.to_str().unwrap(),
                "--queue-cap",
                &queue_cap.to_string(),
                "--threads",
                "2",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .unwrap();
        let stdout = child.stdout.take().unwrap();
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self) -> ClientConfig {
        ClientConfig::to(self.addr.clone())
    }

    /// A raw framed connection, bypassing the client's protocol logic.
    fn raw_conn(&self) -> FrameConn {
        let stream = TcpStream::connect(&self.addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(60_000)))
            .unwrap();
        stream
            .set_write_timeout(Some(Duration::from_millis(60_000)))
            .unwrap();
        FrameConn::new(stream)
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn expect_done(
    served: Served,
) -> (
    String,
    dirca_serve::proto::Done,
    Vec<dirca_serve::proto::Progress>,
) {
    match served {
        Served::Done {
            report,
            summary,
            progress,
        } => (report, summary, progress),
        Served::Rejected(r) => panic!("unexpected reject: {} ({})", r.message, r.code),
    }
}

#[test]
fn served_report_is_byte_identical_to_the_batch_harness() {
    let dir = state_dir("identity");
    let srv = ServerProc::start(&dir, 4);
    let spec = quick_spec();

    let (report, summary, progress) = expect_done(client::submit(&spec, &srv.client()).unwrap());
    assert_eq!(
        report,
        batch_report(&spec),
        "served report must match batch bytes"
    );
    assert_eq!(summary.executed, 3);
    assert_eq!(summary.restored, 0);
    assert_eq!(summary.failed, 0);
    assert_eq!(progress.len(), 3);
    assert_eq!(progress.last().unwrap().done, 3);
    assert_eq!(progress.last().unwrap().total, 3);

    // Resubmitting the same spec restores every cell from the checkpoint
    // and still produces the same bytes.
    let (again, summary, _) = expect_done(client::submit(&spec, &srv.client()).unwrap());
    assert_eq!(again, report);
    assert_eq!(summary.executed, 0);
    assert_eq!(summary.restored, 3);
}

#[test]
fn malformed_and_invalid_submissions_get_typed_rejects_and_the_server_survives() {
    let dir = state_dir("rejects");
    let srv = ServerProc::start(&dir, 4);

    // Garbage SUBMIT payload: undecodable spec -> MALFORMED.
    let mut conn = srv.raw_conn();
    conn.write_frame(kind::SUBMIT, &[0xFF; 21]).unwrap();
    let frame = conn.expect_frame().unwrap();
    assert_eq!(frame.kind, kind::REJECT);
    let r = decode_reject(&frame.payload).unwrap();
    assert_eq!(r.code, reject::MALFORMED, "{}", r.message);
    assert!(r.message.contains("undecodable spec"), "{}", r.message);

    // Well-formed but out-of-range spec -> INVALID, with the field named.
    let bad = ScenarioSpec {
        fer: 0.999_999,
        topologies: usize::MAX,
        ..quick_spec()
    };
    match client::submit(&bad, &srv.client()).unwrap() {
        Served::Rejected(r) => {
            assert_eq!(r.code, reject::INVALID, "{}", r.message);
            assert!(r.message.contains("topologies"), "{}", r.message);
        }
        Served::Done { .. } => panic!("invalid spec must be rejected"),
    }

    // A frame kind that is not SUBMIT or SHUTDOWN -> SERVER reject.
    let mut conn = srv.raw_conn();
    conn.write_frame(kind::RECORD, &[]).unwrap();
    let frame = conn.expect_frame().unwrap();
    assert_eq!(frame.kind, kind::REJECT);
    assert_eq!(decode_reject(&frame.payload).unwrap().code, reject::SERVER);

    // After all that abuse the server still serves real work.
    let (report, _, _) = expect_done(client::submit(&quick_spec(), &srv.client()).unwrap());
    assert_eq!(report, batch_report(&quick_spec()));
}

#[test]
fn sigkill_mid_grid_restarts_and_resumes_to_identical_bytes() {
    let dir = state_dir("sigkill");
    let spec = wide_spec();
    let fingerprint;
    {
        let mut srv = ServerProc::start(&dir, 4);
        let mut conn = srv.raw_conn();
        conn.write_frame(kind::SUBMIT, &spec.encode()).unwrap();
        let accept = conn.expect_frame().unwrap();
        assert_eq!(accept.kind, kind::ACCEPT);
        let accept = dirca_serve::proto::decode_accept(&accept.payload).unwrap();
        fingerprint = accept.fingerprint.clone();
        assert_eq!(accept.total, 18);
        // Let two cells complete (each durable before its heartbeat),
        // then kill the server dead — no signal handler, no cleanup.
        for _ in 0..2 {
            let frame = conn.expect_frame().unwrap();
            assert_eq!(frame.kind, kind::PROGRESS);
        }
        srv.child.kill().unwrap();
    }
    assert!(
        dir.join(format!("{fingerprint}.ckpt")).exists(),
        "killed server must leave its checkpoint behind"
    );

    // A fresh server on the same state dir restores the finished cells
    // and the report comes out byte-identical to an uninterrupted run.
    let srv = ServerProc::start(&dir, 4);
    let (report, summary, _) = expect_done(client::submit(&spec, &srv.client()).unwrap());
    assert_eq!(report, batch_report(&spec));
    assert!(
        summary.restored >= 2,
        "expected the killed run's cells to be restored, got {summary:?}"
    );
    assert_eq!(summary.restored + summary.executed, 18);
    assert_eq!(grid_fingerprint(&spec.scale(2)), fingerprint);
}

#[test]
fn overload_is_shed_with_a_busy_frame_mid_run() {
    let dir = state_dir("busy");
    let srv = ServerProc::start(&dir, 0); // queue capacity zero: shed everything
    let spec = wide_spec();

    let mut running = srv.raw_conn();
    running.write_frame(kind::SUBMIT, &spec.encode()).unwrap();
    assert_eq!(running.expect_frame().unwrap().kind, kind::ACCEPT);
    assert_eq!(running.expect_frame().unwrap().kind, kind::PROGRESS);

    // A second submission while the grid runs is shed between cells.
    let mut shed = srv.raw_conn();
    shed.write_frame(kind::SUBMIT, &quick_spec().encode())
        .unwrap();
    let frame = shed.expect_frame().unwrap();
    assert_eq!(frame.kind, kind::BUSY);
    assert_eq!(decode_busy(&frame.payload).unwrap(), 0);

    // The running conversation is unaffected: drain it to DONE.
    loop {
        let frame = running.expect_frame().unwrap();
        if frame.kind == kind::DONE {
            break;
        }
        assert!(
            frame.kind == kind::PROGRESS || frame.kind == kind::REPORT,
            "unexpected frame kind {:#04x}",
            frame.kind
        );
    }
}

#[test]
fn shutdown_is_acknowledged_and_exits_cleanly() {
    let dir = state_dir("shutdown");
    let mut srv = ServerProc::start(&dir, 4);
    client::shutdown(&srv.client()).unwrap();
    let status = srv.child.wait().unwrap();
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status}"
    );
}
