//! Command-line client for `dirca-serve`.
//!
//! ```text
//! serve_client --addr HOST:PORT [--seed S] [--topologies T]
//!              [--measure-ms MS] [--warmup-ms MS] [--n CSV] [--theta CSV]
//!              [--fer RATE] [--retries R] [--events-budget E]
//!              [--attempts A] [--backoff-ms B] [--quiet] [--no-validate]
//!              [--shutdown]
//! ```
//!
//! Submits one scenario, streams progress to stderr, and prints the
//! report on stdout — byte-identical to `paper_grid` run with the same
//! parameters. With `--shutdown` it instead asks the server to exit.
//!
//! Exit codes: 0 all cells succeeded; 1 the grid completed with failed
//! cells; 2 usage error; 3 the server rejected the spec; 4 transport or
//! protocol failure.

use dirca_experiments::cli::Flags;
use dirca_serve::{client, ClientConfig, Duration, ScenarioSpec, Served};

fn parse_csv<T: std::str::FromStr>(flags: &Flags, name: &str, default: Vec<T>) -> Vec<T> {
    match flags.get(name) {
        None => default,
        Some(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim().parse().unwrap_or_else(|_| {
                    eprintln!("--{name}: cannot parse {tok:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}

fn main() {
    let flags = Flags::from_env();
    let Some(addr) = flags.get("addr") else {
        eprintln!("usage: serve_client --addr HOST:PORT [spec flags] [--shutdown]");
        std::process::exit(2);
    };
    let mut config = ClientConfig::to(addr);
    config.attempts = u32::try_from(flags.get_usize("attempts", 5)).unwrap_or(u32::MAX);
    config.backoff_base_ms = flags.get_u64("backoff-ms", 50);
    config.io_timeout = Duration::from_millis(flags.get_u64("io-timeout-ms", 60_000));

    if flags.has("shutdown") {
        if let Err(e) = client::shutdown(&config) {
            eprintln!("{e}");
            std::process::exit(4);
        }
        eprintln!("server acknowledged shutdown");
        return;
    }

    let defaults = ScenarioSpec::default();
    let spec = ScenarioSpec {
        seed: flags.get_u64("seed", defaults.seed),
        topologies: flags.get_usize("topologies", defaults.topologies),
        measure_ms: flags.get_u64("measure-ms", defaults.measure_ms),
        warmup_ms: flags.get_u64("warmup-ms", defaults.warmup_ms),
        densities: parse_csv(&flags, "n", defaults.densities),
        beamwidths: parse_csv(&flags, "theta", defaults.beamwidths),
        fer: flags.get_f64("fer", defaults.fer),
        retries: u32::try_from(flags.get_usize("retries", 1)).unwrap_or(u32::MAX),
        events_budget: flags.get_u64("events-budget", defaults.events_budget),
        inject_panic: None,
    };
    // Client-side validation catches bad flags before a round-trip; the
    // server re-validates regardless (it trusts no client). `--no-validate`
    // skips the local check so reject drills can exercise the server side.
    if !flags.has("no-validate") {
        if let Err(e) = spec.validate() {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let quiet = flags.has("quiet");
    match client::submit(&spec, &config) {
        Ok(Served::Done {
            report,
            summary,
            progress,
        }) => {
            if !quiet {
                for p in &progress {
                    eprintln!(
                        "[{}/{}] n={} theta={} {:?}: {} ({} attempts)",
                        p.done,
                        p.total,
                        p.cell.n,
                        p.cell.theta,
                        p.cell.scheme,
                        if p.ok { "ok" } else { "FAILED" },
                        p.attempts
                    );
                }
            }
            eprintln!(
                "done: {} executed, {} restored, {} failed",
                summary.executed, summary.restored, summary.failed
            );
            println!("{report}");
            if summary.failed > 0 {
                std::process::exit(1);
            }
        }
        Ok(Served::Rejected(reject)) => {
            eprintln!("rejected (code {}): {}", reject.code, reject.message);
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(4);
        }
    }
}
