//! Normalized headings and validated antenna beamwidths.

use std::error::Error;
use std::f64::consts::{PI, TAU};
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A heading on the plane, normalized to the half-open interval `(-π, π]`.
///
/// Angles are measured counter-clockwise from the positive x-axis, matching
/// the convention of [`f64::atan2`].
///
/// # Example
///
/// ```
/// use dirca_geometry::Angle;
///
/// let a = Angle::from_degrees(350.0);
/// assert!((a.degrees() - -10.0).abs() < 1e-9);
/// let b = a + Angle::from_degrees(20.0);
/// assert!((b.degrees() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Angle {
    radians: f64,
}

impl Angle {
    /// The zero angle (positive x-axis).
    pub const ZERO: Angle = Angle { radians: 0.0 };

    /// Creates an angle from radians, normalizing into `(-π, π]`.
    pub fn from_radians(radians: f64) -> Self {
        Angle {
            radians: normalize_radians(radians),
        }
    }

    /// Creates an angle from degrees, normalizing into `(-180°, 180°]`.
    pub fn from_degrees(degrees: f64) -> Self {
        Self::from_radians(degrees.to_radians())
    }

    /// The normalized value in radians, in `(-π, π]`.
    pub fn radians(self) -> f64 {
        self.radians
    }

    /// The normalized value in degrees, in `(-180, 180]`.
    pub fn degrees(self) -> f64 {
        self.radians.to_degrees()
    }

    /// Absolute angular separation from `other`, in `[0, π]`.
    ///
    /// This is the quantity compared against half the beamwidth when deciding
    /// whether a direction falls inside an antenna beam.
    pub fn separation(self, other: Angle) -> f64 {
        let d = (self.radians - other.radians).abs() % TAU;
        if d > PI {
            TAU - d
        } else {
            d
        }
    }

    /// The heading pointing the opposite way.
    pub fn opposite(self) -> Angle {
        Angle::from_radians(self.radians + PI)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.degrees())
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.radians + rhs.radians)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, rhs: Angle) -> Angle {
        Angle::from_radians(self.radians - rhs.radians)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle::from_radians(-self.radians)
    }
}

fn normalize_radians(mut r: f64) -> f64 {
    if !r.is_finite() {
        // Propagate NaN; callers validating input should never reach this.
        return f64::NAN;
    }
    r %= TAU;
    if r <= -PI {
        r += TAU;
    } else if r > PI {
        r -= TAU;
    }
    r
}

/// An antenna beamwidth θ, validated to lie in `(0, 2π]`.
///
/// The paper sweeps θ from 15° to 180°; 360° (`2π`) degenerates to an
/// omni-directional pattern and is allowed so that the directional formulas
/// can be checked against their omni-directional limits.
///
/// # Example
///
/// ```
/// use dirca_geometry::Beamwidth;
///
/// let theta = Beamwidth::from_degrees(30.0)?;
/// assert!((theta.fraction_of_circle() - 30.0 / 360.0).abs() < 1e-12);
/// assert!(Beamwidth::from_degrees(0.0).is_err());
/// assert!(Beamwidth::from_degrees(400.0).is_err());
/// # Ok::<(), dirca_geometry::BeamwidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Beamwidth {
    radians: f64,
}

/// Error returned when constructing a [`Beamwidth`] outside `(0, 2π]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamwidthError {
    _priv: (),
}

impl fmt::Display for BeamwidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "beamwidth must lie in (0, 2π] radians")
    }
}

impl Error for BeamwidthError {}

impl Beamwidth {
    /// The full circle (omni-directional pattern expressed as a beamwidth).
    pub const OMNI: Beamwidth = Beamwidth { radians: TAU };

    /// Creates a beamwidth from radians.
    ///
    /// # Errors
    ///
    /// Returns [`BeamwidthError`] unless `0 < radians <= 2π`.
    pub fn from_radians(radians: f64) -> Result<Self, BeamwidthError> {
        if radians.is_finite() && radians > 0.0 && radians <= TAU + 1e-12 {
            Ok(Beamwidth {
                radians: radians.min(TAU),
            })
        } else {
            Err(BeamwidthError { _priv: () })
        }
    }

    /// Creates a beamwidth from degrees.
    ///
    /// # Errors
    ///
    /// Returns [`BeamwidthError`] unless `0 < degrees <= 360`.
    pub fn from_degrees(degrees: f64) -> Result<Self, BeamwidthError> {
        Self::from_radians(degrees.to_radians())
    }

    /// The beamwidth in radians, in `(0, 2π]`.
    pub fn radians(self) -> f64 {
        self.radians
    }

    /// The beamwidth in degrees, in `(0, 360]`.
    pub fn degrees(self) -> f64 {
        self.radians.to_degrees()
    }

    /// Half of the beamwidth in radians — the maximum angular separation
    /// from boresight that is still covered.
    pub fn half_radians(self) -> f64 {
        self.radians / 2.0
    }

    /// θ / 2π — the fraction of the full circle covered by the beam.
    ///
    /// In the analytical model this scales both sector areas and the
    /// probability `p' = p·θ/2π` that a random transmission points at a
    /// particular victim.
    pub fn fraction_of_circle(self) -> f64 {
        self.radians / TAU
    }

    /// Whether this beamwidth is the degenerate omni-directional pattern.
    pub fn is_omni(self) -> bool {
        self.radians >= TAU
    }

    /// Whether a direction separated from boresight by `separation` radians
    /// (in `[0, π]`) is inside the beam.
    pub fn covers_separation(self, separation: f64) -> bool {
        separation <= self.half_radians() + 1e-12
    }
}

impl fmt::Display for Beamwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ={:.1}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_wraps_into_half_open_interval() {
        assert!((Angle::from_degrees(540.0).degrees() - 180.0).abs() < 1e-9);
        assert!((Angle::from_degrees(-540.0).degrees() - 180.0).abs() < 1e-9);
        assert!((Angle::from_degrees(720.0).degrees()).abs() < 1e-9);
    }

    #[test]
    fn negative_pi_maps_to_positive_pi() {
        let a = Angle::from_radians(-PI);
        assert!((a.radians() - PI).abs() < 1e-12);
    }

    #[test]
    fn separation_is_symmetric_and_bounded() {
        let a = Angle::from_degrees(170.0);
        let b = Angle::from_degrees(-170.0);
        assert!((a.separation(b) - 20.0_f64.to_radians()).abs() < 1e-9);
        assert!((b.separation(a) - a.separation(b)).abs() < 1e-12);
    }

    #[test]
    fn separation_of_opposites_is_pi() {
        let a = Angle::from_degrees(45.0);
        assert!((a.separation(a.opposite()) - PI).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Angle::from_degrees(170.0) + Angle::from_degrees(20.0);
        assert!((a.degrees() - -170.0).abs() < 1e-9);
        let b = Angle::from_degrees(-170.0) - Angle::from_degrees(20.0);
        assert!((b.degrees() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn beamwidth_validation() {
        assert!(Beamwidth::from_degrees(0.0).is_err());
        assert!(Beamwidth::from_degrees(-10.0).is_err());
        assert!(Beamwidth::from_degrees(361.0).is_err());
        assert!(Beamwidth::from_degrees(f64::NAN).is_err());
        assert!(Beamwidth::from_degrees(360.0).is_ok());
        assert!(Beamwidth::from_degrees(15.0).is_ok());
    }

    #[test]
    fn beamwidth_error_displays() {
        let err = Beamwidth::from_degrees(0.0).unwrap_err();
        assert!(format!("{err}").contains("beamwidth"));
    }

    #[test]
    fn omni_covers_everything() {
        assert!(Beamwidth::OMNI.is_omni());
        assert!(Beamwidth::OMNI.covers_separation(PI));
        assert!((Beamwidth::OMNI.fraction_of_circle() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrow_beam_covers_only_near_boresight() {
        let theta = Beamwidth::from_degrees(30.0).unwrap();
        assert!(theta.covers_separation(14.0_f64.to_radians()));
        assert!(!theta.covers_separation(16.0_f64.to_radians()));
        assert!(!theta.is_omni());
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!format!("{}", Angle::ZERO).is_empty());
        assert!(!format!("{}", Beamwidth::OMNI).is_empty());
    }
}
