//! Transmission disks and the circle-overlap functions of the analytical
//! model.

use std::fmt;

use crate::Point;

/// A disk on the plane — typically a node's transmission/reception region.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Circle, Point};
///
/// let c = Circle::new(Point::ORIGIN, 1.0);
/// assert!(c.contains(Point::new(0.5, 0.5)));
/// assert!(!c.contains(Point::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Radius of the disk; must be non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a disk from center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether `p` lies inside or on the boundary of the disk.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_squared(p) <= self.radius * self.radius + crate::EPSILON
    }

    /// Area of the intersection of this disk with `other`.
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        lens_area(
            self.radius,
            other.radius,
            self.center.distance(other.center),
        )
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle(center={}, r={:.4})", self.center, self.radius)
    }
}

/// The Takagi–Kleinrock helper `q(t) = arccos(t) − t·√(1 − t²)`.
///
/// For two unit circles whose centers are `2t` apart (`0 ≤ t ≤ 1`), the area
/// of their intersection is `2·q(t)`. The paper uses it to express the hidden
/// area `B(r)`; see [`hidden_area`].
///
/// # Panics
///
/// Panics if `t` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dirca_geometry::q;
///
/// // Coincident circles: q(0) = π/2, so the lens is the full circle π·R².
/// assert!((q(0.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// // Tangent circles: no overlap.
/// assert!(q(1.0).abs() < 1e-12);
/// ```
pub fn q(t: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&t),
        "q(t) requires 0 <= t <= 1, got {t}"
    );
    t.acos() - t * (1.0 - t * t).sqrt()
}

/// The hidden-terminal area `B(r) = πR² − 2R²·q(r/2R)` of the paper.
///
/// `B(r)` is the region that can interfere with a receiver at distance `r`
/// from the sender but is outside the sender's hearing range — the shaded
/// area of Fig. 2 in the paper.
///
/// # Panics
///
/// Panics if `r` is outside `[0, 2R]` or `range` is not positive.
///
/// # Example
///
/// ```
/// use dirca_geometry::hidden_area;
///
/// // Sender and receiver co-located: nothing is hidden.
/// assert!(hidden_area(0.0, 1.0).abs() < 1e-12);
/// // Receiver at the edge of range: a large crescent is hidden.
/// let b = hidden_area(1.0, 1.0);
/// assert!(b > 0.0 && b < std::f64::consts::PI);
/// ```
pub fn hidden_area(r: f64, range: f64) -> f64 {
    assert!(range > 0.0, "range must be positive, got {range}");
    assert!(
        (0.0..=2.0 * range).contains(&r),
        "receiver distance {r} outside [0, 2·range]"
    );
    let rr = range * range;
    std::f64::consts::PI * rr - 2.0 * rr * q(r / (2.0 * range))
}

/// Area of the intersection ("lens") of two disks with radii `r1`, `r2`
/// whose centers are `d` apart.
///
/// Handles all degenerate cases: disjoint disks give `0`, containment gives
/// the smaller disk's area.
///
/// # Panics
///
/// Panics if any argument is negative or not finite.
pub fn lens_area(r1: f64, r2: f64, d: f64) -> f64 {
    assert!(
        r1 >= 0.0 && r2 >= 0.0 && d >= 0.0 && r1.is_finite() && r2.is_finite() && d.is_finite(),
        "lens_area arguments must be finite and non-negative"
    );
    if d >= r1 + r2 {
        return 0.0;
    }
    let (small, large) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    if d <= large - small {
        return std::f64::consts::PI * small * small;
    }
    // Standard two-circle lens formula.
    let d2 = d * d;
    let r1_2 = r1 * r1;
    let r2_2 = r2 * r2;
    let alpha = ((d2 + r1_2 - r2_2) / (2.0 * d * r1))
        .clamp(-1.0, 1.0)
        .acos();
    let beta = ((d2 + r2_2 - r1_2) / (2.0 * d * r2))
        .clamp(-1.0, 1.0)
        .acos();
    let tri = 0.5
        * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
            .max(0.0)
            .sqrt();
    (r1_2 * alpha + r2_2 * beta - tri).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn q_endpoints() {
        assert!((q(0.0) - PI / 2.0).abs() < 1e-12);
        assert!(q(1.0).abs() < 1e-12);
    }

    #[test]
    fn q_is_decreasing() {
        let mut prev = q(0.0);
        for i in 1..=100 {
            let t = i as f64 / 100.0;
            let cur = q(t);
            assert!(cur <= prev + 1e-12, "q not decreasing at t={t}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "q(t) requires")]
    fn q_rejects_out_of_range() {
        let _ = q(1.5);
    }

    #[test]
    fn hidden_area_limits() {
        // r = 0: circles coincide, hidden area 0.
        assert!(hidden_area(0.0, 1.0).abs() < 1e-12);
        // r = 2R: circles tangent, hidden area is the whole receiver disk.
        assert!((hidden_area(2.0, 1.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn hidden_area_equals_circle_minus_lens() {
        // B(r) must equal πR² − lens(R, R, r).
        for &r in &[0.1, 0.5, 0.9, 1.0, 1.5] {
            let direct = hidden_area(r, 1.0);
            let via_lens = PI - lens_area(1.0, 1.0, r);
            assert!(
                (direct - via_lens).abs() < 1e-9,
                "mismatch at r={r}: {direct} vs {via_lens}"
            );
        }
    }

    #[test]
    fn hidden_area_scales_with_range_squared() {
        let b1 = hidden_area(0.6, 1.0);
        let b2 = hidden_area(1.2, 2.0);
        assert!((b2 - 4.0 * b1).abs() < 1e-9);
    }

    #[test]
    fn lens_disjoint_is_zero() {
        assert_eq!(lens_area(1.0, 1.0, 2.5), 0.0);
        assert_eq!(lens_area(1.0, 1.0, 2.0), 0.0);
    }

    #[test]
    fn lens_containment_is_smaller_disk() {
        assert!((lens_area(1.0, 3.0, 1.0) - PI).abs() < 1e-12);
        assert!((lens_area(3.0, 1.0, 0.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn lens_is_symmetric_in_radii() {
        assert!((lens_area(1.0, 2.0, 1.5) - lens_area(2.0, 1.0, 1.5)).abs() < 1e-12);
    }

    #[test]
    fn lens_equal_circles_matches_q() {
        for &d in &[0.0, 0.4, 1.0, 1.6, 2.0] {
            let lens = lens_area(1.0, 1.0, d);
            let via_q = 2.0 * q(d / 2.0);
            assert!((lens - via_q).abs() < 1e-9, "mismatch at d={d}");
        }
    }

    #[test]
    fn circle_contains_and_area() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 3.0)));
        assert!(!c.contains(Point::new(1.0, 3.1)));
        assert!((c.area() - 4.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn circle_intersection_area_uses_lens() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        assert!((a.intersection_area(&b) - lens_area(1.0, 1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn circle_rejects_negative_radius() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Circle::new(Point::ORIGIN, 1.0)).is_empty());
    }
}
