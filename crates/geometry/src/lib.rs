//! Planar geometry for the analysis and simulation of collision-avoidance
//! MAC protocols with directional antennas.
//!
//! This crate provides the geometric substrate used by the reproduction of
//! Wang & Garcia-Luna-Aceves, *Collision Avoidance in Single-Channel Ad Hoc
//! Networks Using Directional Antennas* (ICDCS 2003):
//!
//! * [`Point`] / [`Vec2`] — points and displacement vectors on the plane.
//! * [`Angle`] and [`Beamwidth`] — normalized headings and validated antenna
//!   beamwidths.
//! * [`Sector`] — an ideal antenna beam: apex, boresight, beamwidth, range.
//! * [`Circle`] — transmission disks, including the Takagi–Kleinrock overlap
//!   helper [`q`] and the hidden-area function [`hidden_area`].
//! * [`paper`] — the normalized interference areas `S_I … S_V` from Section 2
//!   of the paper, for the DRTS-DCTS and DRTS-OCTS schemes.
//! * [`sample`] — uniform random sampling of disks, rings, and sectors.
//!
//! # Example
//!
//! ```
//! use dirca_geometry::{Point, Sector, Beamwidth, Angle};
//!
//! // A node at the origin beaming due east with a 30-degree beam and unit range
//! // covers a point 0.5 away on its boresight, but not a point behind it.
//! let beam = Sector::new(
//!     Point::new(0.0, 0.0),
//!     Angle::from_degrees(0.0),
//!     Beamwidth::from_degrees(30.0).unwrap(),
//!     1.0,
//! );
//! assert!(beam.contains(Point::new(0.5, 0.0)));
//! assert!(!beam.contains(Point::new(-0.5, 0.0)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]
// The engine never indexes unchecked: feasible here, so gate it.
#![warn(clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::indexing_slicing))]

mod angle;
mod circle;
mod point;
mod sector;

pub mod paper;
pub mod sample;

pub use angle::{Angle, Beamwidth, BeamwidthError};
pub use circle::{hidden_area, lens_area, q, Circle};
pub use point::{Point, Vec2};
pub use sector::Sector;

/// Relative tolerance used by the geometric routines in this crate when
/// comparing floating-point areas and angles.
pub const EPSILON: f64 = 1e-12;
