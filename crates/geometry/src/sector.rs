//! Ideal antenna beams modeled as circular sectors.

use std::fmt;

use crate::{Angle, Beamwidth, Point};

/// An ideal antenna beam: a circular sector with apex at the transmitter,
/// boresight direction, beamwidth, and range.
///
/// The paper's antenna model assumes complete attenuation outside the
/// beamwidth and equal gain inside it, so beam coverage reduces to sector
/// containment.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Angle, Beamwidth, Point, Sector};
///
/// let tx = Point::ORIGIN;
/// let rx = Point::new(0.8, 0.1);
/// let beam = Sector::aimed_at(tx, rx, Beamwidth::from_degrees(60.0)?, 1.0);
/// assert!(beam.contains(rx));
/// # Ok::<(), dirca_geometry::BeamwidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sector {
    apex: Point,
    boresight: Angle,
    beamwidth: Beamwidth,
    range: f64,
}

impl Sector {
    /// Creates a sector from apex, boresight direction, beamwidth, and range.
    ///
    /// # Panics
    ///
    /// Panics if `range` is negative or not finite.
    pub fn new(apex: Point, boresight: Angle, beamwidth: Beamwidth, range: f64) -> Self {
        assert!(
            range.is_finite() && range >= 0.0,
            "sector range must be finite and non-negative, got {range}"
        );
        Sector {
            apex,
            boresight,
            beamwidth,
            range,
        }
    }

    /// Creates a sector whose boresight points from `apex` toward `target`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is negative or not finite.
    pub fn aimed_at(apex: Point, target: Point, beamwidth: Beamwidth, range: f64) -> Self {
        Self::new(apex, apex.heading_to(target), beamwidth, range)
    }

    /// The apex (transmitter position).
    pub fn apex(&self) -> Point {
        self.apex
    }

    /// The boresight heading.
    pub fn boresight(&self) -> Angle {
        self.boresight
    }

    /// The beamwidth θ.
    pub fn beamwidth(&self) -> Beamwidth {
        self.beamwidth
    }

    /// The sector radius (transmission range).
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Area of the sector, `θ/2 · range²`.
    pub fn area(&self) -> f64 {
        0.5 * self.beamwidth.radians() * self.range * self.range
    }

    /// Whether point `p` is covered by the beam (inside both the range disk
    /// and the angular aperture). The apex itself is covered.
    pub fn contains(&self, p: Point) -> bool {
        let d2 = self.apex.distance_squared(p);
        if d2 > self.range * self.range + crate::EPSILON {
            return false;
        }
        if d2 <= crate::EPSILON {
            return true;
        }
        let sep = self.boresight.separation(self.apex.heading_to(p));
        self.beamwidth.covers_separation(sep)
    }
}

impl fmt::Display for Sector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sector(apex={}, boresight={}, {}, r={:.4})",
            self.apex, self.boresight, self.beamwidth, self.range
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beam(deg: f64) -> Beamwidth {
        Beamwidth::from_degrees(deg).unwrap()
    }

    #[test]
    fn contains_respects_range() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, beam(90.0), 1.0);
        assert!(s.contains(Point::new(0.99, 0.0)));
        assert!(!s.contains(Point::new(1.01, 0.0)));
    }

    #[test]
    fn contains_respects_aperture() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, beam(90.0), 1.0);
        // 44° off boresight: inside; 46°: outside.
        assert!(s.contains(Point::ORIGIN.offset(Angle::from_degrees(44.0), 0.5)));
        assert!(!s.contains(Point::ORIGIN.offset(Angle::from_degrees(46.0), 0.5)));
    }

    #[test]
    fn apex_is_contained() {
        let s = Sector::new(Point::new(2.0, 3.0), Angle::ZERO, beam(15.0), 1.0);
        assert!(s.contains(Point::new(2.0, 3.0)));
    }

    #[test]
    fn aimed_at_covers_target_within_range() {
        let tx = Point::new(1.0, -1.0);
        let rx = Point::new(1.5, -0.3);
        let s = Sector::aimed_at(tx, rx, beam(15.0), 1.0);
        assert!(s.contains(rx));
    }

    #[test]
    fn omni_sector_is_a_disk() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, Beamwidth::OMNI, 1.0);
        for deg in (0..360).step_by(17) {
            let p = Point::ORIGIN.offset(Angle::from_degrees(deg as f64), 0.9);
            assert!(s.contains(p), "omni beam missed {deg}°");
        }
        assert!((s.area() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn area_matches_fraction_of_disk() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, beam(90.0), 2.0);
        let disk = std::f64::consts::PI * 4.0;
        assert!((s.area() - disk / 4.0).abs() < 1e-12);
    }

    #[test]
    fn beam_wrap_around_negative_x_axis() {
        // Boresight at 180°: points slightly above/below the negative x-axis
        // must be covered even though their headings straddle the ±π seam.
        let s = Sector::new(Point::ORIGIN, Angle::from_degrees(180.0), beam(30.0), 1.0);
        assert!(s.contains(Point::ORIGIN.offset(Angle::from_degrees(170.0), 0.5)));
        assert!(s.contains(Point::ORIGIN.offset(Angle::from_degrees(-170.0), 0.5)));
        assert!(!s.contains(Point::ORIGIN.offset(Angle::from_degrees(160.0), 0.5)));
    }

    #[test]
    #[should_panic(expected = "range must be finite")]
    fn rejects_bad_range() {
        let _ = Sector::new(Point::ORIGIN, Angle::ZERO, beam(30.0), f64::NAN);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Sector::new(Point::ORIGIN, Angle::ZERO, beam(30.0), 1.0);
        assert!(!format!("{s}").is_empty());
    }
}
