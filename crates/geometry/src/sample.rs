//! Uniform random sampling of planar regions.
//!
//! These routines back the topology generators: the paper places `N` nodes
//! uniformly in a disk of radius `R`, `3N` in the ring `[R, 2R]`, and `5N`
//! in the ring `[2R, 3R]`.

use rand::Rng;

use crate::{Angle, Point};

/// Samples a point uniformly from the disk of radius `radius` centered at
/// `center`.
///
/// Uses the inverse-CDF radius transform `r = R·√u` so density is uniform in
/// area, not in radius.
///
/// # Panics
///
/// Panics if `radius` is negative or not finite.
///
/// # Example
///
/// ```
/// use dirca_geometry::{sample, Point};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let p = sample::uniform_in_disk(&mut rng, Point::ORIGIN, 2.0);
/// assert!(Point::ORIGIN.distance(p) <= 2.0);
/// ```
pub fn uniform_in_disk<R: Rng + ?Sized>(rng: &mut R, center: Point, radius: f64) -> Point {
    uniform_in_ring(rng, center, 0.0, radius)
}

/// Samples a point uniformly from the ring (annulus) with inner radius
/// `inner` and outer radius `outer` centered at `center`.
///
/// # Panics
///
/// Panics unless `0 ≤ inner ≤ outer` and both are finite.
pub fn uniform_in_ring<R: Rng + ?Sized>(
    rng: &mut R,
    center: Point,
    inner: f64,
    outer: f64,
) -> Point {
    assert!(
        inner.is_finite() && outer.is_finite() && inner >= 0.0 && inner <= outer,
        "ring radii must satisfy 0 <= inner <= outer, got [{inner}, {outer}]"
    );
    let u: f64 = rng.random();
    let r = (inner * inner + u * (outer * outer - inner * inner)).sqrt();
    let heading = uniform_angle(rng);
    center.offset(heading, r)
}

/// Samples a heading uniformly from `(-π, π]`.
pub fn uniform_angle<R: Rng + ?Sized>(rng: &mut R) -> Angle {
    Angle::from_radians(rng.random_range(-std::f64::consts::PI..std::f64::consts::PI))
}

/// Samples the number of points of a Poisson process with mean `mean`.
///
/// Uses Knuth's product-of-uniforms method for small means and a
/// normal-approximation fallback for large means (> 64), which is ample for
/// the node counts used in the experiments.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
pub fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be finite and non-negative, got {mean}"
    );
    // The assert above guarantees `mean >= 0`, so this is an exact zero
    // guard.
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as usize;
    }
    let limit = (-mean).exp();
    let mut product: f64 = 1.0;
    let mut count = 0usize;
    loop {
        product *= rng.random::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn disk_samples_stay_inside() {
        let mut rng = rng();
        for _ in 0..1000 {
            let p = uniform_in_disk(&mut rng, Point::new(1.0, -1.0), 3.0);
            assert!(Point::new(1.0, -1.0).distance(p) <= 3.0 + 1e-12);
        }
    }

    #[test]
    fn ring_samples_stay_inside_annulus() {
        let mut rng = rng();
        for _ in 0..1000 {
            let p = uniform_in_ring(&mut rng, Point::ORIGIN, 1.0, 2.0);
            let d = Point::ORIGIN.distance(p);
            assert!((1.0..=2.0 + 1e-12).contains(&d), "d={d}");
        }
    }

    #[test]
    fn disk_sampling_is_area_uniform() {
        // Half of the disk's area lies within r <= R/√2; check the fraction.
        let mut rng = rng();
        let n = 20_000;
        let inside = (0..n)
            .filter(|_| {
                let p = uniform_in_disk(&mut rng, Point::ORIGIN, 1.0);
                Point::ORIGIN.distance(p) <= std::f64::consts::FRAC_1_SQRT_2
            })
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac} far from 0.5");
    }

    #[test]
    fn angles_cover_all_quadrants() {
        let mut rng = rng();
        let mut quadrants = [false; 4];
        for _ in 0..1000 {
            let a = uniform_angle(&mut rng).radians();
            let q = if a >= 0.0 {
                if a < std::f64::consts::FRAC_PI_2 {
                    0
                } else {
                    1
                }
            } else if a >= -std::f64::consts::FRAC_PI_2 {
                3
            } else {
                2
            };
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&b| b), "quadrants hit: {quadrants:?}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = rng();
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut rng = rng();
        let mean = 5.0;
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson_count(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed mean {observed}");
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let mut rng = rng();
        let mean = 100.0;
        let n = 5_000;
        let total: usize = (0..n).map(|_| poisson_count(&mut rng, mean)).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - mean).abs() < 1.0, "observed mean {observed}");
    }

    #[test]
    #[should_panic(expected = "ring radii")]
    fn ring_rejects_inverted_radii() {
        let mut rng = rng();
        let _ = uniform_in_ring(&mut rng, Point::ORIGIN, 2.0, 1.0);
    }
}
