//! The normalized interference areas of Section 2 of the paper.
//!
//! All quantities here follow the paper's normalization: distances are
//! normalized to the transmission range (`R = 1`) and areas to the disk area
//! (`πR²`). The sender `x` and receiver `y` are `r ∈ (0, 1]` apart, and θ is
//! the antenna beamwidth.
//!
//! The paper's closed forms for the beam-sector areas `S_II` and `S_III`
//! (Eq. 4) are small-angle approximations (a sector minus an inscribed
//! triangle with `tan(θ/2)`): they go negative, or exceed the region they
//! partition, as θ approaches 180°. Following the shapes of the paper's own
//! numerical curves we clamp every area into `[0, total]`; the ablation
//! experiment E7 quantifies the effect of the clamp.

use crate::circle::q;

/// The hidden area `B(r)` normalized by `πR²`:
/// `1 − (2/π)·q(r/2)`, with `R = 1`.
///
/// # Panics
///
/// Panics if `r` is outside `[0, 2]`.
///
/// # Example
///
/// ```
/// // At r = 0 nothing is hidden; at r = 1 about 61% of the receiver's disk is.
/// let b0 = dirca_geometry::paper::hidden_area_norm(0.0);
/// let b1 = dirca_geometry::paper::hidden_area_norm(1.0);
/// assert!(b0.abs() < 1e-12);
/// assert!(b1 > 0.6 && b1 < 0.62);
/// ```
pub fn hidden_area_norm(r: f64) -> f64 {
    assert!((0.0..=2.0).contains(&r), "r must be in [0, 2], got {r}");
    1.0 - 2.0 * q(r / 2.0) / std::f64::consts::PI
}

/// The five normalized areas of Fig. 3 (DRTS-DCTS scheme).
///
/// * `s1` — Area I: the part of the sender's beam near the receiver whose
///   nodes do not know `x` is transmitting (one vulnerable slot).
/// * `s2` — Area II: the rest of the sender's beam toward `y` inside `y`'s
///   range (vulnerable for `2·l_rts` directional slots plus one omni slot).
/// * `s3` — Area III: the lens region covering both `x` and `y` outside the
///   beam (vulnerable directionally for the whole handshake).
/// * `s4` — Area IV: hidden from `x`, covering `y` (vulnerable while `y`
///   transmits CTS and ACK).
/// * `s5` — Area V: hidden from `y`, covering `x` (vulnerable while `x`
///   transmits RTS and DATA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrtsDctsAreas {
    /// Area I (normalized to πR²).
    pub s1: f64,
    /// Area II (normalized to πR²).
    pub s2: f64,
    /// Area III (normalized to πR²).
    pub s3: f64,
    /// Area IV (normalized to πR²).
    pub s4: f64,
    /// Area V (normalized to πR²).
    pub s5: f64,
}

/// Computes the DRTS-DCTS interference areas for sender-receiver distance
/// `r` (normalized to `R`) and beamwidth `theta` (radians).
///
/// Eq. 4 of the paper, with each area clamped to be non-negative (see module
/// docs).
///
/// # Panics
///
/// Panics if `r` is outside `(0, 1]` or `theta` outside `(0, 2π]`.
///
/// # Example
///
/// ```
/// use dirca_geometry::paper::drts_dcts_areas;
///
/// let a = drts_dcts_areas(0.5, 30f64.to_radians());
/// // The beam covers θ/2π of the plane disk.
/// assert!((a.s1 - 30.0 / 360.0).abs() < 1e-12);
/// assert!(a.s2 >= 0.0 && a.s3 >= 0.0);
/// ```
pub fn drts_dcts_areas(r: f64, theta: f64) -> DrtsDctsAreas {
    validate_r_theta(r, theta);
    let tau = std::f64::consts::TAU;
    let pi = std::f64::consts::PI;
    let qq = q(r / 2.0);
    // tan(θ/2) blows up at θ = π and goes negative beyond; the clamps keep
    // the approximation inside the physically meaningful range.
    let tri = (r * r * (theta / 2.0).tan() / tau).max(0.0);
    let s1 = theta / tau;
    let s2 = (theta / tau - tri).clamp(0.0, 1.0);
    let s3 = (2.0 * qq / pi - theta / pi + tri).clamp(0.0, 2.0 * qq / pi);
    let s4 = 1.0 - 2.0 * qq / pi;
    let s5 = s4;
    DrtsDctsAreas { s1, s2, s3, s4, s5 }
}

/// The three normalized areas of Fig. 4 (DRTS-OCTS scheme).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrtsOctsAreas {
    /// Area I: the sender's beam sector, `θ/2π`.
    pub s1: f64,
    /// Area II: the remainder of the neighborhood, `1 − θ/2π`.
    pub s2: f64,
    /// Area III: the hidden area, `1 − (2/π)·q(r/2)` (Area IV of Fig. 3).
    pub s3: f64,
}

/// Computes the DRTS-OCTS interference areas for distance `r` and beamwidth
/// `theta` (radians), per Section 2.3 of the paper.
///
/// # Panics
///
/// Panics if `r` is outside `(0, 1]` or `theta` outside `(0, 2π]`.
pub fn drts_octs_areas(r: f64, theta: f64) -> DrtsOctsAreas {
    validate_r_theta(r, theta);
    let tau = std::f64::consts::TAU;
    DrtsOctsAreas {
        s1: theta / tau,
        s2: 1.0 - theta / tau,
        s3: hidden_area_norm(r),
    }
}

fn validate_r_theta(r: f64, theta: f64) {
    assert!(
        r > 0.0 && r <= 1.0,
        "normalized distance r must be in (0, 1], got {r}"
    );
    assert!(
        theta > 0.0 && theta <= std::f64::consts::TAU + 1e-12,
        "beamwidth must be in (0, 2π], got {theta}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn hidden_area_norm_monotone_increasing() {
        let mut prev = hidden_area_norm(0.0);
        for i in 1..=100 {
            let r = i as f64 / 50.0;
            let cur = hidden_area_norm(r);
            assert!(cur >= prev - 1e-12, "not increasing at r={r}");
            prev = cur;
        }
        assert!((hidden_area_norm(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drts_dcts_areas_nonnegative_across_sweep() {
        for theta_deg in (15..=180).step_by(15) {
            let theta = f64::from(theta_deg).to_radians();
            for i in 1..=20 {
                let r = i as f64 / 20.0;
                let a = drts_dcts_areas(r, theta);
                for (name, v) in [
                    ("s1", a.s1),
                    ("s2", a.s2),
                    ("s3", a.s3),
                    ("s4", a.s4),
                    ("s5", a.s5),
                ] {
                    assert!(
                        v >= 0.0 && v.is_finite(),
                        "{name} negative/non-finite at θ={theta_deg}°, r={r}: {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn drts_dcts_s1_is_beam_fraction() {
        let a = drts_dcts_areas(0.7, PI / 6.0);
        assert!((a.s1 - (PI / 6.0) / (2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn drts_dcts_s4_equals_s5_equals_hidden() {
        let a = drts_dcts_areas(0.6, PI / 4.0);
        assert_eq!(a.s4, a.s5);
        assert!((a.s4 - hidden_area_norm(0.6)).abs() < 1e-12);
    }

    #[test]
    fn drts_dcts_narrow_beam_small_r_matches_raw_formula() {
        // For narrow beams and small r the clamps must be inactive, i.e. we
        // reproduce Eq. 4 exactly.
        let theta = (30f64).to_radians();
        let r = 0.3;
        let tau = std::f64::consts::TAU;
        let a = drts_dcts_areas(r, theta);
        let tri = r * r * (theta / 2.0).tan() / tau;
        assert!((a.s2 - (theta / tau - tri)).abs() < 1e-12);
        assert!((a.s3 - (2.0 * q(r / 2.0) / PI - theta / PI + tri)).abs() < 1e-12);
    }

    #[test]
    fn drts_octs_areas_partition_and_match() {
        let theta = (90f64).to_radians();
        let a = drts_octs_areas(0.5, theta);
        assert!((a.s1 + a.s2 - 1.0).abs() < 1e-12);
        assert!((a.s3 - hidden_area_norm(0.5)).abs() < 1e-12);
    }

    #[test]
    fn unclamped_areas_satisfy_lens_identity() {
        // Where the paper's approximations are valid (narrow beams), the
        // pieces must tile known regions: S_II + S_III equals the lens of
        // the two unit disks minus the beam's share θ/2π of the plane
        // disk, because Areas II and III partition the lens between
        // "inside the beam" and "outside the beam".
        for theta_deg in [5.0f64, 15.0, 30.0] {
            let theta = theta_deg.to_radians();
            for i in 1..=10 {
                let r = i as f64 / 10.0;
                let a = drts_dcts_areas(r, theta);
                let lens_norm = 2.0 * q(r / 2.0) / PI;
                let lhs = a.s2 + a.s3;
                let rhs = lens_norm - theta / (2.0 * PI);
                assert!(
                    (lhs - rhs).abs() < 1e-12,
                    "identity broken at θ={theta_deg}°, r={r}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn wide_beam_does_not_explode() {
        // θ = 180° makes tan(θ/2) astronomically large; the clamps must keep
        // every area finite and inside [0, 1].
        let a = drts_dcts_areas(1.0, PI);
        for v in [a.s1, a.s2, a.s3, a.s4, a.s5] {
            assert!((0.0..=1.0).contains(&v), "area out of [0,1]: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "normalized distance")]
    fn rejects_r_zero() {
        let _ = drts_dcts_areas(0.0, PI / 6.0);
    }

    #[test]
    #[should_panic(expected = "beamwidth")]
    fn rejects_theta_zero() {
        let _ = drts_octs_areas(0.5, 0.0);
    }
}
