//! Points and displacement vectors on the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::Angle;

/// A point on the two-dimensional plane.
///
/// Coordinates are in whatever unit the caller chooses; the analytical model
/// normalizes distances to the transmission range `R`, while the simulator
/// uses meters.
///
/// # Example
///
/// ```
/// use dirca_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
///
/// # Example
///
/// ```
/// use dirca_geometry::{Point, Vec2};
///
/// let v = Point::new(1.0, 1.0) - Point::new(0.0, 1.0);
/// assert_eq!(v, Vec2::new(1.0, 0.0));
/// assert_eq!(v.norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (other - self).norm()
    }

    /// Squared Euclidean distance to `other`; avoids the square root when
    /// only comparisons are needed.
    pub fn distance_squared(self, other: Point) -> f64 {
        (other - self).norm_squared()
    }

    /// Heading of `other` as seen from `self`, measured counter-clockwise
    /// from the positive x-axis.
    ///
    /// Returns [`Angle::ZERO`] when the points coincide.
    pub fn heading_to(self, other: Point) -> Angle {
        let d = other - self;
        if d == Vec2::ZERO {
            Angle::ZERO
        } else {
            Angle::from_radians(d.y.atan2(d.x))
        }
    }

    /// The point at distance `r` in direction `heading` from `self`.
    pub fn offset(self, heading: Angle, r: f64) -> Point {
        let (sin, cos) = heading.radians().sin_cos();
        Point::new(self.x + r * cos, self.y + r * sin)
    }

    /// Midpoint of the segment from `self` to `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean length.
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product with `other` (positive when `other`
    /// lies counter-clockwise of `self`).
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Direction of this vector; [`Angle::ZERO`] for the zero vector.
    pub fn heading(self) -> Angle {
        if self == Vec2::ZERO {
            Angle::ZERO
        } else {
            Angle::from_radians(self.y.atan2(self.x))
        }
    }

    /// This vector scaled to unit length.
    ///
    /// Returns [`Vec2::ZERO`] for the zero vector.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        // A norm is non-negative, so this is an exact zero-vector guard.
        if n <= 0.0 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Rotates the vector counter-clockwise by `angle`.
    pub fn rotated(self, angle: Angle) -> Vec2 {
        let (sin, cos) = angle.radians().sin_cos();
        Vec2::new(self.x * cos - self.y * sin, self.x * sin + self.y * cos)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.4}, {:.4}>", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_squared_matches_distance() {
        let a = Point::new(0.5, -0.5);
        let b = Point::new(2.5, 1.5);
        assert!((a.distance_squared(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn heading_to_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((o.heading_to(Point::new(1.0, 0.0)).radians() - 0.0).abs() < 1e-12);
        assert!(
            (o.heading_to(Point::new(0.0, 1.0)).radians() - std::f64::consts::FRAC_PI_2).abs()
                < 1e-12
        );
        assert!(
            (o.heading_to(Point::new(-1.0, 0.0)).radians().abs() - std::f64::consts::PI).abs()
                < 1e-12
        );
    }

    #[test]
    fn heading_to_self_is_zero() {
        let p = Point::new(2.0, 3.0);
        assert_eq!(p.heading_to(p), Angle::ZERO);
    }

    #[test]
    fn offset_round_trip() {
        let p = Point::new(1.0, 1.0);
        let h = Angle::from_degrees(37.0);
        let q = p.offset(h, 2.5);
        assert!((p.distance(q) - 2.5).abs() < 1e-12);
        assert!((p.heading_to(q).radians() - h.radians()).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 2.0);
        let m = a.midpoint(b);
        assert!((m.distance(a) - m.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(1.0, 2.0);
        let w = Vec2::new(-2.0, 1.0);
        assert_eq!(v.dot(w), 0.0);
        assert_eq!(v.cross(w), 5.0);
        assert_eq!(v + w, Vec2::new(-1.0, 3.0));
        assert_eq!(v - w, Vec2::new(3.0, 1.0));
        assert_eq!(-v, Vec2::new(-1.0, -2.0));
        assert_eq!(v * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert_eq!(v / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec2::new(3.0, -4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(2.0, 1.0);
        let r = v.rotated(Angle::from_degrees(90.0));
        assert!((r.norm() - v.norm()).abs() < 1e-12);
        assert!((r.x - -1.0).abs() < 1e-12);
        assert!((r.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", Vec2::ZERO).is_empty());
    }
}
