//! Property-based tests for the geometric substrate.

// Unwraps and exact float comparisons are idiomatic in test assertions.
#![allow(clippy::unwrap_used, clippy::float_cmp)]

use dirca_geometry::{
    hidden_area, lens_area, paper, q, sample, Angle, Beamwidth, Circle, Point, Sector,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn angle_normalization_is_idempotent(raw in -100.0f64..100.0) {
        let once = Angle::from_radians(raw);
        let twice = Angle::from_radians(once.radians());
        prop_assert!((once.radians() - twice.radians()).abs() < 1e-12);
        prop_assert!(once.radians() > -std::f64::consts::PI - 1e-12);
        prop_assert!(once.radians() <= std::f64::consts::PI + 1e-12);
    }

    #[test]
    fn angle_separation_triangle_inequality(a in -10.0f64..10.0, b in -10.0f64..10.0, c in -10.0f64..10.0) {
        let (a, b, c) = (Angle::from_radians(a), Angle::from_radians(b), Angle::from_radians(c));
        prop_assert!(a.separation(c) <= a.separation(b) + b.separation(c) + 1e-9);
    }

    #[test]
    fn separation_invariant_under_rotation(a in -10.0f64..10.0, b in -10.0f64..10.0, rot in -10.0f64..10.0) {
        let rot = Angle::from_radians(rot);
        let before = Angle::from_radians(a).separation(Angle::from_radians(b));
        let after = (Angle::from_radians(a) + rot).separation(Angle::from_radians(b) + rot);
        prop_assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn q_bounds(t in 0.0f64..=1.0) {
        let v = q(t);
        prop_assert!(v >= -1e-12);
        prop_assert!(v <= std::f64::consts::FRAC_PI_2 + 1e-12);
    }

    #[test]
    fn lens_area_bounded_by_smaller_disk(r1 in 0.01f64..5.0, r2 in 0.01f64..5.0, d in 0.0f64..12.0) {
        let lens = lens_area(r1, r2, d);
        let min_disk = std::f64::consts::PI * r1.min(r2).powi(2);
        prop_assert!(lens >= 0.0);
        prop_assert!(lens <= min_disk + 1e-9);
    }

    #[test]
    fn lens_area_decreases_with_distance(r1 in 0.1f64..3.0, r2 in 0.1f64..3.0, d in 0.0f64..5.0) {
        let closer = lens_area(r1, r2, d);
        let farther = lens_area(r1, r2, d + 0.1);
        prop_assert!(farther <= closer + 1e-9);
    }

    #[test]
    fn hidden_area_within_disk(r in 0.0f64..=2.0, range in 0.1f64..10.0) {
        let b = hidden_area(r * range, range);
        prop_assert!(b >= -1e-9);
        prop_assert!(b <= std::f64::consts::PI * range * range + 1e-9);
    }

    #[test]
    fn sector_contains_implies_circle_contains(
        x in -2.0f64..2.0, y in -2.0f64..2.0,
        bore in -4.0f64..4.0, theta in 1.0f64..360.0, range in 0.1f64..3.0,
        px in -5.0f64..5.0, py in -5.0f64..5.0,
    ) {
        let apex = Point::new(x, y);
        let s = Sector::new(apex, Angle::from_radians(bore), Beamwidth::from_degrees(theta).unwrap(), range);
        let p = Point::new(px, py);
        if s.contains(p) {
            prop_assert!(Circle::new(apex, range + 1e-9).contains(p));
        }
    }

    #[test]
    fn omni_sector_equals_disk(
        bore in -4.0f64..4.0, range in 0.1f64..3.0,
        px in -5.0f64..5.0, py in -5.0f64..5.0,
    ) {
        let s = Sector::new(Point::ORIGIN, Angle::from_radians(bore), Beamwidth::OMNI, range);
        let c = Circle::new(Point::ORIGIN, range);
        let p = Point::new(px, py);
        prop_assert_eq!(s.contains(p), c.contains(p));
    }

    #[test]
    fn aimed_sector_always_covers_in_range_target(
        tx_x in -2.0f64..2.0, tx_y in -2.0f64..2.0,
        heading in -4.0f64..4.0, dist in 0.001f64..1.0,
        theta in 1.0f64..360.0,
    ) {
        let tx = Point::new(tx_x, tx_y);
        let rx = tx.offset(Angle::from_radians(heading), dist);
        let s = Sector::aimed_at(tx, rx, Beamwidth::from_degrees(theta).unwrap(), 1.0);
        prop_assert!(s.contains(rx));
    }

    #[test]
    fn drts_dcts_areas_always_valid(r in 0.001f64..=1.0, theta_deg in 1.0f64..=360.0) {
        let a = paper::drts_dcts_areas(r, theta_deg.to_radians());
        for v in [a.s1, a.s2, a.s3, a.s4, a.s5] {
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
            prop_assert!(v <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn drts_octs_areas_always_valid(r in 0.001f64..=1.0, theta_deg in 1.0f64..=360.0) {
        let a = paper::drts_octs_areas(r, theta_deg.to_radians());
        prop_assert!((a.s1 + a.s2 - 1.0).abs() < 1e-9);
        prop_assert!(a.s3 >= 0.0 && a.s3 <= 1.0 + 1e-9);
    }

    #[test]
    fn ring_sampling_respects_bounds(seed in 0u64..1000, inner in 0.0f64..2.0, extra in 0.01f64..3.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = sample::uniform_in_ring(&mut rng, Point::ORIGIN, inner, inner + extra);
        let d = Point::ORIGIN.distance(p);
        prop_assert!(d >= inner - 1e-9);
        prop_assert!(d <= inner + extra + 1e-9);
    }
}
