//! The paper's concentric-ring topology generator.

use std::error::Error;
use std::fmt;

use rand::Rng;

use dirca_geometry::{sample, Point};

use crate::Topology;

/// Specification of the paper's ring-structured random topology (§4).
///
/// With `n_avg = N`: `N` nodes uniform in the disk of radius `R`, `3N` in
/// the ring `[R, 2R]`, `5N` in `[2R, 3R]` (so density is uniform across the
/// whole disk of radius `3R`), subject to the degree constraints:
///
/// * each of the inner `N` nodes has between `2` and `2N − 2` neighbours,
/// * each of the intermediate `3N` nodes has between `1` and `2N − 1`
///   neighbours.
///
/// Topologies violating the constraints are rejected and resampled.
///
/// # Example
///
/// ```
/// use dirca_topology::RingSpec;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let spec = RingSpec::paper(5, 1.0);
/// let topo = spec.generate(&mut rng)?;
/// assert_eq!(topo.len(), 5 + 15 + 25);
/// assert_eq!(topo.measured, 5);
/// # Ok::<(), dirca_topology::RingTopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingSpec {
    /// Average neighbourhood size `N`; also the inner node count.
    pub n_avg: usize,
    /// Transmission range `R`.
    pub range: f64,
    /// Number of rings beyond the inner disk (the paper uses 2, for a
    /// total radius of `3R`).
    pub outer_rings: usize,
    /// Maximum placement attempts before giving up.
    pub max_attempts: usize,
    /// Enforce the paper's degree constraints.
    pub enforce_degrees: bool,
}

/// Error returned when no valid topology was found within the attempt
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingTopologyError {
    attempts: usize,
}

impl fmt::Display for RingTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no topology satisfied the degree constraints after {} attempts",
            self.attempts
        )
    }
}

impl Error for RingTopologyError {}

impl RingSpec {
    /// The paper's configuration: rings out to `3R`, degree constraints
    /// enforced, and a generous retry budget.
    pub fn paper(n_avg: usize, range: f64) -> Self {
        RingSpec {
            n_avg,
            range,
            outer_rings: 2,
            max_attempts: 10_000,
            enforce_degrees: true,
        }
    }

    /// Total node count: `N · (outer_rings + 1)²` (the odd-number ring
    /// populations `N, 3N, 5N, …` telescope to a perfect square).
    pub fn total_nodes(&self) -> usize {
        self.n_avg * (self.outer_rings + 1) * (self.outer_rings + 1)
    }

    /// Generates a topology satisfying the constraints.
    ///
    /// # Errors
    ///
    /// Returns [`RingTopologyError`] if `max_attempts` placements all
    /// violated the degree constraints.
    ///
    /// # Panics
    ///
    /// Panics if `n_avg == 0` or `range` is not positive and finite.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Topology, RingTopologyError> {
        assert!(self.n_avg > 0, "n_avg must be positive");
        assert!(
            self.range > 0.0 && self.range.is_finite(),
            "range must be positive and finite"
        );
        for attempt in 1..=self.max_attempts.max(1) {
            let topo = self.place(rng);
            if !self.enforce_degrees || self.degrees_ok(&topo) {
                return Ok(topo);
            }
            let _ = attempt;
        }
        Err(RingTopologyError {
            attempts: self.max_attempts,
        })
    }

    fn place<R: Rng + ?Sized>(&self, rng: &mut R) -> Topology {
        let mut positions = Vec::with_capacity(self.total_nodes());
        // Inner disk: N nodes in radius R.
        for _ in 0..self.n_avg {
            positions.push(sample::uniform_in_disk(rng, Point::ORIGIN, self.range));
        }
        // Ring k (1-based): (2k+1)·N nodes in [kR, (k+1)R].
        for k in 1..=self.outer_rings {
            let count = (2 * k + 1) * self.n_avg;
            let inner = self.range * k as f64;
            let outer = self.range * (k + 1) as f64;
            for _ in 0..count {
                positions.push(sample::uniform_in_ring(rng, Point::ORIGIN, inner, outer));
            }
        }
        Topology {
            positions,
            range: self.range,
            measured: self.n_avg,
        }
    }

    /// The paper's §4 degree constraints.
    fn degrees_ok(&self, topo: &Topology) -> bool {
        let degrees = topo.degrees();
        let n = self.n_avg;
        let inner_ok = degrees[..n].iter().all(|&d| d >= 2 && d <= 2 * n - 2);
        if !inner_ok {
            return false;
        }
        // Intermediate ring: the 3N nodes in [R, 2R].
        let intermediate_end = (n + 3 * n).min(degrees.len());
        degrees[n..intermediate_end]
            .iter()
            .all(|&d| d >= 1 && d < 2 * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn node_counts_match_paper() {
        for n in [3, 5, 8] {
            let spec = RingSpec::paper(n, 1.0);
            assert_eq!(spec.total_nodes(), 9 * n);
            let topo = spec.generate(&mut rng(n as u64)).unwrap();
            assert_eq!(topo.len(), 9 * n);
            assert_eq!(topo.measured, n);
        }
    }

    #[test]
    fn nodes_lie_in_their_rings() {
        let spec = RingSpec::paper(5, 2.0);
        let topo = spec.generate(&mut rng(11)).unwrap();
        let d = |i: usize| Point::ORIGIN.distance(topo.positions[i]);
        for i in 0..5 {
            assert!(d(i) <= 2.0 + 1e-9, "inner node {i} outside R");
        }
        for i in 5..20 {
            let dist = d(i);
            assert!(
                (2.0..=4.0 + 1e-9).contains(&dist),
                "ring-1 node {i} at {dist}"
            );
        }
        for i in 20..45 {
            let dist = d(i);
            assert!(
                (4.0..=6.0 + 1e-9).contains(&dist),
                "ring-2 node {i} at {dist}"
            );
        }
    }

    #[test]
    fn degree_constraints_hold_on_accepted_topologies() {
        let spec = RingSpec::paper(5, 1.0);
        for seed in 0..10 {
            let topo = spec.generate(&mut rng(seed)).unwrap();
            let degrees = topo.degrees();
            for (i, &d) in degrees[..5].iter().enumerate() {
                assert!((2..=8).contains(&d), "inner node {i} degree {d}");
            }
            for (i, &d) in degrees[5..20].iter().enumerate() {
                assert!((1..=9).contains(&d), "intermediate node {i} degree {d}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = RingSpec::paper(3, 1.0);
        let a = spec.generate(&mut rng(99)).unwrap();
        let b = spec.generate(&mut rng(99)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constraints_can_be_disabled() {
        let mut spec = RingSpec::paper(3, 1.0);
        spec.enforce_degrees = false;
        spec.max_attempts = 1;
        // Must always succeed in one attempt when unconstrained.
        for seed in 0..20 {
            assert!(spec.generate(&mut rng(seed)).is_ok());
        }
    }

    #[test]
    fn impossible_constraints_error_out() {
        // n_avg = 1 requires inner degree in [2, 0]: unsatisfiable.
        let mut spec = RingSpec::paper(1, 1.0);
        spec.max_attempts = 10;
        let err = spec.generate(&mut rng(0)).unwrap_err();
        assert!(format!("{err}").contains("10 attempts"));
    }

    #[test]
    fn extra_rings_scale_quadratically() {
        let mut spec = RingSpec::paper(2, 1.0);
        spec.outer_rings = 3;
        spec.enforce_degrees = false;
        assert_eq!(spec.total_nodes(), 2 * 16);
        let topo = spec.generate(&mut rng(5)).unwrap();
        assert_eq!(topo.len(), 32);
    }

    #[test]
    #[should_panic(expected = "n_avg must be positive")]
    fn zero_n_avg_panics() {
        let spec = RingSpec::paper(0, 1.0);
        let _ = spec.generate(&mut rng(0));
    }
}
