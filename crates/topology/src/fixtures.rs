//! Deterministic topology fixtures for tests, examples, and protocol
//! debugging.

use dirca_geometry::Point;

use crate::Topology;

/// Two nodes `spacing` apart — the minimal link.
///
/// # Example
///
/// ```
/// let topo = dirca_topology::fixtures::pair(0.9, 1.0);
/// assert_eq!(topo.degrees(), vec![1, 1]);
/// ```
pub fn pair(spacing: f64, range: f64) -> Topology {
    Topology {
        positions: vec![Point::ORIGIN, Point::new(spacing, 0.0)],
        range,
        measured: 2,
    }
}

/// The classic hidden-terminal triple: `A — B — C` in a line with `A` and
/// `C` mutually out of range but both in range of `B`.
///
/// With unit range the spacing is 0.8, so `A`–`C` are 1.6 apart.
///
/// # Example
///
/// ```
/// let topo = dirca_topology::fixtures::hidden_terminal();
/// // A and C each see only B; B sees both.
/// assert_eq!(topo.degrees(), vec![1, 2, 1]);
/// ```
pub fn hidden_terminal() -> Topology {
    Topology {
        positions: vec![Point::new(-0.8, 0.0), Point::ORIGIN, Point::new(0.8, 0.0)],
        range: 1.0,
        measured: 3,
    }
}

/// Two independent sender–receiver pairs placed far enough apart that an
/// omni transmission from one pair reaches the other pair's receiver, but a
/// narrow beam between partners does not: the canonical spatial-reuse
/// scenario.
///
/// Layout (unit range):
///
/// ```text
///   S0 → R0          R1 ← S1
///   (0,0) (0.9,0)  (1.5,0) (2.4,0)
/// ```
///
/// `R0`–`R1` are 0.6 apart (mutually in range), while `S0`–`S1` are 2.4
/// apart (out of range).
pub fn parallel_pairs() -> Topology {
    Topology {
        positions: vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.5, 0.0),
            Point::new(2.4, 0.0),
        ],
        range: 1.0,
        measured: 4,
    }
}

/// A line of `n` nodes with the given spacing.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize, spacing: f64, range: f64) -> Topology {
    assert!(n > 0, "line needs at least one node");
    Topology {
        positions: (0..n)
            .map(|i| Point::new(spacing * i as f64, 0.0))
            .collect(),
        range,
        measured: n,
    }
}

/// `n` nodes evenly spaced on a circle of radius `circle_radius` — every
/// node sees every other when `range` is at least the diameter.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ring_of(n: usize, circle_radius: f64, range: f64) -> Topology {
    assert!(n > 0, "ring needs at least one node");
    let positions = (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(circle_radius * a.cos(), circle_radius * a.sin())
        })
        .collect();
    Topology {
        positions,
        range,
        measured: n,
    }
}

/// A hub-and-spoke star: node 0 at the center, `n - 1` leaves on a circle
/// of radius `arm` (leaves see the hub; adjacent leaves may or may not see
/// each other depending on `range`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize, arm: f64, range: f64) -> Topology {
    assert!(n > 0, "star needs at least one node");
    let mut positions = vec![Point::ORIGIN];
    for i in 0..n.saturating_sub(1) {
        let a = std::f64::consts::TAU * i as f64 / (n - 1).max(1) as f64;
        positions.push(Point::new(arm * a.cos(), arm * a.sin()));
    }
    Topology {
        positions,
        range,
        measured: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_connectivity() {
        assert_eq!(pair(0.5, 1.0).degrees(), vec![1, 1]);
        assert_eq!(pair(1.5, 1.0).degrees(), vec![0, 0]);
    }

    #[test]
    fn hidden_terminal_shape() {
        let t = hidden_terminal();
        let adj = t.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn parallel_pairs_shape() {
        let t = parallel_pairs();
        let adj = t.adjacency();
        // S0 sees R0 only.
        assert_eq!(adj[0], vec![1]);
        // R0 sees S0 and R1.
        assert_eq!(adj[1], vec![0, 2]);
        // R1 sees R0 and S1.
        assert_eq!(adj[2], vec![1, 3]);
        // S1 sees R1 only.
        assert_eq!(adj[3], vec![2]);
    }

    #[test]
    fn line_degrees() {
        let t = line(5, 1.0, 1.0);
        assert_eq!(t.degrees(), vec![1, 2, 2, 2, 1]);
        let dense = line(5, 0.4, 1.0);
        assert_eq!(dense.degrees(), vec![2, 3, 4, 3, 2]);
    }

    #[test]
    fn ring_full_mesh_when_range_exceeds_diameter() {
        let t = ring_of(6, 1.0, 2.1);
        assert!(t.degrees().iter().all(|&d| d == 5));
    }

    #[test]
    fn star_hub_sees_all_leaves() {
        let t = star(5, 1.0, 1.0);
        assert_eq!(t.degrees()[0], 4);
        for &d in &t.degrees()[1..] {
            assert!(d >= 1, "leaf must at least see the hub");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_line_panics() {
        let _ = line(0, 1.0, 1.0);
    }
}
