//! Topology generation for the simulation experiments.
//!
//! The paper evaluates its MAC schemes on circular networks built from
//! concentric rings: with `N` the average number of neighbours, it places
//! `N` nodes uniformly in the disk of radius `R`, `3N` in the ring
//! `[R, 2R]`, and `5N` in the ring `[2R, 3R]` (matching a two-dimensional
//! uniform density), then keeps only topologies satisfying degree
//! constraints on the inner and intermediate nodes. Metrics are collected
//! over the innermost `N` nodes only, so the outer rings supply realistic
//! hidden-terminal pressure without boundary effects.
//!
//! This crate reproduces that generator ([`RingSpec`]) plus a Poisson field
//! generator ([`poisson_disk`]) matching the analytical model, and
//! deterministic fixtures ([`fixtures`]) for tests and examples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod fixtures;
pub mod io;

mod ring;

pub use ring::{RingSpec, RingTopologyError};

use dirca_geometry::{sample, Point};
use rand::Rng;

/// A generated node layout.
///
/// `positions[i]` is node `i`'s location; the first [`Topology::measured`]
/// nodes are the ones whose MAC statistics the experiments report.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Node positions.
    pub positions: Vec<Point>,
    /// The common transmission range `R` the layout was built for.
    pub range: f64,
    /// How many leading nodes are inside the measurement region.
    pub measured: usize,
}

impl Topology {
    /// Adjacency list under unit-disk connectivity at `self.range`.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let r2 = self.range * self.range;
        let n = self.positions.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if self.positions[i].distance_squared(self.positions[j]) <= r2 {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        adj
    }

    /// Degree (neighbour count) of every node.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency().iter().map(Vec::len).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Samples a Poisson field of mean density `n_avg / (πR²)` on a disk of
/// radius `radius`, i.e. the network model of the paper's analysis: the
/// expected number of nodes within range `range` of any point is `n_avg`.
///
/// All nodes are flagged as measured.
///
/// # Panics
///
/// Panics if any argument is non-positive or not finite.
///
/// # Example
///
/// ```
/// use dirca_topology::poisson_disk;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let topo = poisson_disk(&mut rng, 5.0, 1.0, 3.0);
/// // Expected node count: 5 per unit-disk area × (3R)² / R² = 45.
/// assert!(topo.len() > 10 && topo.len() < 120);
/// ```
pub fn poisson_disk<R: Rng + ?Sized>(rng: &mut R, n_avg: f64, range: f64, radius: f64) -> Topology {
    assert!(n_avg > 0.0 && n_avg.is_finite(), "n_avg must be positive");
    assert!(range > 0.0 && range.is_finite(), "range must be positive");
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive"
    );
    let mean = n_avg * (radius / range).powi(2);
    let count = sample::poisson_count(rng, mean);
    let positions: Vec<Point> = (0..count)
        .map(|_| sample::uniform_in_disk(rng, Point::ORIGIN, radius))
        .collect();
    let measured = positions.len();
    Topology {
        positions,
        range,
        measured,
    }
}

/// Generates an exactly-`nodes`-node uniform field sized so the expected
/// neighbour count is `n_avg` — the streaming large-scale generator for
/// the 1k–100k-node scaling benchmarks.
///
/// The disk radius is chosen as `range · √(nodes / n_avg)`, which makes
/// the mean density `n_avg / (πR²)`: conditioning a Poisson process on
/// its total count yields exactly this uniform (Binomial) field, so the
/// layout is distributed as a [`poisson_disk`] draw given `nodes` points
/// landed — with a deterministic size, which a pinned-scale benchmark
/// needs.
///
/// **Behavioural gate:** generation streams node positions in O(n) and
/// performs *no* pairwise connectivity or degree validation — at 100k
/// nodes a single O(n²) acceptance scan costs 10¹⁰ distance tests,
/// dwarfing generation itself. Callers needing degree guarantees (the
/// paper-scale [`RingSpec`] generator keeps its acceptance loop) must
/// check downstream; large-field consumers rely on the law of large
/// numbers instead, which concentrates realised degrees tightly around
/// `n_avg` at these scales.
///
/// All nodes are flagged as measured.
///
/// # Panics
///
/// Panics if `nodes` is zero or `n_avg`/`range` are non-positive or not
/// finite.
///
/// # Example
///
/// ```
/// use dirca_topology::poisson_field;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let topo = poisson_field(&mut rng, 1000, 8.0, 1.0);
/// assert_eq!(topo.len(), 1000);
/// ```
pub fn poisson_field<R: Rng + ?Sized>(
    rng: &mut R,
    nodes: usize,
    n_avg: f64,
    range: f64,
) -> Topology {
    assert!(nodes > 0, "node count must be positive");
    assert!(n_avg > 0.0 && n_avg.is_finite(), "n_avg must be positive");
    assert!(range > 0.0 && range.is_finite(), "range must be positive");
    let radius = range * (nodes as f64 / n_avg).sqrt();
    let positions: Vec<Point> = (0..nodes)
        .map(|_| sample::uniform_in_disk(rng, Point::ORIGIN, radius))
        .collect();
    Topology {
        positions,
        range,
        measured: nodes,
    }
}

/// [`poisson_field`] on a dedicated RNG seeded with `seed` — the pinned
/// path scaling benchmarks use so a field is a pure function of
/// `(seed, nodes, n_avg, range)`.
///
/// # Panics
///
/// Panics on the same invalid arguments as [`poisson_field`].
pub fn poisson_field_pinned(seed: u64, nodes: usize, n_avg: f64, range: f64) -> Topology {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    poisson_field(&mut rng, nodes, n_avg, range)
}

/// Samples a Poisson field on a disk of radius `radius` (like
/// [`poisson_disk`]) but marks only the nodes within `core_radius` of the
/// center as measured — the boundary-free measurement setup matching the
/// analytical model's infinite-plane assumption.
///
/// Nodes are reordered so the measured core nodes come first (the
/// convention used by [`Topology::measured`]).
///
/// # Panics
///
/// Panics if any argument is non-positive/non-finite or
/// `core_radius > radius`.
///
/// # Example
///
/// ```
/// use dirca_topology::poisson_core;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let topo = poisson_core(&mut rng, 5.0, 1.0, 3.0, 1.0);
/// // Expected ~5 measured nodes out of ~45 total.
/// assert!(topo.measured < topo.len());
/// ```
pub fn poisson_core<R: Rng + ?Sized>(
    rng: &mut R,
    n_avg: f64,
    range: f64,
    radius: f64,
    core_radius: f64,
) -> Topology {
    assert!(
        core_radius > 0.0 && core_radius <= radius,
        "core radius must satisfy 0 < core <= radius"
    );
    let mut topo = poisson_disk(rng, n_avg, range, radius);
    // Stable partition: core nodes first, preserving relative order.
    let (core, rest): (Vec<Point>, Vec<Point>) = topo
        .positions
        .iter()
        .partition(|p| Point::ORIGIN.distance(**p) <= core_radius);
    topo.measured = core.len();
    topo.positions = core.into_iter().chain(rest).collect();
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_core_marks_only_core_nodes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let topo = poisson_core(&mut rng, 6.0, 1.0, 3.0, 1.0);
        for (i, p) in topo.positions.iter().enumerate() {
            let d = Point::ORIGIN.distance(*p);
            if i < topo.measured {
                assert!(d <= 1.0 + 1e-9, "measured node {i} outside core: {d}");
            } else {
                assert!(d > 1.0 - 1e-9, "unmeasured node {i} inside core: {d}");
            }
        }
    }

    #[test]
    fn poisson_core_expected_measured_count() {
        let mut rng = SmallRng::seed_from_u64(9);
        let runs = 100;
        let total: usize = (0..runs)
            .map(|_| poisson_core(&mut rng, 5.0, 1.0, 3.0, 1.0).measured)
            .sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 5.0).abs() < 1.0, "core count mean {mean}");
    }

    #[test]
    #[should_panic(expected = "core radius")]
    fn poisson_core_validates_core() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = poisson_core(&mut rng, 5.0, 1.0, 2.0, 3.0);
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let topo = Topology {
            positions: vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(5.0, 5.0),
            ],
            range: 1.0,
            measured: 3,
        };
        let adj = topo.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0]);
        assert!(adj[2].is_empty());
        assert_eq!(topo.degrees(), vec![1, 1, 0]);
    }

    #[test]
    fn empty_topology() {
        let topo = Topology {
            positions: vec![],
            range: 1.0,
            measured: 0,
        };
        assert!(topo.is_empty());
        assert_eq!(topo.len(), 0);
        assert!(topo.adjacency().is_empty());
    }

    #[test]
    fn poisson_disk_count_statistics() {
        let mut rng = SmallRng::seed_from_u64(42);
        let runs = 200;
        let total: usize = (0..runs)
            .map(|_| poisson_disk(&mut rng, 5.0, 1.0, 3.0).len())
            .sum();
        let mean = total as f64 / runs as f64;
        // Expected 45 nodes; allow generous sampling slack.
        assert!((mean - 45.0).abs() < 3.0, "observed mean {mean}");
    }

    #[test]
    fn poisson_disk_nodes_inside_radius() {
        let mut rng = SmallRng::seed_from_u64(7);
        let topo = poisson_disk(&mut rng, 8.0, 1.0, 2.0);
        for p in &topo.positions {
            assert!(Point::ORIGIN.distance(*p) <= 2.0 + 1e-9);
        }
        assert_eq!(topo.measured, topo.len());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn poisson_disk_validates() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = poisson_disk(&mut rng, 0.0, 1.0, 3.0);
    }

    #[test]
    fn poisson_field_has_exact_count_and_radius() {
        let mut rng = SmallRng::seed_from_u64(11);
        let topo = poisson_field(&mut rng, 500, 8.0, 1.0);
        assert_eq!(topo.len(), 500);
        assert_eq!(topo.measured, 500);
        let radius = (500.0f64 / 8.0).sqrt();
        for p in &topo.positions {
            assert!(Point::ORIGIN.distance(*p) <= radius + 1e-9);
        }
    }

    #[test]
    fn poisson_field_pinned_is_reproducible() {
        let a = poisson_field_pinned(0xD1CA, 200, 8.0, 1.0);
        let b = poisson_field_pinned(0xD1CA, 200, 8.0, 1.0);
        assert_eq!(a, b);
        let c = poisson_field_pinned(0xD1CB, 200, 8.0, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_field_mean_degree_near_n_avg() {
        // No degree validation happens at generation time (the documented
        // behavioural gate); the law of large numbers must carry it. At
        // n = 2000 the interior mean degree concentrates near n_avg, with
        // slack for boundary nodes seeing truncated disks.
        let topo = poisson_field_pinned(7, 2000, 8.0, 1.0);
        let degrees = topo.degrees();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            (mean - 8.0).abs() < 1.5,
            "mean degree {mean} far from n_avg = 8"
        );
    }

    #[test]
    #[should_panic(expected = "node count must be positive")]
    fn poisson_field_rejects_zero_nodes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = poisson_field(&mut rng, 0, 8.0, 1.0);
    }
}
