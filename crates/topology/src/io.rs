//! Plain-text serialization of topologies.
//!
//! A deliberately simple line format so layouts can be shared, diffed, and
//! edited by hand (no serialization-format dependency needed):
//!
//! ```text
//! # dirca topology v1
//! range 1.0
//! measured 5
//! 0.25 -0.5
//! 1.0 0.0
//! …one "x y" line per node…
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use dirca_geometry::Point;

use crate::Topology;

/// What went wrong while parsing the topology text format. Each variant is
/// one validation rule, so callers (and tests) can match on the cause
/// rather than scrape the message text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The `range` header value did not parse as a float.
    BadRange,
    /// The `range` header value parsed but is not a finite positive number.
    NonPositiveRange,
    /// The `measured` header value did not parse as an unsigned integer.
    BadMeasured,
    /// A header appeared twice.
    DuplicateHeader {
        /// The repeated header name (`range` or `measured`).
        header: &'static str,
    },
    /// A node line's x coordinate is missing or unparseable.
    BadX,
    /// A node line's y coordinate is missing or unparseable.
    BadY,
    /// A node line carried more than two coordinate tokens.
    TrailingTokens,
    /// A coordinate parsed to an infinity or NaN.
    NonFiniteCoordinate,
    /// Two node lines give the exact same position — almost always a
    /// copy-paste slip, and it makes node identities ambiguous.
    DuplicatePosition {
        /// Line number of the earlier occurrence.
        first_line: usize,
    },
    /// The mandatory `range` header never appeared.
    MissingRange,
    /// The file has headers but no node lines (or is entirely empty).
    NoNodes,
    /// The `measured` count exceeds the number of node lines.
    MeasuredExceedsNodes {
        /// The declared `measured` count.
        measured: usize,
        /// The actual node count.
        nodes: usize,
    },
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::BadRange => write!(f, "bad range value"),
            ParseErrorKind::NonPositiveRange => write!(f, "range must be positive"),
            ParseErrorKind::BadMeasured => write!(f, "bad measured value"),
            ParseErrorKind::DuplicateHeader { header } => {
                write!(f, "duplicate '{header}' header")
            }
            ParseErrorKind::BadX => write!(f, "bad x coordinate"),
            ParseErrorKind::BadY => write!(f, "bad y coordinate"),
            ParseErrorKind::TrailingTokens => write!(f, "trailing tokens after coordinates"),
            ParseErrorKind::NonFiniteCoordinate => write!(f, "coordinates must be finite"),
            ParseErrorKind::DuplicatePosition { first_line } => {
                write!(
                    f,
                    "duplicate node position (first seen at line {first_line})"
                )
            }
            ParseErrorKind::MissingRange => write!(f, "missing 'range' header"),
            ParseErrorKind::NoNodes => write!(f, "no node lines (empty topology)"),
            ParseErrorKind::MeasuredExceedsNodes { measured, nodes } => {
                write!(f, "measured {measured} exceeds node count {nodes}")
            }
        }
    }
}

/// Error from parsing the topology text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    line: usize,
    kind: ParseErrorKind,
}

impl ParseTopologyError {
    /// The 1-based line the error was detected on; 0 for whole-file
    /// problems (missing header, empty file, bad `measured` total).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Which validation rule failed.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line, self.kind
        )
    }
}

impl Error for ParseTopologyError {}

fn err(line: usize, kind: ParseErrorKind) -> ParseTopologyError {
    ParseTopologyError { line, kind }
}

/// Renders a topology in the text format.
///
/// # Example
///
/// ```
/// use dirca_topology::{fixtures, io};
///
/// let topo = fixtures::hidden_terminal();
/// let text = io::to_text(&topo);
/// let back = io::from_text(&text)?;
/// assert_eq!(topo, back);
/// # Ok::<(), dirca_topology::io::ParseTopologyError>(())
/// ```
pub fn to_text(topology: &Topology) -> String {
    let mut out = String::from("# dirca topology v1\n");
    out.push_str(&format!("range {}\n", topology.range));
    out.push_str(&format!("measured {}\n", topology.measured));
    for p in &topology.positions {
        out.push_str(&format!("{} {}\n", p.x, p.y));
    }
    out
}

/// Parses the text format produced by [`to_text`].
///
/// Blank lines and `#` comments are ignored; `range` and `measured`
/// headers may appear in either order but must precede the node lines.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] on malformed or repeated headers,
/// malformed or non-finite coordinates, duplicated node positions, an
/// empty node list, or a `measured` count exceeding the node count; see
/// [`ParseErrorKind`] for the full rule list.
pub fn from_text(text: &str) -> Result<Topology, ParseTopologyError> {
    let mut range: Option<f64> = None;
    let mut measured: Option<usize> = None;
    let mut positions = Vec::new();
    // Line number of each accepted node line, for duplicate reporting.
    let mut position_lines: Vec<usize> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("range ") {
            if range.is_some() {
                return Err(err(
                    line_no,
                    ParseErrorKind::DuplicateHeader { header: "range" },
                ));
            }
            let v =
                f64::from_str(rest.trim()).map_err(|_| err(line_no, ParseErrorKind::BadRange))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(err(line_no, ParseErrorKind::NonPositiveRange));
            }
            range = Some(v);
        } else if let Some(rest) = line.strip_prefix("measured ") {
            if measured.is_some() {
                return Err(err(
                    line_no,
                    ParseErrorKind::DuplicateHeader { header: "measured" },
                ));
            }
            measured = Some(
                usize::from_str(rest.trim())
                    .map_err(|_| err(line_no, ParseErrorKind::BadMeasured))?,
            );
        } else {
            let mut parts = line.split_whitespace();
            let x = parts
                .next()
                .and_then(|t| f64::from_str(t).ok())
                .ok_or_else(|| err(line_no, ParseErrorKind::BadX))?;
            let y = parts
                .next()
                .and_then(|t| f64::from_str(t).ok())
                .ok_or_else(|| err(line_no, ParseErrorKind::BadY))?;
            if parts.next().is_some() {
                return Err(err(line_no, ParseErrorKind::TrailingTokens));
            }
            if !(x.is_finite() && y.is_finite()) {
                return Err(err(line_no, ParseErrorKind::NonFiniteCoordinate));
            }
            let p = Point::new(x, y);
            // Bitwise comparison: the format round-trips floats exactly, so
            // two textually distinct lines land on distinct bit patterns
            // unless they really name the same point.
            if let Some(first) = positions.iter().position(|q: &Point| {
                q.x.to_bits() == p.x.to_bits() && q.y.to_bits() == p.y.to_bits()
            }) {
                return Err(err(
                    line_no,
                    ParseErrorKind::DuplicatePosition {
                        first_line: position_lines[first],
                    },
                ));
            }
            positions.push(p);
            position_lines.push(line_no);
        }
    }
    let range = range.ok_or_else(|| err(0, ParseErrorKind::MissingRange))?;
    if positions.is_empty() {
        return Err(err(0, ParseErrorKind::NoNodes));
    }
    let measured = measured.unwrap_or(positions.len());
    if measured > positions.len() {
        return Err(err(
            0,
            ParseErrorKind::MeasuredExceedsNodes {
                measured,
                nodes: positions.len(),
            },
        ));
    }
    Ok(Topology {
        positions,
        range,
        measured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn round_trip_preserves_everything() {
        let mut topo = fixtures::parallel_pairs();
        topo.measured = 2;
        let text = to_text(&topo);
        let back = from_text(&text).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nrange 2.0\nmeasured 1\n# node below\n0.5 0.5\n";
        let topo = from_text(text).unwrap();
        assert_eq!(topo.len(), 1);
        assert_eq!(topo.range, 2.0);
        assert_eq!(topo.measured, 1);
    }

    #[test]
    fn measured_defaults_to_all() {
        let topo = from_text("range 1.0\n0 0\n1 1\n").unwrap();
        assert_eq!(topo.measured, 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_text("range 1.0\n0 zzz\n").unwrap_err();
        assert!(format!("{e}").contains("line 2"));
        assert_eq!(e.line(), 2);
        assert_eq!(*e.kind(), ParseErrorKind::BadY);
        let e = from_text("range -1\n").unwrap_err();
        assert!(format!("{e}").contains("positive"));
        let e = from_text("0 0\n").unwrap_err();
        assert!(format!("{e}").contains("missing 'range'"));
        assert_eq!(*e.kind(), ParseErrorKind::MissingRange);
    }

    #[test]
    fn overlong_measured_rejected() {
        let e = from_text("range 1.0\nmeasured 5\n0 0\n").unwrap_err();
        assert!(format!("{e}").contains("exceeds node count"));
        assert_eq!(
            *e.kind(),
            ParseErrorKind::MeasuredExceedsNodes {
                measured: 5,
                nodes: 1
            }
        );
    }

    #[test]
    fn trailing_tokens_rejected() {
        let e = from_text("range 1.0\n0 0 0\n").unwrap_err();
        assert_eq!(*e.kind(), ParseErrorKind::TrailingTokens);
    }

    #[test]
    fn empty_and_header_only_files_rejected() {
        let e = from_text("").unwrap_err();
        assert_eq!(*e.kind(), ParseErrorKind::MissingRange);
        let e = from_text("range 1.0\n").unwrap_err();
        assert_eq!(*e.kind(), ParseErrorKind::NoNodes, "headers but no nodes");
        let e = from_text("# only comments\n\n").unwrap_err();
        assert_eq!(*e.kind(), ParseErrorKind::MissingRange);
    }

    #[test]
    fn non_finite_coordinates_rejected() {
        for bad in ["inf 0", "0 -inf", "NaN 0"] {
            let text = format!("range 1.0\n{bad}\n");
            let e = from_text(&text).unwrap_err();
            assert_eq!(
                *e.kind(),
                ParseErrorKind::NonFiniteCoordinate,
                "input {bad:?}"
            );
            assert_eq!(e.line(), 2);
        }
    }

    #[test]
    fn duplicate_positions_rejected_with_both_lines() {
        let e = from_text("range 1.0\n0 0\n1 1\n0 0\n").unwrap_err();
        assert_eq!(e.line(), 4);
        assert_eq!(
            *e.kind(),
            ParseErrorKind::DuplicatePosition { first_line: 2 }
        );
        assert!(format!("{e}").contains("first seen at line 2"));
        // 0.0 and -0.0 compare equal but are distinct positions bitwise:
        // the duplicate check must not conflate them.
        assert!(from_text("range 1.0\n0 0\n-0 0\n").is_ok());
    }

    #[test]
    fn duplicate_headers_rejected() {
        let e = from_text("range 1.0\nrange 2.0\n0 0\n").unwrap_err();
        assert_eq!(
            *e.kind(),
            ParseErrorKind::DuplicateHeader { header: "range" }
        );
        let e = from_text("range 1.0\nmeasured 1\nmeasured 1\n0 0\n").unwrap_err();
        assert_eq!(
            *e.kind(),
            ParseErrorKind::DuplicateHeader { header: "measured" }
        );
    }

    #[test]
    fn generated_ring_round_trips() {
        use rand::SeedableRng;
        let spec = crate::RingSpec::paper(3, 1.0);
        let topo = spec
            .generate(&mut rand::rngs::SmallRng::seed_from_u64(5))
            .unwrap();
        let back = from_text(&to_text(&topo)).unwrap();
        // Float round-trip through shortest-representation formatting is
        // exact in Rust.
        assert_eq!(topo, back);
    }
}
