//! Plain-text serialization of topologies.
//!
//! A deliberately simple line format so layouts can be shared, diffed, and
//! edited by hand (no serialization-format dependency needed):
//!
//! ```text
//! # dirca topology v1
//! range 1.0
//! measured 5
//! 0.25 -0.5
//! 1.0 0.0
//! …one "x y" line per node…
//! ```

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use dirca_geometry::Point;

use crate::Topology;

/// Error from parsing the topology text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    line: usize,
    problem: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology parse error at line {}: {}",
            self.line, self.problem
        )
    }
}

impl Error for ParseTopologyError {}

fn err(line: usize, problem: impl Into<String>) -> ParseTopologyError {
    ParseTopologyError {
        line,
        problem: problem.into(),
    }
}

/// Renders a topology in the text format.
///
/// # Example
///
/// ```
/// use dirca_topology::{fixtures, io};
///
/// let topo = fixtures::hidden_terminal();
/// let text = io::to_text(&topo);
/// let back = io::from_text(&text)?;
/// assert_eq!(topo, back);
/// # Ok::<(), dirca_topology::io::ParseTopologyError>(())
/// ```
pub fn to_text(topology: &Topology) -> String {
    let mut out = String::from("# dirca topology v1\n");
    out.push_str(&format!("range {}\n", topology.range));
    out.push_str(&format!("measured {}\n", topology.measured));
    for p in &topology.positions {
        out.push_str(&format!("{} {}\n", p.x, p.y));
    }
    out
}

/// Parses the text format produced by [`to_text`].
///
/// Blank lines and `#` comments are ignored; `range` and `measured`
/// headers may appear in either order but must precede the node lines.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] on malformed headers, coordinates, or a
/// `measured` count exceeding the node count.
pub fn from_text(text: &str) -> Result<Topology, ParseTopologyError> {
    let mut range: Option<f64> = None;
    let mut measured: Option<usize> = None;
    let mut positions = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("range ") {
            let v = f64::from_str(rest.trim()).map_err(|_| err(line_no, "bad range value"))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(err(line_no, "range must be positive"));
            }
            range = Some(v);
        } else if let Some(rest) = line.strip_prefix("measured ") {
            measured =
                Some(usize::from_str(rest.trim()).map_err(|_| err(line_no, "bad measured value"))?);
        } else {
            let mut parts = line.split_whitespace();
            let x = parts
                .next()
                .and_then(|t| f64::from_str(t).ok())
                .ok_or_else(|| err(line_no, "bad x coordinate"))?;
            let y = parts
                .next()
                .and_then(|t| f64::from_str(t).ok())
                .ok_or_else(|| err(line_no, "bad y coordinate"))?;
            if parts.next().is_some() {
                return Err(err(line_no, "trailing tokens after coordinates"));
            }
            if !(x.is_finite() && y.is_finite()) {
                return Err(err(line_no, "coordinates must be finite"));
            }
            positions.push(Point::new(x, y));
        }
    }
    let range = range.ok_or_else(|| err(0, "missing 'range' header"))?;
    let measured = measured.unwrap_or(positions.len());
    if measured > positions.len() {
        return Err(err(
            0,
            format!("measured {measured} exceeds node count {}", positions.len()),
        ));
    }
    Ok(Topology {
        positions,
        range,
        measured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn round_trip_preserves_everything() {
        let mut topo = fixtures::parallel_pairs();
        topo.measured = 2;
        let text = to_text(&topo);
        let back = from_text(&text).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\nrange 2.0\nmeasured 1\n# node below\n0.5 0.5\n";
        let topo = from_text(text).unwrap();
        assert_eq!(topo.len(), 1);
        assert_eq!(topo.range, 2.0);
        assert_eq!(topo.measured, 1);
    }

    #[test]
    fn measured_defaults_to_all() {
        let topo = from_text("range 1.0\n0 0\n1 1\n").unwrap();
        assert_eq!(topo.measured, 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_text("range 1.0\n0 zzz\n").unwrap_err();
        assert!(format!("{e}").contains("line 2"));
        let e = from_text("range -1\n").unwrap_err();
        assert!(format!("{e}").contains("positive"));
        let e = from_text("0 0\n").unwrap_err();
        assert!(format!("{e}").contains("missing 'range'"));
    }

    #[test]
    fn overlong_measured_rejected() {
        let e = from_text("range 1.0\nmeasured 5\n0 0\n").unwrap_err();
        assert!(format!("{e}").contains("exceeds node count"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(from_text("range 1.0\n0 0 0\n").is_err());
    }

    #[test]
    fn generated_ring_round_trips() {
        use rand::SeedableRng;
        let spec = crate::RingSpec::paper(3, 1.0);
        let topo = spec
            .generate(&mut rand::rngs::SmallRng::seed_from_u64(5))
            .unwrap();
        let back = from_text(&to_text(&topo)).unwrap();
        // Float round-trip through shortest-representation formatting is
        // exact in Rust.
        assert_eq!(topo, back);
    }
}
