//! Regression: `#[cfg(test)]` modules that are *not* the last item in a
//! file must not exempt the library code that follows them.
//!
//! The original line-based scanner entered "test mode" at the first
//! `#[cfg(test)]` line and never left it, so any library code below a
//! test module was silently unchecked. The item-level model tracks test
//! scope by span instead; these tests pin that behavior.

use std::path::{Path, PathBuf};

use dirca_audit::model::parse_file;

fn fixture_root(variant: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/cfg-test-regression")
        .join(variant)
}

#[test]
fn library_code_below_a_test_module_is_still_checked() {
    let analysis = dirca_audit::analyze(&fixture_root("bad")).expect("fixture loads");
    let active: Vec<_> = analysis.active().collect();
    // Exactly one finding: the unwrap in `library_code` (line 13). The
    // identical unwrap inside the preceding test module (line 8) is
    // exempt.
    assert_eq!(active.len(), 1, "{active:?}");
    assert_eq!(active[0].rule.id(), "DA004");
    assert_eq!(active[0].file, "crates/net/src/lib.rs");
    assert_eq!((active[0].line, active[0].col), (13, 24));
}

#[test]
fn clean_variant_is_silent() {
    let analysis = dirca_audit::analyze(&fixture_root("clean")).expect("fixture loads");
    assert_eq!(analysis.active_count(), 0);
}

#[test]
fn test_scope_is_span_bounded_not_sticky() {
    // Direct model-level pin of the same property, independent of any
    // rule: lines inside the test module are test scope, lines after its
    // closing brace are not.
    let src = "\
#[cfg(test)]
mod tests {
    fn scratch() {}
}

pub fn library() {}
";
    let file = parse_file("crates/net/src/lib.rs".to_string(), src.to_string());
    assert!(file.is_test_line(2), "inside the module");
    assert!(file.is_test_line(3), "inside the module");
    assert!(!file.is_test_line(6), "after the closing brace");
}
