//! End-to-end tests of the `dirca-audit` binary: exit codes, human and
//! JSON output, the baseline round trip, and the real-workspace gate.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dirca_audit::json::{self, Value};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dirca-audit"))
}

fn fixture_root(rule: &str, variant: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(variant)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn clean_fixture_exits_zero() {
    let out = bin()
        .args(["--root"])
        .arg(fixture_root("unwrap", "clean"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 active finding(s)"));
}

#[test]
fn bad_fixture_exits_one_with_span_and_snippet() {
    let out = bin()
        .args(["--root"])
        .arg(fixture_root("unwrap", "bad"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains("crates/analysis/src/lib.rs:3:24: [DA004 unwrap]"),
        "missing pinned span in:\n{text}"
    );
    assert!(text.contains("v.first().copied().unwrap()"), "{text}");
    assert!(text.contains("1 active finding(s)"), "{text}");
}

#[test]
fn usage_errors_exit_two() {
    let bad_flag = bin().args(["--format", "yaml"]).output().expect("spawn");
    assert_eq!(bad_flag.status.code(), Some(2));
    let bad_root = bin()
        .args(["--root", "/nonexistent-dirca-root"])
        .output()
        .expect("spawn");
    assert_eq!(bad_root.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_root.stderr).contains("dirca-audit:"));
    let bad_ref = bin()
        .args(["--diff-base", "not-a-real-ref-00000"])
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("spawn");
    assert_eq!(bad_ref.status.code(), Some(2));
}

#[test]
fn list_rules_prints_the_whole_catalog() {
    let out = bin().arg("--list-rules").output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 9, "{text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with(&format!("DA00{}", i + 1)),
            "line {i}: {line}"
        );
    }
}

#[test]
fn json_output_round_trips_through_the_reader() {
    let out = bin()
        .args(["--format", "json", "--root"])
        .arg(fixture_root("dispatch-purity", "bad"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let doc = json::parse(&stdout(&out)).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("dirca-audit/1")
    );
    // The rule catalog rides along so consumers can map IDs to prose.
    let rules = doc.get("rules").and_then(Value::as_arr).expect("rules");
    assert_eq!(rules.len(), 9);
    assert_eq!(rules[0].get("id").and_then(Value::as_str), Some("DA001"));
    // Findings carry the full span; the println snippet exercises quote
    // escaping through write + parse.
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .expect("findings");
    assert_eq!(findings.len(), 2);
    let f = &findings[1];
    assert_eq!(f.get("rule").and_then(Value::as_str), Some("DA007"));
    assert_eq!(
        f.get("file").and_then(Value::as_str),
        Some("crates/mac/src/lib.rs")
    );
    assert_eq!(f.get("line").and_then(Value::as_num), Some(5.0));
    assert_eq!(
        f.get("snippet").and_then(Value::as_str),
        Some("println!(\"{x}\");")
    );
    let summary = doc.get("summary").expect("summary");
    assert_eq!(summary.get("active").and_then(Value::as_num), Some(2.0));
    assert_eq!(summary.get("suppressed").and_then(Value::as_num), Some(0.0));
}

#[test]
fn baseline_round_trip_absorbs_findings() {
    let dir = std::env::temp_dir().join(format!("dirca-audit-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let baseline = dir.join("baseline.json");

    // Write the bad fixture's findings into a baseline…
    let write = bin()
        .args(["--write-baseline", "--baseline"])
        .arg(&baseline)
        .arg("--root")
        .arg(fixture_root("unwrap", "bad"))
        .output()
        .expect("spawn");
    assert_eq!(write.status.code(), Some(0), "{}", stdout(&write));
    let doc = json::parse(&std::fs::read_to_string(&baseline).expect("baseline written"))
        .expect("valid baseline JSON");
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some("dirca-audit-baseline/1")
    );
    assert_eq!(
        doc.get("entries")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(1)
    );

    // …then the same run under that baseline gates nothing.
    let gated = bin()
        .args(["--baseline"])
        .arg(&baseline)
        .arg("--root")
        .arg(fixture_root("unwrap", "bad"))
        .output()
        .expect("spawn");
    assert_eq!(gated.status.code(), Some(0), "{}", stdout(&gated));
    assert!(
        stdout(&gated).contains("0 active finding(s) (0 suppressed, 1 baselined)"),
        "{}",
        stdout(&gated)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn real_workspace_is_clean_under_the_empty_committed_baseline() {
    // The acceptance gate: the analyzer over the actual workspace, with
    // the checked-in baseline, reports zero active findings.
    let root = workspace_root();
    let committed = std::fs::read_to_string(root.join("audit-baseline.json"))
        .expect("committed baseline exists");
    let doc = json::parse(&committed).expect("valid baseline");
    assert_eq!(
        doc.get("entries")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0),
        "workspace policy: the committed baseline stays empty"
    );
    let out = bin().arg("--root").arg(&root).output().expect("spawn");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace has active findings:\n{}",
        stdout(&out)
    );
}
