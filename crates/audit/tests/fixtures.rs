//! Fixture-corpus tests: every rule has a `bad` tree that fires with
//! pinned IDs and spans, and a `clean` tree that stays silent.
//!
//! Each fixture under `tests/fixtures/<rule>/{bad,clean}/` is a miniature
//! workspace (`crates/<name>/src/*.rs`) loaded through the same
//! [`dirca_audit::analyze`] entry point the CLI uses, so these tests pin
//! the real end-to-end pipeline: lexer → model → rules → suppressions.

use std::path::{Path, PathBuf};

use dirca_audit::diag::Analysis;

fn fixture_root(rule: &str, variant: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(variant)
}

fn analyze(rule: &str, variant: &str) -> Analysis {
    let root = fixture_root(rule, variant);
    dirca_audit::analyze(&root)
        .unwrap_or_else(|e| panic!("fixture {rule}/{variant} failed to load: {e}"))
}

/// Active findings as `(rule id, file, line)` triples, in report order.
fn active(analysis: &Analysis) -> Vec<(&str, &str, u32)> {
    analysis
        .active()
        .map(|f| (f.rule.id(), f.file.as_str(), f.line))
        .collect()
}

fn assert_clean(rule: &str) {
    let analysis = analyze(rule, "clean");
    assert_eq!(
        active(&analysis),
        Vec::<(&str, &str, u32)>::new(),
        "clean fixture for {rule} must be silent"
    );
}

#[test]
fn hash_order_bad_flags_every_hash_collection_use() {
    let analysis = analyze("hash-order", "bad");
    assert_eq!(
        active(&analysis),
        vec![
            ("DA001", "crates/net/src/lib.rs", 2),
            ("DA001", "crates/net/src/lib.rs", 4),
            ("DA001", "crates/net/src/lib.rs", 5),
        ]
    );
}

#[test]
fn hash_order_clean_is_silent() {
    assert_clean("hash-order");
}

#[test]
fn wall_clock_entropy_bad_flags_thread_rng() {
    let analysis = analyze("wall-clock-entropy", "bad");
    assert_eq!(
        active(&analysis),
        vec![("DA002", "crates/sim/src/lib.rs", 3)]
    );
    // Token-level span: the finding points at the `thread_rng` ident.
    let f = analysis.active().next().expect("one finding");
    assert_eq!(f.col, 23);
    assert!(f.snippet.contains("thread_rng"));
}

#[test]
fn wall_clock_entropy_clean_ignores_string_literals() {
    // The clean fixture spells the banned names inside a string literal;
    // the lexer must keep them invisible to the rules.
    assert_clean("wall-clock-entropy");
}

#[test]
fn float_eq_bad_flags_literal_comparison() {
    let analysis = analyze("float-eq", "bad");
    assert_eq!(
        active(&analysis),
        vec![("DA003", "crates/stats/src/lib.rs", 3)]
    );
}

#[test]
fn float_eq_clean_tolerance_compare_and_test_scope() {
    assert_clean("float-eq");
}

#[test]
fn unwrap_bad_flags_library_unwrap() {
    let analysis = analyze("unwrap", "bad");
    assert_eq!(
        active(&analysis),
        vec![("DA004", "crates/analysis/src/lib.rs", 3)]
    );
    let f = analysis.active().next().expect("one finding");
    assert_eq!((f.line, f.col), (3, 24), "span points at the unwrap ident");
}

#[test]
fn unwrap_clean_expect_and_test_scope() {
    assert_clean("unwrap");
}

#[test]
fn salt_unique_bad_flags_all_three_shapes() {
    // Duplicate value in the registry, a salt const outside the registry,
    // and a raw literal at a derive_seed call site.
    let analysis = analyze("salt-unique", "bad");
    assert_eq!(
        active(&analysis),
        vec![
            ("DA005", "crates/net/src/salts.rs", 3),
            ("DA005", "crates/net/src/world.rs", 2),
            ("DA005", "crates/net/src/world.rs", 6),
        ]
    );
    let messages: Vec<&str> = analysis.active().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("duplicates the value"), "{messages:?}");
    assert!(messages[1].contains("outside the registry"), "{messages:?}");
    assert!(messages[2].contains("literal stream salt"), "{messages:?}");
}

#[test]
fn salt_unique_clean_registry_and_const_call_sites() {
    assert_clean("salt-unique");
}

#[test]
fn gate_symmetry_bad_flags_hook_without_twin() {
    let analysis = analyze("gate-symmetry", "bad");
    let found = active(&analysis);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, "DA006");
    assert_eq!(found[0].1, "crates/sim/src/lib.rs");
}

#[test]
fn gate_symmetry_clean_twin_and_private_helper() {
    assert_clean("gate-symmetry");
}

#[test]
fn dispatch_purity_bad_flags_refcell_and_println() {
    let analysis = analyze("dispatch-purity", "bad");
    assert_eq!(
        active(&analysis),
        vec![
            ("DA007", "crates/mac/src/lib.rs", 2),
            ("DA007", "crates/mac/src/lib.rs", 5),
        ]
    );
}

#[test]
fn dispatch_purity_clean_fmt_impl_is_fine() {
    assert_clean("dispatch-purity");
}

#[test]
fn panic_path_bad_flags_indexing_and_expect() {
    let analysis = analyze("panic-path", "bad");
    assert_eq!(
        active(&analysis),
        vec![
            ("DA008", "crates/sim/src/queue.rs", 3),
            ("DA008", "crates/sim/src/queue.rs", 4),
        ]
    );
}

#[test]
fn panic_path_clean_marker_covers_the_fn() {
    assert_clean("panic-path");
}

#[test]
fn stale_allow_bad_flags_bare_stale_and_reasonless() {
    let analysis = analyze("stale-allow", "bad");
    assert_eq!(
        active(&analysis),
        vec![
            ("DA009", "crates/net/src/lib.rs", 3),
            ("DA009", "crates/net/src/lib.rs", 6),
            ("DA009", "crates/net/src/lib.rs", 9),
        ]
    );
    let messages: Vec<&str> = analysis.active().map(|f| f.message.as_str()).collect();
    assert!(messages[0].contains("#[allow]"), "{messages:?}");
    assert!(messages[1].contains("stale audit-allow"), "{messages:?}");
    assert!(
        messages[2].contains("without a justification"),
        "{messages:?}"
    );
}

#[test]
fn stale_allow_clean_live_suppression_counts_as_used() {
    let analysis = analyze("stale-allow", "clean");
    assert_eq!(active(&analysis), Vec::<(&str, &str, u32)>::new());
    // The clean fixture carries one *suppressed* unwrap finding: the
    // suppression is live (so no stale report) but the finding is kept in
    // the report, marked suppressed.
    let suppressed: Vec<_> = analysis.findings.iter().filter(|f| f.suppressed).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule.id(), "DA004");
}
