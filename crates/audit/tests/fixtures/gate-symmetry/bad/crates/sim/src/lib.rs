//! Fixture: gated pub hook with no counterpart.
#[cfg(feature = "trace")]
pub fn set_probe(on: bool) {
    let _ = on;
}
