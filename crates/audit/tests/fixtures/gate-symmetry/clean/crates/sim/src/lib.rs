//! Fixture: gated hook with a no-op twin; private helpers exempt.
#[cfg(feature = "trace")]
pub fn set_probe(on: bool) {
    let _ = on;
}

/// No-op counterpart so call sites compile with the feature off.
#[cfg(not(feature = "trace"))]
pub fn set_probe(_on: bool) {}

#[cfg(feature = "trace")]
fn private_helper() {}
