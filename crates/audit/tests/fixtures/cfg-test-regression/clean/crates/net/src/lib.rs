//! Fixture: non-trailing test module, clean library code after it.
#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}

pub fn library_code(v: &[u32]) -> u32 {
    v.first().copied().expect("callers pass non-empty slices")
}
