//! Fixture: the old line-scanner bug — a non-trailing `#[cfg(test)]`
//! module must not exempt the library code that follows it.
#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}

pub fn library_code(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
