//! Fixture: justified allow and a working suppression.
#[allow(dead_code)] // kept for the ablation harness
fn unused() {}

pub fn first(v: &[u32]) -> u32 {
    v.first().copied().unwrap() // audit-allow(unwrap): fixture exercises a live suppression
}
