//! Fixture: unjustified and stale suppressions.

#[allow(dead_code)]
fn unused() {}

// audit-allow(unwrap): nothing here to suppress
pub fn fine() {}

pub fn also_fine() {} // audit-allow(unwrap)
