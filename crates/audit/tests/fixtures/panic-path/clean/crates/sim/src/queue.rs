//! Fixture: justified panic sites pass.
pub fn pop(slots: &mut Vec<Option<u32>>, i: usize) -> u32 {
    // panic-path: callers only pass indices of occupied slots.
    let v = slots[i];
    v.expect("slot occupied")
}
