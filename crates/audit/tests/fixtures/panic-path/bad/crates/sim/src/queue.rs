//! Fixture: unjustified panic sites on the hot path.
pub fn pop(slots: &mut Vec<Option<u32>>, i: usize) -> u32 {
    let v = slots[i];
    v.expect("slot occupied")
}
