//! Fixture: seeded streams pass; "std::time" in a string is invisible.
pub fn seed(master: u64) -> u64 {
    let _ = "std::time::Instant::now() thread_rng from_entropy";
    master.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
