//! Fixture: entropy draw in a deterministic crate.
pub fn seed() -> u64 {
    let mut r = rand::thread_rng();
    r.random()
}
