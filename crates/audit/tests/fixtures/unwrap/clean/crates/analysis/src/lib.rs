//! Fixture: documented expect and test-scope unwrap pass.
pub fn first(v: &[u32]) -> u32 {
    v.first().copied().expect("callers pass non-empty slices")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
