//! Fixture: call sites bind salts to registry consts.
use crate::salts::{ALPHA_STREAM_SALT, BETA_STREAM_SALT};

pub fn seeds(master: u64, t: u64) -> (u64, u64) {
    let a = derive_seed(master, ALPHA_STREAM_SALT);
    let b = derive_seed(master, BETA_STREAM_SALT + t);
    (a, b)
}
