//! Fixture: unique salts in the registry.
pub const ALPHA_STREAM_SALT: u64 = 0xA11CE;
pub const BETA_STREAM_SALT: u64 = 0xB0B;
