//! Fixture: registry with a duplicated salt value.
pub const ALPHA_STREAM_SALT: u64 = 0xA11CE;
pub const BETA_STREAM_SALT: u64 = 0xA11CE;
