//! Fixture: salt const outside the registry and a literal call-site salt.
const ROGUE_STREAM_SALT: u64 = 0xBAD;

pub fn seeds(master: u64, t: u64) -> (u64, u64) {
    let a = derive_seed(master, ROGUE_STREAM_SALT);
    let b = derive_seed(master, 0xFACE + t);
    (a, b)
}
