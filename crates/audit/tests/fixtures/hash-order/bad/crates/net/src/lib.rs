//! Fixture: hash collections in an ordering-sensitive crate.
use std::collections::HashMap;

pub fn stats() -> HashMap<u32, u32> {
    HashMap::new()
}
