//! Fixture: ordered collections pass.
use std::collections::BTreeMap;

pub fn stats() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    // HashMap is fine in test scope.
    use std::collections::HashMap;

    fn scratch() -> HashMap<u32, u32> {
        HashMap::new()
    }
}
