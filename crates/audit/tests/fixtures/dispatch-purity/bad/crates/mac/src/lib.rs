//! Fixture: interior mutability and output in a dispatch crate.
use std::cell::RefCell;

pub fn log(x: u32) {
    println!("{x}");
}
