//! Fixture: pure state machine passes; fmt is fine.
use std::fmt;

pub struct S(pub u32);

impl fmt::Display for S {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
