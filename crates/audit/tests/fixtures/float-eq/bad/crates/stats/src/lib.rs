//! Fixture: direct float-literal equality.
pub fn at_origin(x: f64) -> bool {
    x == 0.25
}
