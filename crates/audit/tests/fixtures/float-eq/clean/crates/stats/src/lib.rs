//! Fixture: tolerance comparison passes; test scope is exempt.
pub fn at_origin(x: f64) -> bool {
    (x - 0.25).abs() < 1e-12
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_in_tests_is_fine() {
        assert!(super::at_origin(0.25) == true);
        let y = 0.25;
        assert!(y == 0.25);
    }
}
