//! Diagnostics: the rule catalog with stable IDs, findings with
//! `file:line:col` spans, and the human / JSON renderers.

use std::fmt;

/// Every rule the analyzer knows, with a stable ID that external tooling
/// (CI annotations, the baseline file) can key on. IDs are append-only:
/// a retired rule's ID is never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// DA001: hash-ordered collections in simulation-ordering crates.
    HashOrder,
    /// DA002: wall-clock or entropy sources in deterministic crates.
    WallClockEntropy,
    /// DA003: direct float-literal `==`/`!=` comparison outside tests.
    FloatEq,
    /// DA004: `.unwrap()` in library code.
    Unwrap,
    /// DA005: RNG stream salts — duplicates, literals at derivation
    /// sites, or salt consts defined outside the registry.
    SaltUnique,
    /// DA006: feature-gated public functions without a `cfg(not(...))`
    /// no-op counterpart.
    GateSymmetry,
    /// DA007: interior mutability, I/O, or wall-clock in event-dispatch
    /// crates.
    DispatchPurity,
    /// DA008: unjustified indexing/`expect`/`unwrap` in transmit
    /// hot-path files.
    PanicPath,
    /// DA009: stale or unjustified suppressions (`#[allow]` without a
    /// justification, `audit-allow` that suppresses nothing).
    StaleAllow,
}

impl Rule {
    /// All rules, in ID order.
    pub const ALL: &'static [Rule] = &[
        Rule::HashOrder,
        Rule::WallClockEntropy,
        Rule::FloatEq,
        Rule::Unwrap,
        Rule::SaltUnique,
        Rule::GateSymmetry,
        Rule::DispatchPurity,
        Rule::PanicPath,
        Rule::StaleAllow,
    ];

    /// The rule's stable ID (`DA001` …).
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashOrder => "DA001",
            Rule::WallClockEntropy => "DA002",
            Rule::FloatEq => "DA003",
            Rule::Unwrap => "DA004",
            Rule::SaltUnique => "DA005",
            Rule::GateSymmetry => "DA006",
            Rule::DispatchPurity => "DA007",
            Rule::PanicPath => "DA008",
            Rule::StaleAllow => "DA009",
        }
    }

    /// The rule's short name, used in `audit-allow(name)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::WallClockEntropy => "wall-clock-entropy",
            Rule::FloatEq => "float-eq",
            Rule::Unwrap => "unwrap",
            Rule::SaltUnique => "salt-unique",
            Rule::GateSymmetry => "gate-symmetry",
            Rule::DispatchPurity => "dispatch-purity",
            Rule::PanicPath => "panic-path",
            Rule::StaleAllow => "stale-allow",
        }
    }

    /// One-line description for `--list-rules` and the JSON header.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashOrder => {
                "hash collections have randomized iteration order; use BTreeMap/BTreeSet/Vec in simulation-ordering crates"
            }
            Rule::WallClockEntropy => {
                "wall clocks and entropy sources break reproducibility; use the event-queue clock and seeded rng streams"
            }
            Rule::FloatEq => "direct f64 equality against a float literal; compare with a tolerance",
            Rule::Unwrap => {
                "library code must not unwrap; return a Result or use expect(\"why this cannot fail\")"
            }
            Rule::SaltUnique => {
                "RNG stream salts must be unique, const-bound, and defined in the dirca-net salt registry"
            }
            Rule::GateSymmetry => {
                "feature-gated public functions need a cfg(not(feature)) no-op counterpart so the gated layer stays non-perturbing by construction"
            }
            Rule::DispatchPurity => {
                "event-dispatch crates must stay pure: no interior mutability, I/O, or wall-clock reachable from dispatch"
            }
            Rule::PanicPath => {
                "indexing and expect/unwrap on the transmit hot path must carry a justification comment (panic-path: … or a # Panics doc)"
            }
            Rule::StaleAllow => {
                "suppressions must earn their keep: #[allow] needs a justification comment, audit-allow must match a finding"
            }
        }
    }

    /// Resolves a rule from its ID or name.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

/// One diagnostic produced by a rule pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of this specific violation.
    pub message: String,
    /// Trimmed text of the offending line — the stable key the baseline
    /// matches on, so unrelated line drift does not invalidate entries.
    pub snippet: String,
    /// Whether an `audit-allow` comment suppressed this finding.
    pub suppressed: bool,
    /// Whether a baseline entry absorbed this finding.
    pub baselined: bool,
}

impl Finding {
    /// Whether the finding still gates (neither suppressed nor
    /// baselined).
    pub fn active(&self) -> bool {
        !self.suppressed && !self.baselined
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{} {}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// The complete result of one analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// Every finding, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Crates scanned.
    pub crates: usize,
    /// Files scanned.
    pub files: usize,
}

impl Analysis {
    /// Findings that still gate the run.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.active())
    }

    /// Count of active findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Renders the machine-readable JSON document (schema
    /// `dirca-audit/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"dirca-audit/1\",\n  \"rules\": [\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"name\": {}, \"description\": {}}}{}\n",
                json_str(rule.id()),
                json_str(rule.name()),
                json_str(rule.describe()),
                if i + 1 < Rule::ALL.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}, \"suppressed\": {}, \"baselined\": {}}}{}\n",
                json_str(f.rule.id()),
                json_str(f.rule.name()),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message),
                json_str(&f.snippet),
                f.suppressed,
                f.baselined,
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        let suppressed = self.findings.iter().filter(|f| f.suppressed).count();
        let baselined = self.findings.iter().filter(|f| f.baselined).count();
        out.push_str(&format!(
            "  ],\n  \"summary\": {{\"crates\": {}, \"files\": {}, \"total\": {}, \"active\": {}, \"suppressed\": {}, \"baselined\": {}}}\n}}\n",
            self.crates,
            self.files,
            self.findings.len(),
            self.active_count(),
            suppressed,
            baselined,
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate rule id");
        assert_eq!(ids[0], "DA001");
        assert_eq!(Rule::parse("DA004"), Some(Rule::Unwrap));
        assert_eq!(Rule::parse("unwrap"), Some(Rule::Unwrap));
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn display_format() {
        let f = Finding {
            rule: Rule::Unwrap,
            file: "crates/net/src/world.rs".into(),
            line: 3,
            col: 9,
            message: "library code must not unwrap".into(),
            snippet: "x.unwrap();".into(),
            suppressed: false,
            baselined: false,
        };
        assert_eq!(
            f.to_string(),
            "crates/net/src/world.rs:3:9: [DA004 unwrap] library code must not unwrap"
        );
    }
}
