//! The checked-in baseline: known findings that do not gate CI.
//!
//! The baseline file (`audit-baseline.json` at the workspace root) lists
//! findings that predate a rule's introduction. A finding matches an
//! entry on `(rule, file, snippet)` — the *trimmed line text*, not the
//! line number — so unrelated edits above a baselined line do not
//! invalidate it, while any edit to the line itself (which should fix the
//! finding) does. The workspace policy is an **empty** baseline; the
//! mechanism exists so a future rule can land before its cleanup
//! completes without turning CI red.

use std::path::Path;

use crate::diag::{json_str, Analysis, Finding, Rule};
use crate::json::{self, Value};

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule ID (`DA004`).
    pub rule: Rule,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed offending line text.
    pub snippet: String,
}

/// A loaded baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Loads a baseline from `path`. A missing file is an empty baseline;
    /// a malformed file is an error (a silently ignored baseline would
    /// un-gate CI).
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let schema = doc.get("schema").and_then(Value::as_str);
        if schema != Some("dirca-audit-baseline/1") {
            return Err(format!(
                "{}: unsupported baseline schema {schema:?}",
                path.display()
            ));
        }
        let mut entries = Vec::new();
        for item in doc
            .get("entries")
            .and_then(Value::as_arr)
            .unwrap_or_default()
        {
            let rule = item
                .get("rule")
                .and_then(Value::as_str)
                .and_then(Rule::parse)
                .ok_or_else(|| format!("{}: entry with bad rule", path.display()))?;
            let file = item
                .get("file")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: entry without file", path.display()))?
                .to_string();
            let snippet = item
                .get("snippet")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: entry without snippet", path.display()))?
                .to_string();
            entries.push(Entry {
                rule,
                file,
                snippet,
            });
        }
        Ok(Baseline { entries })
    }

    /// Marks findings matched by an entry as baselined. Each entry
    /// absorbs any number of identical findings (a snippet may repeat in
    /// a file).
    pub fn apply(&self, findings: &mut [Finding]) {
        for finding in findings {
            if self.entries.iter().any(|e| {
                e.rule == finding.rule && e.file == finding.file && e.snippet == finding.snippet
            }) {
                finding.baselined = true;
            }
        }
    }

    /// Renders an analysis' still-active findings as a baseline document
    /// (for `--write-baseline`).
    pub fn render(analysis: &Analysis) -> String {
        let mut out =
            String::from("{\n  \"schema\": \"dirca-audit-baseline/1\",\n  \"entries\": [\n");
        let active: Vec<_> = analysis.active().collect();
        for (i, f) in active.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"snippet\": {}}}{}\n",
                json_str(f.rule.id()),
                json_str(&f.file),
                json_str(&f.snippet),
                if i + 1 < active.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            col: 1,
            message: "m".into(),
            snippet: snippet.into(),
            suppressed: false,
            baselined: false,
        }
    }

    #[test]
    fn round_trip() {
        let analysis = Analysis {
            findings: vec![finding(Rule::Unwrap, "crates/net/src/x.rs", "x.unwrap();")],
            crates: 1,
            files: 1,
        };
        let text = Baseline::render(&analysis);
        let dir = std::env::temp_dir().join(format!("dirca-audit-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("baseline.json");
        std::fs::write(&path, &text).expect("write");
        let loaded = Baseline::load(&path).expect("load");
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.entries[0].rule, Rule::Unwrap);
        let mut findings = vec![
            finding(Rule::Unwrap, "crates/net/src/x.rs", "x.unwrap();"),
            finding(Rule::Unwrap, "crates/net/src/x.rs", "y.unwrap();"),
        ];
        loaded.apply(&mut findings);
        assert!(findings[0].baselined);
        assert!(!findings[1].baselined, "different snippet does not match");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        let bl = Baseline::load(Path::new("/nonexistent/audit-baseline.json")).expect("ok");
        assert!(bl.entries.is_empty());
    }

    #[test]
    fn malformed_is_an_error() {
        let dir = std::env::temp_dir().join(format!("dirca-audit-bl2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"schema\": \"other/9\"}").expect("write");
        assert!(Baseline::load(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
