//! Parsing and evaluation of `#[cfg(...)]` predicates.
//!
//! The model builder hands every `cfg` attribute's argument tokens to
//! [`parse`], producing a small predicate tree that rules can query:
//! *is this item compiled only under `cfg(test)`?* and *which features
//! gate it, positively or negatively?* Nested combinators (`all`, `any`,
//! `not`) are handled structurally, so `#[cfg(all(test, feature = "x"))]`
//! and `#[cfg(not(feature = "trace"))]` mean exactly what they say.

use crate::lexer::{Token, TokenKind};

/// One `cfg` predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cfg {
    /// A bare or valued atom: `test`, `unix`, `feature = "trace"`.
    Atom {
        /// The atom's name (`test`, `feature`, `target_os`, …).
        name: String,
        /// The atom's value for `name = "value"` forms.
        value: Option<String>,
    },
    /// `all(...)`: every child must hold.
    All(Vec<Cfg>),
    /// `any(...)`: at least one child must hold.
    Any(Vec<Cfg>),
    /// `not(...)`: the child must not hold.
    Not(Box<Cfg>),
}

impl Cfg {
    /// Whether code under this predicate is compiled **only** when
    /// `cfg(test)` is active — the definition of test scope for the
    /// exemption rules. `all(test, …)` qualifies (it cannot be active
    /// without `test`); `any(test, other)` does not (it can).
    pub fn definitely_test(&self) -> bool {
        match self {
            Cfg::Atom { name, .. } => name == "test",
            Cfg::All(children) => children.iter().any(Cfg::definitely_test),
            Cfg::Any(children) => !children.is_empty() && children.iter().all(Cfg::definitely_test),
            Cfg::Not(_) => false,
        }
    }

    /// Features this predicate asserts **positively** (the item only
    /// compiles when the feature is on): `feature = "x"` at the top level
    /// or under `all`.
    pub fn positive_features(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_features(true, &mut out);
        out
    }

    /// Features this predicate asserts **negatively** (the item only
    /// compiles when the feature is off): `not(feature = "x")` at the top
    /// level or under `all`.
    pub fn negative_features(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_features(false, &mut out);
        out
    }

    fn collect_features(&self, positive: bool, out: &mut Vec<String>) {
        match self {
            Cfg::Atom { name, value } => {
                if positive && name == "feature" {
                    if let Some(v) = value {
                        out.push(v.clone());
                    }
                }
            }
            Cfg::All(children) => {
                for c in children {
                    c.collect_features(positive, out);
                }
            }
            // A feature under `any` does not gate the item by itself.
            Cfg::Any(_) => {}
            Cfg::Not(inner) => {
                // One negation flips polarity; deeper stacks are not worth
                // modelling (`not(not(feature))` does not occur in practice).
                if let Cfg::Atom { name, value } = inner.as_ref() {
                    if !positive && name == "feature" {
                        if let Some(v) = value {
                            out.push(v.clone());
                        }
                    }
                }
            }
        }
    }
}

/// Parses the tokens **between** the parentheses of `cfg(...)` into a
/// predicate. Returns `None` on empty or unrecognized input (the caller
/// treats an unparsed cfg as unconditional, erring toward scanning).
pub fn parse(tokens: &[Token], source: &str) -> Option<Cfg> {
    let mut pos = 0;
    let cfg = parse_pred(tokens, &mut pos, source)?;
    Some(cfg)
}

fn parse_pred(tokens: &[Token], pos: &mut usize, source: &str) -> Option<Cfg> {
    let tok = tokens.get(*pos)?;
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let name = tok.text(source).to_string();
    *pos += 1;
    match tokens.get(*pos).map(|t| t.text(source)) {
        Some("(") => {
            *pos += 1; // consume `(`
            let mut children = Vec::new();
            loop {
                match tokens.get(*pos).map(|t| t.text(source)) {
                    Some(")") => {
                        *pos += 1;
                        break;
                    }
                    Some(",") => {
                        *pos += 1;
                    }
                    Some(_) => children.push(parse_pred(tokens, pos, source)?),
                    None => return None,
                }
            }
            match name.as_str() {
                "all" => Some(Cfg::All(children)),
                "any" => Some(Cfg::Any(children)),
                "not" => Some(Cfg::Not(Box::new(children.into_iter().next()?))),
                // Unknown combinator (e.g. `target_has_atomic("8")`): treat
                // as an opaque atom.
                _ => Some(Cfg::Atom { name, value: None }),
            }
        }
        Some("=") => {
            *pos += 1; // consume `=`
            let val = tokens.get(*pos)?;
            *pos += 1;
            let text = val.text(source);
            let value = text.trim_matches('"').to_string();
            Some(Cfg::Atom {
                name,
                value: Some(value),
            })
        }
        _ => Some(Cfg::Atom { name, value: None }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_str(s: &str) -> Cfg {
        let lexed = lex(s);
        parse(&lexed.tokens, s).expect("predicate parses")
    }

    #[test]
    fn bare_test_atom() {
        let cfg = parse_str("test");
        assert!(cfg.definitely_test());
        assert!(cfg.positive_features().is_empty());
    }

    #[test]
    fn feature_atom() {
        let cfg = parse_str(r#"feature = "trace""#);
        assert!(!cfg.definitely_test());
        assert_eq!(cfg.positive_features(), vec!["trace"]);
        assert!(cfg.negative_features().is_empty());
    }

    #[test]
    fn negated_feature() {
        let cfg = parse_str(r#"not(feature = "trace")"#);
        assert!(cfg.positive_features().is_empty());
        assert_eq!(cfg.negative_features(), vec!["trace"]);
        assert!(!cfg.definitely_test());
    }

    #[test]
    fn all_with_test_is_test_only() {
        let cfg = parse_str(r#"all(test, feature = "audit")"#);
        assert!(cfg.definitely_test());
        assert_eq!(cfg.positive_features(), vec!["audit"]);
    }

    #[test]
    fn any_with_test_is_not_test_only() {
        let cfg = parse_str(r#"any(test, feature = "audit")"#);
        assert!(!cfg.definitely_test());
        assert!(cfg.positive_features().is_empty());
    }

    #[test]
    fn nested_not_all() {
        let cfg = parse_str(r#"not(all(test, unix))"#);
        assert!(!cfg.definitely_test());
    }
}
