//! DA009 (attribute half) — `#[allow(...)]` needs a justification.
//!
//! A lint suppression with no stated reason rots: nobody can tell whether
//! it is still needed or what it hides. Outside test scope, every
//! `#[allow]` / `#[expect]` attribute must carry a comment on its own
//! line or the line directly above. (The `audit-allow` half of DA009 —
//! stale or reasonless analyzer suppressions — lives in
//! [`crate::suppress`].)

use std::collections::BTreeSet;

use crate::diag::{Finding, Rule};
use crate::model::{CrateSrc, SourceFile};

use super::finding;

/// Runs the attribute check over one file.
pub fn run(_krate: &CrateSrc, file: &SourceFile, out: &mut Vec<Finding>) {
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    for c in &file.comments {
        for line in c.line..=c.end_line {
            comment_lines.insert(line);
        }
    }
    for item in file.all_items() {
        for attr in &item.attrs {
            if attr.name != "allow" && attr.name != "expect" {
                continue;
            }
            if file.is_test_line(attr.line) {
                continue;
            }
            let justified = comment_lines.contains(&attr.line)
                || (attr.line > 1 && comment_lines.contains(&(attr.line - 1)));
            if !justified {
                out.push(finding(
                    file,
                    Rule::StaleAllow,
                    attr.line,
                    attr.col,
                    format!(
                        "`#[{}]` without a justification comment on this or the \
                         preceding line",
                        attr.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_source("net", "crates/net/src/x.rs", src);
        let mut out = Vec::new();
        run(&ws.crates[0], &ws.crates[0].files[0], &mut out);
        out
    }

    #[test]
    fn bare_allow_is_flagged() {
        let out = run_on("#[allow(dead_code)]\nfn f() {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::StaleAllow);
    }

    #[test]
    fn commented_allow_is_clean() {
        let trailing = "#[allow(clippy::too_many_arguments)] // constructor plumbing\nfn f() {}\n";
        assert!(run_on(trailing).is_empty());
        let above = "// keeps the public signature stable across features\n#[allow(dead_code)]\nfn f() {}\n";
        assert!(run_on(above).is_empty());
    }

    #[test]
    fn test_scope_allows_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[allow(dead_code)]\n    fn f() {}\n}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn other_attributes_are_ignored() {
        let src = "#[inline]\n#[derive(Clone)]\npub struct S;\n";
        assert!(run_on(src).is_empty());
    }
}
