//! DA005 — RNG stream-salt discipline.
//!
//! Independent RNG streams are derived with `derive_seed(master, salt)`;
//! two streams sharing a salt silently correlate. Three checks keep the
//! salt space honest:
//!
//! 1. every `*_STREAM_SALT` const must live in the registry file
//!    ([`super::SALT_REGISTRY_FILE`]), the one place where uniqueness is
//!    reviewable;
//! 2. no two salt consts may share a value;
//! 3. `derive_seed` call sites must pass a named const, not an integer
//!    literal (literals dodge the registry entirely).

use crate::diag::{Finding, Rule};
use crate::lexer::{self, TokenKind};
use crate::model::{CrateSrc, ItemKind, SourceFile, Workspace};

use super::{finding, SALT_REGISTRY_FILE};

/// One discovered salt constant.
#[derive(Debug)]
struct SaltConst<'a> {
    file: &'a SourceFile,
    name: String,
    line: u32,
    col: u32,
    /// The literal value, when the initializer is a single integer token.
    value: Option<u128>,
}

/// Runs the registry-location and uniqueness checks over the whole
/// workspace (cross-file by nature).
pub fn run_consts(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut consts: Vec<SaltConst<'_>> = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            for item in file.all_items() {
                if item.kind != ItemKind::Const
                    || !item.name.ends_with("_STREAM_SALT")
                    || file.is_test_line(item.line)
                {
                    continue;
                }
                let value = item.value_tokens.and_then(|(s, e)| {
                    let toks = &file.tokens[s..e];
                    match toks {
                        [only] if only.kind == TokenKind::Int => {
                            lexer::int_value(only.text(&file.source))
                        }
                        _ => None,
                    }
                });
                consts.push(SaltConst {
                    file,
                    name: item.name.clone(),
                    line: item.line,
                    col: item.col,
                    value,
                });
            }
        }
    }
    for c in &consts {
        if c.file.rel_path != SALT_REGISTRY_FILE {
            out.push(finding(
                c.file,
                Rule::SaltUnique,
                c.line,
                c.col,
                format!(
                    "stream salt `{}` is defined outside the registry; move it to {}",
                    c.name, SALT_REGISTRY_FILE
                ),
            ));
        }
    }
    // Pairwise value uniqueness: report each later duplicate against the
    // first definition of that value.
    for (i, c) in consts.iter().enumerate() {
        let Some(v) = c.value else { continue };
        if let Some(first) = consts[..i]
            .iter()
            .find(|p| p.value == Some(v) && p.name != c.name)
        {
            out.push(finding(
                c.file,
                Rule::SaltUnique,
                c.line,
                c.col,
                format!(
                    "stream salt `{}` duplicates the value of `{}` ({}:{}); correlated \
                     RNG streams",
                    c.name, first.name, first.file.rel_path, first.line
                ),
            ));
        }
    }
}

/// Flags integer literals in the salt position of `derive_seed(master,
/// salt)` calls in one file.
pub fn run_calls(_krate: &CrateSrc, file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let text = |i: usize| tokens[i].text(&file.source);
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident
            || text(i) != "derive_seed"
            || i + 1 >= tokens.len()
            || text(i + 1) != "("
            || file.is_test_line(tokens[i].line)
        {
            continue;
        }
        // Split the argument list at depth-0 commas; inspect the second
        // argument (the stream salt).
        let mut depth = 0i32;
        let mut arg_start = i + 2;
        let mut args: Vec<(usize, usize)> = Vec::new();
        let mut j = i + 1;
        while j < tokens.len() {
            match text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        args.push((arg_start, j));
                        break;
                    }
                }
                "," if depth == 1 => {
                    args.push((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(&(s, e)) = args.get(1) {
            if let Some(lit) = tokens[s..e].iter().find(|t| t.kind == TokenKind::Int) {
                out.push(finding(
                    file,
                    Rule::SaltUnique,
                    lit.line,
                    lit.col,
                    format!(
                        "literal stream salt `{}` at a derive_seed call; bind it to a \
                         documented const in {}",
                        lit.text(&file.source),
                        SALT_REGISTRY_FILE
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ws(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut ws = Workspace { crates: vec![] };
        for (path, src) in files {
            let one = Workspace::from_source("net", path, src);
            ws.crates.extend(one.crates);
        }
        let mut out = Vec::new();
        run_consts(&ws, &mut out);
        for krate in &ws.crates {
            for file in &krate.files {
                run_calls(krate, file, &mut out);
            }
        }
        out
    }

    #[test]
    fn registry_consts_with_unique_values_are_clean() {
        let out = run_ws(&[(
            SALT_REGISTRY_FILE,
            "pub const FAULT_STREAM_SALT: u64 = 0xFA17_1A11;\n\
             pub const TOPOLOGY_STREAM_SALT: u64 = 0xA11CE;\n",
        )]);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn duplicate_values_are_flagged_once() {
        let out = run_ws(&[(
            SALT_REGISTRY_FILE,
            "pub const A_STREAM_SALT: u64 = 0x10;\npub const B_STREAM_SALT: u64 = 0x10;\n",
        )]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("duplicates the value"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn salt_outside_registry_is_flagged() {
        let out = run_ws(&[(
            "crates/net/src/world.rs",
            "pub const FAULT_STREAM_SALT: u64 = 0xFA17_1A11;\n",
        )]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("outside the registry"));
    }

    #[test]
    fn literal_salt_at_call_site_is_flagged() {
        let out = run_ws(&[(
            "crates/net/src/world.rs",
            "fn f(seed: u64, t: u64) -> u64 { derive_seed(seed, 0xB0B + t) }\n",
        )]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("literal stream salt `0xB0B`"));
        // A named const in salt position is fine; literals in the *master*
        // position (first arg) are not salt material.
        let clean = run_ws(&[(
            "crates/net/src/world.rs",
            "fn f(s: u64) -> u64 { derive_seed(derive_seed(s, SALT), OTHER) }\n",
        )]);
        assert!(clean.is_empty(), "unexpected: {clean:?}");
    }

    #[test]
    fn underscored_hex_values_compare_equal() {
        let out = run_ws(&[(
            SALT_REGISTRY_FILE,
            "pub const A_STREAM_SALT: u64 = 0xFA17_1A11;\n\
             pub const B_STREAM_SALT: u64 = 0xFA171A11;\n",
        )]);
        assert_eq!(out.len(), 1, "same value spelled differently: {out:?}");
    }
}
