//! The rule engine: distinct passes over the workspace model.
//!
//! Each pass is a function from the model to findings; the driver in
//! [`crate::analyze_workspace`] runs every pass, applies suppressions and
//! the baseline, and sorts the result. Rule scoping (which crates a rule
//! applies to, which files count as the transmit hot path) lives here as
//! named constants so the policy is one greppable place.

pub mod allows;
pub mod bans;
pub mod gates;
pub mod purity;
pub mod salts;

use crate::diag::{Finding, Rule};
use crate::model::SourceFile;

/// Crates whose data structures feed event ordering: hash collections are
/// banned outright (DA001). The trace crate is included because its
/// recorder and metrics registry sit on the record path; the serve crate
/// because its pending-connection queue and checkpoint handling must be
/// deterministic for byte-identical resumed reports.
pub const ORDERING_CRATES: &[&str] = &[
    "sim",
    "mac",
    "net",
    "radio",
    "experiments",
    "trace",
    "serve",
];

/// Crates that must be reproducible end to end: no wall clocks, no
/// entropy (DA002).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "mac",
    "net",
    "radio",
    "topology",
    "experiments",
    "analysis",
    "geometry",
    "stats",
    "trace",
    "serve",
];

/// Crates whose library code is reachable from the event-dispatch loop:
/// no interior mutability, I/O, or wall-clock anywhere in them (DA007).
pub const DISPATCH_CRATES: &[&str] = &["sim", "net", "mac"];

/// Files on the transmit hot path: indexing and `expect`/`unwrap` there
/// must carry a justification comment (DA008).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/net/src/world.rs",
    "crates/sim/src/engine.rs",
    "crates/sim/src/queue.rs",
    "crates/mac/src/dcf.rs",
    "crates/radio/src/coverage.rs",
    "crates/radio/src/spatial.rs",
];

/// The single source of truth for RNG stream salts (DA005): every
/// `*_STREAM_SALT` const must live here.
pub const SALT_REGISTRY_FILE: &str = "crates/net/src/salts.rs";

/// Builds a finding with the snippet filled in from the file.
pub fn finding(file: &SourceFile, rule: Rule, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        col,
        message,
        snippet: file.line_text(line).to_string(),
        suppressed: false,
        baselined: false,
    }
}
