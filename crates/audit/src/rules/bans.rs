//! Token-level bans: DA001 hash order, DA002 wall-clock/entropy,
//! DA003 float equality, DA004 library `unwrap`.
//!
//! These are the scope-aware successors of the original line-scanner
//! checks. Running over the token stream (not raw lines) makes string
//! literals and comments invisible, and the model's `test_lines` map
//! exempts `#[cfg(test)]` scope wherever it sits in the file.

use crate::diag::{Finding, Rule};
use crate::lexer::TokenKind;
use crate::model::{CrateSrc, SourceFile};

use super::{finding, DETERMINISTIC_CRATES, ORDERING_CRATES};

/// Runs DA001–DA004 over one file.
pub fn run(krate: &CrateSrc, file: &SourceFile, out: &mut Vec<Finding>) {
    let ordering = ORDERING_CRATES.contains(&krate.name.as_str());
    let deterministic = DETERMINISTIC_CRATES.contains(&krate.name.as_str());
    let tokens = &file.tokens;
    let text = |i: usize| tokens[i].text(&file.source);
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        let t = text(i);
        match tok.kind {
            TokenKind::Ident => {
                if ordering && (t == "HashMap" || t == "HashSet") {
                    out.push(finding(
                        file,
                        Rule::HashOrder,
                        tok.line,
                        tok.col,
                        format!(
                            "`{t}` has randomized iteration order; use BTreeMap/BTreeSet/Vec \
                             in ordering-sensitive crate `{}`",
                            krate.name
                        ),
                    ));
                }
                if deterministic {
                    if t == "thread_rng" || t == "from_entropy" {
                        out.push(finding(
                            file,
                            Rule::WallClockEntropy,
                            tok.line,
                            tok.col,
                            format!(
                                "`{t}` draws OS entropy; derive a seeded stream via \
                                 `dirca_sim::rng` instead"
                            ),
                        ));
                    }
                    if t == "Instant" || t == "SystemTime" {
                        out.push(finding(
                            file,
                            Rule::WallClockEntropy,
                            tok.line,
                            tok.col,
                            format!(
                                "`{t}` reads the wall clock; simulated time must come from \
                                 the event queue"
                            ),
                        ));
                    }
                    // `std::time::…` and `rand::rng(…)` by path shape.
                    if t == "time" && i >= 2 && text(i - 1) == "::" && text(i - 2) == "std" {
                        out.push(finding(
                            file,
                            Rule::WallClockEntropy,
                            tok.line,
                            tok.col,
                            "`std::time` is banned in deterministic crates; simulated time \
                             must come from the event queue"
                                .to_string(),
                        ));
                    }
                    if t == "rng"
                        && i >= 2
                        && text(i - 1) == "::"
                        && text(i - 2) == "rand"
                        && i + 1 < tokens.len()
                        && text(i + 1) == "("
                    {
                        out.push(finding(
                            file,
                            Rule::WallClockEntropy,
                            tok.line,
                            tok.col,
                            "`rand::rng()` draws OS entropy; derive a seeded stream via \
                             `dirca_sim::rng` instead"
                                .to_string(),
                        ));
                    }
                }
                if t == "unwrap"
                    && i >= 1
                    && text(i - 1) == "."
                    && i + 1 < tokens.len()
                    && text(i + 1) == "("
                {
                    out.push(finding(
                        file,
                        Rule::Unwrap,
                        tok.line,
                        tok.col,
                        "library code must not `.unwrap()`; return a Result or use \
                         `expect(\"why this cannot fail\")`"
                            .to_string(),
                    ));
                }
            }
            TokenKind::Punct if t == "==" || t == "!=" => {
                let float_neighbor = (i >= 1 && tokens[i - 1].kind == TokenKind::Float)
                    || (i + 1 < tokens.len() && tokens[i + 1].kind == TokenKind::Float);
                if float_neighbor {
                    out.push(finding(
                        file,
                        Rule::FloatEq,
                        tok.line,
                        tok.col,
                        format!("direct `{t}` against a float literal; compare with a tolerance"),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn run_on(crate_name: &str, src: &str) -> Vec<Finding> {
        let ws =
            Workspace::from_source(crate_name, &format!("crates/{crate_name}/src/lib.rs"), src);
        let mut out = Vec::new();
        run(&ws.crates[0], &ws.crates[0].files[0], &mut out);
        out
    }

    #[test]
    fn hash_collections_flagged_in_ordering_crates_only() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
        assert_eq!(
            run_on("net", src)
                .iter()
                .filter(|f| f.rule == Rule::HashOrder)
                .count(),
            3
        );
        assert!(run_on("analysis", src)
            .iter()
            .all(|f| f.rule != Rule::HashOrder));
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = "// HashMap in a comment\npub fn f() -> &'static str { \"HashMap x.unwrap() 1.0 == y\" }\n";
        assert!(run_on("net", src).is_empty());
    }

    #[test]
    fn wall_clock_paths_flagged() {
        let src = "pub fn f() -> u64 { std::time::UNIX_EPOCH; 0 }\n";
        let out = run_on("sim", src);
        assert!(out.iter().any(|f| f.rule == Rule::WallClockEntropy));
    }

    #[test]
    fn float_eq_flagged_outside_tests_only() {
        let lib = "pub fn f(x: f64) -> bool { x == 1.0 }\n";
        assert_eq!(run_on("mac", lib).len(), 1);
        let test = "#[cfg(test)]\nmod tests {\n    fn f(x: f64) -> bool { x == 1.0 }\n}\n";
        assert!(run_on("mac", test).is_empty());
    }

    #[test]
    fn range_and_method_calls_are_not_floats() {
        // `0..10`, `x.0`, and `1.max(2)` must not produce Float tokens that
        // then collide with `==` detection.
        let src = "pub fn f(t: (u64, u64)) -> bool { t.0 == 1 && (0..10).len() == 1.max(2) }\n";
        assert!(run_on("mac", src).is_empty());
    }

    #[test]
    fn unwrap_flagged_everywhere_outside_tests() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(run_on("analysis", src).len(), 1);
        assert_eq!(run_on("analysis", src)[0].rule, Rule::Unwrap);
        // unwrap_or is a different identifier.
        let src2 = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(run_on("analysis", src2).is_empty());
    }
}
