//! DA007 — dispatch purity; DA008 — panic-path justification.
//!
//! DA007: crates reachable from the event-dispatch loop (`sim`, `net`,
//! `mac`) must not use interior mutability, I/O, threads, or wall-clock —
//! any of these makes dispatch order observable or non-reproducible.
//!
//! DA008: in the named transmit hot-path files, every indexing expression
//! and every `.expect()`/`.unwrap()` is a potential panic. Each must be
//! justified: a comment on the same or the directly preceding line, or an
//! enclosing function carrying a `# Panics` doc section or a
//! `panic-path:` marker comment.

use std::collections::BTreeSet;

use crate::diag::{Finding, Rule};
use crate::lexer::TokenKind;
use crate::model::{CrateSrc, SourceFile, KEYWORDS};

use super::{finding, DISPATCH_CRATES, HOT_PATH_FILES};

/// Idents whose mere presence in dispatch crates indicates interior
/// mutability or shared-state machinery.
const INTERIOR: &[&str] = &[
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "OnceLock",
    "LazyLock",
    "Mutex",
    "RwLock",
    "Condvar",
];

/// `std::<module>` path tails banned in dispatch crates (I/O and
/// environment access).
const STD_MODULES: &[&str] = &["fs", "io", "net", "process", "thread", "env"];

/// Print-like macros banned in dispatch crates.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Runs DA007 and DA008 over one file.
pub fn run(krate: &CrateSrc, file: &SourceFile, out: &mut Vec<Finding>) {
    if DISPATCH_CRATES.contains(&krate.name.as_str()) {
        run_purity(krate, file, out);
    }
    if HOT_PATH_FILES.contains(&file.rel_path.as_str()) {
        run_panic_path(file, out);
    }
}

fn run_purity(krate: &CrateSrc, file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let text = |i: usize| tokens[i].text(&file.source);
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || file.is_test_line(tok.line) {
            continue;
        }
        let t = text(i);
        let mut flag = |what: &str| {
            out.push(finding(
                file,
                Rule::DispatchPurity,
                tok.line,
                tok.col,
                format!(
                    "{what} in dispatch crate `{}`; event handlers must stay pure",
                    krate.name
                ),
            ));
        };
        if INTERIOR.contains(&t) || t.starts_with("Atomic") {
            flag(&format!("interior-mutability type `{t}`"));
        } else if STD_MODULES.contains(&t) && i >= 2 && text(i - 1) == "::" && text(i - 2) == "std"
        {
            flag(&format!("`std::{t}` access"));
        } else if PRINT_MACROS.contains(&t) && i + 1 < tokens.len() && text(i + 1) == "!" {
            flag(&format!("`{t}!` output"));
        } else if t == "static" && i + 1 < tokens.len() && text(i + 1) == "mut" {
            flag("`static mut` global state");
        }
    }
}

fn run_panic_path(file: &SourceFile, out: &mut Vec<Finding>) {
    // All lines covered by a comment (block comments cover a range).
    let mut comment_lines: BTreeSet<u32> = BTreeSet::new();
    for c in &file.comments {
        for line in c.line..=c.end_line {
            comment_lines.insert(line);
        }
    }
    // Functions carrying a justification marker anywhere in their doc
    // block or body: `# Panics` (rustdoc section) or `panic-path:`.
    let marked: Vec<(u32, u32)> = {
        let mut spans = Vec::new();
        for item in file.all_items() {
            if item.kind != crate::model::ItemKind::Fn {
                continue;
            }
            // Extend the span upward over the contiguous doc/comment block.
            let mut start = item.line;
            while let Some(c) = file.comments.iter().find(|c| c.end_line + 1 == start) {
                start = c.line;
            }
            let has_marker = file.comments.iter().any(|c| {
                c.line >= start && c.line <= item.end_line && {
                    let t = c.text(&file.source);
                    t.contains("# Panics") || t.contains("panic-path:")
                }
            });
            if has_marker {
                spans.push((start, item.end_line));
            }
        }
        spans
    };
    let justified = |line: u32| {
        comment_lines.contains(&line)
            || (line > 1 && comment_lines.contains(&(line - 1)))
            || marked.iter().any(|&(s, e)| s <= line && line <= e)
    };
    let tokens = &file.tokens;
    let text = |i: usize| tokens[i].text(&file.source);
    for i in 0..tokens.len() {
        let tok = &tokens[i];
        if file.is_test_line(tok.line) {
            continue;
        }
        let t = text(i);
        let site = if tok.kind == TokenKind::Punct && t == "[" && i >= 1 {
            let prev = &tokens[i - 1];
            let p = prev.text(&file.source);
            ((prev.kind == TokenKind::Ident && !KEYWORDS.contains(&p)) || p == ")" || p == "]")
                .then_some("indexing (panics when out of bounds)")
        } else if tok.kind == TokenKind::Ident
            && (t == "expect" || t == "unwrap")
            && i >= 1
            && text(i - 1) == "."
            && i + 1 < tokens.len()
            && text(i + 1) == "("
        {
            Some(if t == "expect" {
                "`.expect()` (panics when None/Err)"
            } else {
                "`.unwrap()` (panics when None/Err)"
            })
        } else {
            None
        };
        if let Some(what) = site {
            if !justified(tok.line) {
                out.push(finding(
                    file,
                    Rule::PanicPath,
                    tok.line,
                    tok.col,
                    format!(
                        "{what} on the transmit hot path without a justification; add a \
                         nearby comment, a `# Panics` doc, or a `panic-path:` marker on \
                         the enclosing fn"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn run_on(crate_name: &str, rel: &str, src: &str) -> Vec<Finding> {
        let ws = Workspace::from_source(crate_name, rel, src);
        let mut out = Vec::new();
        run(&ws.crates[0], &ws.crates[0].files[0], &mut out);
        out
    }

    #[test]
    fn interior_mutability_flagged_in_dispatch_crates_only() {
        let src = "use std::cell::RefCell;\n";
        assert_eq!(
            run_on("sim", "crates/sim/src/x.rs", src)
                .iter()
                .filter(|f| f.rule == Rule::DispatchPurity)
                .count(),
            1
        );
        assert!(run_on("analysis", "crates/analysis/src/x.rs", src).is_empty());
    }

    #[test]
    fn io_and_print_flagged() {
        let src = "pub fn f() { let _ = std::fs::read(\"x\"); println!(\"hi\"); }\n";
        let out = run_on("net", "crates/net/src/x.rs", src);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn fmt_and_display_are_fine() {
        let src = "use std::fmt;\nimpl fmt::Display for X {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"x\") }\n}\n";
        assert!(run_on("sim", "crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_path_indexing_needs_justification() {
        let src = "pub fn handle(&mut self) {\n    let x = self.app[node.0];\n}\n";
        let out = run_on("net", "crates/net/src/world.rs", src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::PanicPath);
        // Same code in a non-hot file: no finding.
        assert!(run_on("net", "crates/net/src/other.rs", src).is_empty());
    }

    #[test]
    fn nearby_comment_or_fn_marker_justifies() {
        let near = "pub fn handle(&mut self) {\n    // node ids are dense: `app` is sized to n at build time\n    let x = self.app[node.0];\n}\n";
        assert!(run_on("net", "crates/net/src/world.rs", near).is_empty());
        let marker = "/// Dispatches one event.\n///\n/// # Panics\n/// Node ids out of range abort: topology is fixed at build.\npub fn handle(&mut self) {\n    let x = self.app[node.0];\n    let y = self.mac[node.0];\n}\n";
        assert!(
            run_on("net", "crates/net/src/world.rs", marker).is_empty(),
            "fn-level marker covers all sites in the fn"
        );
    }

    #[test]
    fn types_attrs_and_macros_are_not_indexing() {
        let src = "#[derive(Clone)]\npub struct S { v: [f64; 2] }\npub fn f() -> Vec<u32> { vec![1, 2] }\n";
        assert!(run_on("net", "crates/net/src/world.rs", src).is_empty());
    }
}
