//! DA006 — feature-gate symmetry.
//!
//! The trace/audit observability layers are non-perturbing *by
//! construction*: every feature-gated public hook has a
//! `cfg(not(feature = …))` no-op twin, so call sites compile identically
//! with the feature off and the gated layer cannot leak behavior into
//! ungated builds. This pass enforces the pattern: a `pub fn` gated on a
//! feature needs, in the same file, either
//!
//! * a same-named `pub fn` gated on `not(feature = …)`, or
//! * to live in a module that is itself gated on that feature (the whole
//!   surface disappears together — callers must be gated too or the build
//!   breaks, which is its own enforcement), or
//! * an `audit-allow(gate-symmetry): why` when the signature genuinely
//!   cannot exist without the feature (it mentions gated types).

use std::collections::BTreeSet;

use crate::diag::{Finding, Rule};
use crate::model::{CrateSrc, Item, ItemKind, SourceFile, Workspace};

use super::finding;

/// A `(path-or-prefix, feature)` pair marking files wholly gated by a
/// feature via a `#[cfg(feature = …)] mod x;` declaration. Entries ending
/// in `/` are directory prefixes.
pub type GatedFiles = Vec<(String, String)>;

/// Finds files that are feature-gated as whole modules anywhere in the
/// workspace.
pub fn gated_module_files(ws: &Workspace) -> GatedFiles {
    let mut out = GatedFiles::new();
    for krate in &ws.crates {
        for file in &krate.files {
            let Some(dir) = file.rel_path.rfind('/').map(|i| &file.rel_path[..i]) else {
                continue;
            };
            for item in file.all_items() {
                if item.kind != ItemKind::Mod || !item.children.is_empty() {
                    continue;
                }
                for feature in item.own_positive_features() {
                    out.push((format!("{dir}/{}.rs", item.name), feature.clone()));
                    out.push((format!("{dir}/{}/", item.name), feature));
                }
            }
        }
    }
    out
}

/// Runs the symmetry check over one file.
pub fn run(_krate: &CrateSrc, file: &SourceFile, gated: &GatedFiles, out: &mut Vec<Finding>) {
    // Features under which this whole file compiles (or not at all).
    let file_features: BTreeSet<&str> = gated
        .iter()
        .filter(|(prefix, _)| {
            file.rel_path == *prefix
                || (prefix.ends_with('/') && file.rel_path.starts_with(prefix.as_str()))
        })
        .map(|(_, f)| f.as_str())
        .collect();
    // Counterpart index: fn name → negatively-asserted features.
    let mut negatives: Vec<(&str, String)> = Vec::new();
    for item in file.all_items() {
        if item.kind == ItemKind::Fn {
            for f in item.own_negative_features() {
                negatives.push((item.name.as_str(), f));
            }
        }
    }
    check_items(&file.items, &[], file, &file_features, &negatives, out);
}

fn check_items(
    items: &[Item],
    ancestor_features: &[String],
    file: &SourceFile,
    file_features: &BTreeSet<&str>,
    negatives: &[(&str, String)],
    out: &mut Vec<Finding>,
) {
    for item in items {
        let mut inherited = ancestor_features.to_vec();
        inherited.extend(item.own_positive_features());
        if item.kind == ItemKind::Fn
            && item.is_pub
            && !item.own_test()
            && !file.is_test_line(item.line)
        {
            for feature in item.own_positive_features() {
                let in_gated_file = file_features.contains(feature.as_str());
                let in_gated_scope = ancestor_features.contains(&feature);
                let has_twin = negatives
                    .iter()
                    .any(|(name, f)| *name == item.name && *f == feature);
                if !in_gated_file && !in_gated_scope && !has_twin {
                    out.push(finding(
                        file,
                        Rule::GateSymmetry,
                        item.line,
                        item.col,
                        format!(
                            "pub fn `{}` is gated on feature \"{feature}\" with no \
                             `#[cfg(not(feature = \"{feature}\"))]` no-op counterpart in \
                             this file",
                            item.name
                        ),
                    ));
                }
            }
        }
        check_items(
            &item.children,
            &inherited,
            file,
            file_features,
            negatives,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_single(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_source("sim", "crates/sim/src/engine.rs", src);
        let gated = gated_module_files(&ws);
        let mut out = Vec::new();
        run(&ws.crates[0], &ws.crates[0].files[0], &gated, &mut out);
        out
    }

    #[test]
    fn gated_fn_without_twin_is_flagged() {
        let out = run_single("#[cfg(feature = \"audit\")]\npub fn finish_audit(&self) {}\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::GateSymmetry);
        assert!(out[0].message.contains("finish_audit"));
    }

    #[test]
    fn gated_fn_with_twin_is_clean() {
        let out = run_single(
            "#[cfg(feature = \"audit\")]\npub fn finish_audit(&self) { work(); }\n\
             #[cfg(not(feature = \"audit\"))]\npub fn finish_audit(&self) {}\n",
        );
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn private_fns_and_methods_in_gated_modules_are_exempt() {
        // Private: callers are in this file and must themselves be gated.
        let private = run_single("#[cfg(feature = \"audit\")]\nfn helper() {}\n");
        assert!(private.is_empty());
        // Inside a module gated on the same feature: the surface vanishes
        // as a unit.
        let scoped =
            run_single("#[cfg(feature = \"trace\")]\npub mod hooks {\n    pub fn emit() {}\n}\n");
        assert!(scoped.is_empty(), "unexpected: {scoped:?}");
        // …but a *different* feature inside still needs a twin.
        let cross = run_single(
            "#[cfg(feature = \"trace\")]\npub mod hooks {\n    #[cfg(feature = \"audit\")]\n    pub fn emit() {}\n}\n",
        );
        assert_eq!(cross.len(), 1);
    }

    #[test]
    fn fn_in_feature_gated_module_file_is_exempt() {
        let lib = Workspace::from_source(
            "trace",
            "crates/trace/src/lib.rs",
            "#[cfg(feature = \"trace\")]\npub mod record;\n",
        );
        let record = Workspace::from_source(
            "trace",
            "crates/trace/src/record.rs",
            "#[cfg(feature = \"trace\")]\npub fn attach() {}\n",
        );
        let mut ws = lib;
        ws.crates[0]
            .files
            .extend(record.crates.into_iter().flat_map(|c| c.files));
        let gated = gated_module_files(&ws);
        let mut out = Vec::new();
        for file in &ws.crates[0].files {
            run(&ws.crates[0], file, &gated, &mut out);
        }
        assert!(out.is_empty(), "unexpected: {out:?}");
    }
}
