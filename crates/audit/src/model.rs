//! The workspace model: crates → source files → items.
//!
//! A lightweight item-level parser walks each file's token stream and
//! recovers the structure the rules need: modules, functions, impl blocks,
//! traits, consts — each with its span, visibility, attributes, and `cfg`
//! context. It is not a full Rust parser (function *bodies* stay opaque
//! token ranges), but unlike the old line-based heuristic it gets the
//! things that matter right:
//!
//! * a `#[cfg(test)]` module is test scope **wherever it appears** in the
//!   file, not only when it is the trailing item;
//! * attributes, visibility, and nesting survive interleaving with
//!   comments and strings;
//! * `const` items keep their initializer token range, so the salt pass
//!   can read values.

use std::path::Path;

use crate::cfg::{self, Cfg};
use crate::lexer::{self, Comment, Token, TokenKind};

/// Keywords that can precede `[` without forming an indexing expression.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `fn name(…) { … }` (free function or method).
    Fn,
    /// `struct` / `enum` / `union`.
    Type,
    /// `impl … { … }`.
    Impl,
    /// `trait … { … }`.
    Trait,
    /// `const NAME: T = …;` or `static NAME: T = …;`
    Const,
    /// `use …;` / `extern crate …;` / `type … = …;`
    Use,
    /// `macro_rules! name { … }` or a top-level macro invocation.
    Macro,
}

/// One parsed item with its attributes and token span.
#[derive(Debug)]
pub struct Item {
    /// The item's kind.
    pub kind: ItemKind,
    /// The item's name (`impl` blocks use the first type token's text).
    pub name: String,
    /// Whether the item is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// The item's own `cfg` predicates (one per `#[cfg(...)]` attribute).
    pub cfgs: Vec<Cfg>,
    /// Names of non-cfg attributes (`allow`, `derive`, `inline`, …).
    pub attrs: Vec<AttrInfo>,
    /// 1-based line where the item's first attribute-or-keyword token sits.
    pub line: u32,
    /// 1-based column of that token.
    pub col: u32,
    /// 1-based last line the item covers (closing brace / semicolon).
    pub end_line: u32,
    /// Token index range covering the whole item including its body.
    pub tokens: (usize, usize),
    /// For `const`/`static`: token index range of the initializer
    /// expression (between `=` and `;`).
    pub value_tokens: Option<(usize, usize)>,
    /// Nested items (for `mod`, `impl`, `trait`).
    pub children: Vec<Item>,
}

/// One non-cfg attribute on an item.
#[derive(Debug)]
pub struct AttrInfo {
    /// The attribute's path root (`allow`, `derive`, `cfg_attr`, …).
    pub name: String,
    /// 1-based line of the `#` token.
    pub line: u32,
    /// 1-based column of the `#` token.
    pub col: u32,
}

impl Item {
    /// Whether this item's own `cfg` attributes restrict it to test builds.
    pub fn own_test(&self) -> bool {
        self.cfgs.iter().any(Cfg::definitely_test)
    }

    /// Features this item's own `cfg` attributes assert positively.
    pub fn own_positive_features(&self) -> Vec<String> {
        self.cfgs.iter().flat_map(Cfg::positive_features).collect()
    }

    /// Features this item's own `cfg` attributes assert negatively.
    pub fn own_negative_features(&self) -> Vec<String> {
        self.cfgs.iter().flat_map(Cfg::negative_features).collect()
    }
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators
    /// (`crates/net/src/world.rs`).
    pub rel_path: String,
    /// The file's full text.
    pub source: String,
    /// The file's code tokens.
    pub tokens: Vec<Token>,
    /// The file's comments.
    pub comments: Vec<Comment>,
    /// Top-level items.
    pub items: Vec<Item>,
    /// Whether the whole file is test scope (under `tests/`, `benches/`,
    /// or `examples/`).
    pub all_tests: bool,
    /// `test_lines[line - 1]` is true when the line is inside a
    /// `#[cfg(test)]` item (or the whole file is test scope).
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Whether 1-based `line` is test scope.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.all_tests
            || self
                .test_lines
                .get(line as usize - 1)
                .copied()
                .unwrap_or(false)
    }

    /// The trimmed text of 1-based `line` (used as the stable baseline
    /// key, so findings survive unrelated line-number drift).
    pub fn line_text(&self, line: u32) -> &str {
        self.source
            .lines()
            .nth(line as usize - 1)
            .unwrap_or("")
            .trim()
    }

    /// Depth-first iterator over all items (outer before inner).
    pub fn all_items(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for item in items {
                out.push(item);
                walk(&item.children, out);
            }
        }
        walk(&self.items, &mut out);
        out
    }

    /// The innermost `fn` item whose span contains 1-based `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&Item> {
        self.all_items()
            .into_iter()
            .filter(|i| i.kind == ItemKind::Fn && i.line <= line && line <= i.end_line)
            .max_by_key(|i| i.line)
    }
}

/// One crate's parsed sources.
#[derive(Debug)]
pub struct CrateSrc {
    /// The crate's directory name under `crates/` (`net`, `sim`, …).
    pub name: String,
    /// Parsed files under the crate's `src/`, sorted by path.
    pub files: Vec<SourceFile>,
}

/// The whole parsed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Parsed crates, sorted by name.
    pub crates: Vec<CrateSrc>,
}

impl Workspace {
    /// Loads and parses every `crates/*/src/**/*.rs` under `root`,
    /// skipping the crates in `skip` (the analyzer itself and the bench
    /// harness). Returns an error string on unreadable layout.
    pub fn load(root: &Path, skip: &[&str]) -> Result<Workspace, String> {
        let crates_dir = root.join("crates");
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| !skip.contains(&n.as_str()))
            .collect();
        names.sort();
        let mut crates = Vec::new();
        for name in names {
            let src = crates_dir.join(&name).join("src");
            if !src.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&src, root, &mut files)?;
            files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
            crates.push(CrateSrc { name, files });
        }
        Ok(Workspace { crates })
    }

    /// Parses a single in-memory file into a one-crate workspace —
    /// the unit-test entry point for rule fixtures.
    pub fn from_source(crate_name: &str, rel_path: &str, source: &str) -> Workspace {
        Workspace {
            crates: vec![CrateSrc {
                name: crate_name.to_string(),
                files: vec![parse_file(rel_path.to_string(), source.to_string())],
            }],
        }
    }
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(parse_file(rel, text));
        }
    }
    Ok(())
}

/// Lexes and item-parses one file.
pub fn parse_file(rel_path: String, source: String) -> SourceFile {
    let lexer::Lexed { tokens, comments } = lexer::lex(&source);
    let all_tests = {
        let p = rel_path.as_str();
        p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/")
    };
    let mut parser = Parser {
        tokens: &tokens,
        source: &source,
        pos: 0,
    };
    let items = parser.parse_items(usize::MAX);
    let line_count = source.lines().count().max(1);
    let mut test_lines = vec![false; line_count];
    mark_test_lines(&items, false, &mut test_lines);
    SourceFile {
        rel_path,
        source,
        tokens,
        comments,
        items,
        all_tests,
        test_lines,
    }
}

fn mark_test_lines(items: &[Item], inherited: bool, lines: &mut Vec<bool>) {
    for item in items {
        let test = inherited || item.own_test();
        if test {
            let from = item.line as usize - 1;
            let to = (item.end_line as usize).min(lines.len());
            for flag in &mut lines[from..to] {
                *flag = true;
            }
        }
        mark_test_lines(&item.children, test, lines);
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    source: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn text(&self, idx: usize) -> &'a str {
        self.tokens[idx].text(self.source)
    }

    fn peek_text(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(|t| t.text(self.source))
    }

    /// Parses items until `end` (exclusive token index) or a `}` closing
    /// the current scope.
    fn parse_items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < self.tokens.len().min(end) {
            if self.peek_text() == Some("}") {
                break;
            }
            match self.parse_item() {
                Some(item) => items.push(item),
                // Not an item start: skip one token and keep going (robust
                // against constructs the parser does not model).
                None => self.pos += 1,
            }
        }
        items
    }

    fn parse_item(&mut self) -> Option<Item> {
        let start = self.pos;
        let start_tok = self.tokens.get(self.pos)?;
        let (line, col) = (start_tok.line, start_tok.col);
        let mut cfgs = Vec::new();
        let mut attrs = Vec::new();
        // Attributes: `#[...]` (outer) and `#![...]` (inner, attached to
        // the enclosing scope — recorded but otherwise skipped).
        while self.peek_text() == Some("#") {
            let hash_tok = &self.tokens[self.pos];
            let (h_line, h_col) = (hash_tok.line, hash_tok.col);
            self.pos += 1;
            let inner = self.peek_text() == Some("!");
            if inner {
                self.pos += 1;
            }
            if self.peek_text() != Some("[") {
                continue;
            }
            let close = self.matching(self.pos, "[", "]");
            let body_start = self.pos + 1;
            let name = if body_start < close {
                self.text(body_start).to_string()
            } else {
                String::new()
            };
            if name == "cfg" {
                // cfg ( … ) — predicate tokens sit between the parens.
                if body_start + 1 < close && self.text(body_start + 1) == "(" {
                    let pred_close = self.matching(body_start + 1, "(", ")");
                    if let Some(c) = cfg::parse(
                        &self.tokens[body_start + 2..pred_close.min(close)],
                        self.source,
                    ) {
                        cfgs.push(c);
                    }
                }
            } else if !name.is_empty() {
                attrs.push(AttrInfo {
                    name,
                    line: h_line,
                    col: h_col,
                });
            }
            self.pos = (close + 1).min(self.tokens.len());
        }
        // Visibility and leading modifiers.
        let mut is_pub = false;
        loop {
            match self.peek_text() {
                Some("pub") => {
                    is_pub = true;
                    self.pos += 1;
                    if self.peek_text() == Some("(") {
                        self.pos = self.matching(self.pos, "(", ")") + 1;
                    }
                }
                Some("unsafe" | "async" | "default") => self.pos += 1,
                Some("extern") => {
                    self.pos += 1;
                    // `extern "C" fn` / `extern crate foo;`
                    if self
                        .tokens
                        .get(self.pos)
                        .is_some_and(|t| t.kind == TokenKind::Str)
                    {
                        self.pos += 1;
                    }
                }
                Some("const") => {
                    // `const fn` is a modifier; `const NAME` is an item.
                    if self.tokens.get(self.pos + 1).map(|t| t.text(self.source)) == Some("fn") {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let kw = self.peek_text()?;
        let item = match kw {
            "mod" => {
                self.pos += 1;
                let name = self.peek_text().unwrap_or("").to_string();
                self.pos += 1;
                let children = if self.peek_text() == Some("{") {
                    self.pos += 1; // `{`
                    let children = self.parse_items(usize::MAX);
                    if self.peek_text() == Some("}") {
                        self.pos += 1;
                    }
                    children
                } else {
                    // `mod name;`
                    self.skip_past_semicolon();
                    Vec::new()
                };
                self.make(
                    ItemKind::Mod,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    None,
                    children,
                )
            }
            "fn" => {
                self.pos += 1;
                let name = self.peek_text().unwrap_or("").to_string();
                self.pos += 1;
                // Skip the signature: everything up to the body `{` (or a
                // `;` for a bodiless trait method) at bracket depth 0.
                let mut depth = 0i32;
                loop {
                    match self.peek_text() {
                        None => break,
                        Some("(") | Some("[") => {
                            depth += 1;
                            self.pos += 1;
                        }
                        Some(")") | Some("]") => {
                            depth -= 1;
                            self.pos += 1;
                        }
                        Some("{") if depth == 0 => {
                            self.pos = self.matching(self.pos, "{", "}") + 1;
                            break;
                        }
                        Some(";") if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        Some(_) => self.pos += 1,
                    }
                }
                self.make(
                    ItemKind::Fn,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    None,
                    Vec::new(),
                )
            }
            "struct" | "enum" | "union" => {
                self.pos += 1;
                let name = self.peek_text().unwrap_or("").to_string();
                self.skip_body_or_semicolon();
                self.make(
                    ItemKind::Type,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    None,
                    Vec::new(),
                )
            }
            "impl" | "trait" => {
                let kind = if kw == "impl" {
                    ItemKind::Impl
                } else {
                    ItemKind::Trait
                };
                self.pos += 1;
                // Name: first identifier token before the body (good enough
                // for reporting; `impl<T> Foo<T> for Bar` names `T`…
                // acceptable, rules only use fn/const/mod names).
                let mut name = String::new();
                while let Some(t) = self.peek_text() {
                    if t == "{" {
                        break;
                    }
                    if name.is_empty()
                        && self.tokens[self.pos].kind == TokenKind::Ident
                        && !KEYWORDS.contains(&t)
                    {
                        name = t.to_string();
                    }
                    self.pos += 1;
                }
                let children = if self.peek_text() == Some("{") {
                    self.pos += 1;
                    let children = self.parse_items(usize::MAX);
                    if self.peek_text() == Some("}") {
                        self.pos += 1;
                    }
                    children
                } else {
                    Vec::new()
                };
                self.make(
                    kind, name, is_pub, cfgs, attrs, line, col, start, None, children,
                )
            }
            "const" | "static" => {
                self.pos += 1;
                if self.peek_text() == Some("mut") {
                    self.pos += 1;
                }
                let name = self.peek_text().unwrap_or("").to_string();
                self.pos += 1;
                // Find `=` then capture initializer tokens to the `;`.
                let mut value_tokens = None;
                let mut depth = 0i32;
                while let Some(t) = self.peek_text() {
                    match t {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0 => {
                            let vstart = self.pos + 1;
                            self.pos += 1;
                            while let Some(t2) = self.peek_text() {
                                match t2 {
                                    "(" | "[" | "{" => depth += 1,
                                    ")" | "]" | "}" => depth -= 1,
                                    ";" if depth == 0 => break,
                                    _ => {}
                                }
                                self.pos += 1;
                            }
                            value_tokens = Some((vstart, self.pos));
                            break;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                if self.peek_text() == Some(";") {
                    self.pos += 1;
                }
                self.make(
                    ItemKind::Const,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    value_tokens,
                    Vec::new(),
                )
            }
            "use" | "type" => {
                self.pos += 1;
                let name = self.peek_text().unwrap_or("").to_string();
                self.skip_past_semicolon();
                self.make(
                    ItemKind::Use,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    None,
                    Vec::new(),
                )
            }
            "macro_rules" => {
                self.pos += 1; // macro_rules
                if self.peek_text() == Some("!") {
                    self.pos += 1;
                }
                let name = self.peek_text().unwrap_or("").to_string();
                self.pos += 1;
                if self.peek_text() == Some("{") {
                    self.pos = self.matching(self.pos, "{", "}") + 1;
                }
                self.make(
                    ItemKind::Macro,
                    name,
                    is_pub,
                    cfgs,
                    attrs,
                    line,
                    col,
                    start,
                    None,
                    Vec::new(),
                )
            }
            _ => {
                // Possibly a macro invocation item (`foo!( … );`) — or
                // something the parser does not model. Consume attributes'
                // work by skipping one token; parse_items will continue.
                if self.tokens[self.pos].kind == TokenKind::Ident
                    && self.tokens.get(self.pos + 1).map(|t| t.text(self.source)) == Some("!")
                {
                    let name = self.peek_text().unwrap_or("").to_string();
                    self.pos += 2;
                    match self.peek_text() {
                        Some("(") => {
                            self.pos = self.matching(self.pos, "(", ")") + 1;
                            self.skip_past_semicolon();
                        }
                        Some("{") => self.pos = self.matching(self.pos, "{", "}") + 1,
                        Some("[") => {
                            self.pos = self.matching(self.pos, "[", "]") + 1;
                            self.skip_past_semicolon();
                        }
                        _ => self.pos += 1,
                    }
                    return Some(self.make(
                        ItemKind::Macro,
                        name,
                        is_pub,
                        cfgs,
                        attrs,
                        line,
                        col,
                        start,
                        None,
                        Vec::new(),
                    ));
                }
                return None;
            }
        };
        Some(item)
    }

    #[allow(clippy::too_many_arguments)] // plain constructor plumbing
    fn make(
        &self,
        kind: ItemKind,
        name: String,
        is_pub: bool,
        cfgs: Vec<Cfg>,
        attrs: Vec<AttrInfo>,
        line: u32,
        col: u32,
        start: usize,
        value_tokens: Option<(usize, usize)>,
        children: Vec<Item>,
    ) -> Item {
        let end_line = self
            .tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(line);
        Item {
            kind,
            name,
            is_pub,
            cfgs,
            attrs,
            line,
            col,
            end_line,
            tokens: (start, self.pos),
            value_tokens,
            children,
        }
    }

    /// Index of the token closing the group opened at `open_idx`
    /// (which must hold `open`). Returns the last token index when
    /// unbalanced.
    fn matching(&self, open_idx: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open_idx;
        while i < self.tokens.len() {
            let t = self.text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    /// Skips to just past the next `;` at bracket depth 0.
    fn skip_past_semicolon(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek_text() {
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return; // closing an enclosing scope: stop short
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a `{…}` body, a tuple-struct `(…);`, or a bare `;`.
    fn skip_body_or_semicolon(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek_text() {
            match t {
                "{" if depth == 0 => {
                    self.pos = self.matching(self.pos, "{", "}") + 1;
                    return;
                }
                ";" if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        parse_file("crates/x/src/lib.rs".to_string(), src.to_string())
    }

    #[test]
    fn nontrailing_test_module_is_test_scope() {
        // The regression the old line-based auditor got wrong: a test
        // module that is NOT the last item left everything after it
        // exempt. The parser scopes it precisely.
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}

pub fn library_code() {
    y.unwrap();
}
";
        let file = parse(src);
        assert!(file.is_test_line(3), "inside the test module");
        assert!(
            !file.is_test_line(7),
            "library code after the test module is NOT test scope"
        );
    }

    #[test]
    fn trailing_test_module_still_works() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let file = parse(src);
        assert!(!file.is_test_line(1));
        assert!(file.is_test_line(4));
    }

    #[test]
    fn items_carry_cfg_features() {
        let src = "#[cfg(feature = \"trace\")]\npub fn probe() {}\n\
                   #[cfg(not(feature = \"trace\"))]\npub fn probe_off() {}\n";
        let file = parse(src);
        assert_eq!(file.items.len(), 2);
        assert_eq!(file.items[0].own_positive_features(), vec!["trace"]);
        assert_eq!(file.items[1].own_negative_features(), vec!["trace"]);
    }

    #[test]
    fn const_values_are_captured() {
        let src = "pub const FAULT_STREAM_SALT: u64 = 0xFA17_1A11;\n";
        let file = parse(src);
        let item = &file.items[0];
        assert_eq!(item.kind, ItemKind::Const);
        assert_eq!(item.name, "FAULT_STREAM_SALT");
        let (s, e) = item.value_tokens.expect("initializer captured");
        assert_eq!(e - s, 1);
        assert_eq!(file.tokens[s].text(&file.source), "0xFA17_1A11");
    }

    #[test]
    fn impl_methods_are_children() {
        let src = "struct S;\nimpl S {\n    pub fn m(&self) {}\n    fn p(&self) {}\n}\n";
        let file = parse(src);
        let imp = file
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl parsed");
        assert_eq!(imp.children.len(), 2);
        assert!(imp.children[0].is_pub);
        assert!(!imp.children[1].is_pub);
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "pub fn outer() {\n    let x = 1;\n}\npub fn later() {\n    let y = 2;\n}\n";
        let file = parse(src);
        assert_eq!(file.enclosing_fn(2).expect("in outer").name, "outer");
        assert_eq!(file.enclosing_fn(5).expect("in later").name, "later");
    }

    #[test]
    fn nested_cfg_all_combinations() {
        let src = "#[cfg(all(test, feature = \"audit\"))]\nmod harness {\n    fn h() {}\n}\n";
        let file = parse(src);
        assert!(file.is_test_line(3), "all(test, …) is test scope");
    }

    #[test]
    fn attributes_are_recorded() {
        let src = "#[allow(dead_code)]\n#[inline]\nfn f() {}\n";
        let file = parse(src);
        let names: Vec<_> = file.items[0]
            .attrs
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["allow", "inline"]);
    }

    #[test]
    fn files_under_tests_are_all_test_scope() {
        let file = parse_file(
            "crates/x/tests/e2e.rs".to_string(),
            "fn f() { x.unwrap(); }\n".to_string(),
        );
        assert!(file.all_tests);
        assert!(file.is_test_line(1));
    }
}
