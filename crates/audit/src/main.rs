//! The `dirca-audit` CLI — thin argument handling over [`dirca_audit`].
//!
//! ```text
//! dirca-audit [--root DIR] [--format human|json] [--baseline FILE]
//!             [--write-baseline] [--diff-base REF] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` active findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dirca_audit::baseline::Baseline;
use dirca_audit::diag::Rule;

/// Parsed command line.
struct Args {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    diff_base: Option<String>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn usage() -> &'static str {
    "usage: dirca-audit [--root DIR] [--format human|json] [--baseline FILE]\n\
     \x20                 [--write-baseline] [--diff-base REF] [--list-rules]\n\
     \n\
     exit codes: 0 clean, 1 active findings, 2 error"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        format: Format::Human,
        baseline: None,
        write_baseline: false,
        diff_base: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format must be human or json, got {other:?}")),
                };
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--diff-base" => {
                args.diff_base = Some(it.next().ok_or("--diff-base needs a value")?);
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

/// The workspace root: the current directory when it holds `crates/`,
/// otherwise two levels up from this crate's manifest (so `cargo run -p
/// dirca-audit` works from anywhere inside the workspace).
fn default_root() -> PathBuf {
    if std::path::Path::new("crates").is_dir() {
        PathBuf::from(".")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }
}

/// Files changed relative to `base`, as workspace-relative paths.
fn changed_files(root: &std::path::Path, base: &str) -> Result<Vec<String>, String> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", base])
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(str::to_string)
        .collect())
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{}  {:<18} {}", rule.id(), rule.name(), rule.describe());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let mut analysis = dirca_audit::analyze(&args.root)?;

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("audit-baseline.json"));
    if args.write_baseline {
        let doc = Baseline::render(&analysis);
        std::fs::write(&baseline_path, doc)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "wrote {} finding(s) to {}",
            analysis.active_count(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let baseline = Baseline::load(&baseline_path)?;
    baseline.apply(&mut analysis.findings);

    if let Some(base) = &args.diff_base {
        let changed = changed_files(&args.root, base)?;
        analysis
            .findings
            .retain(|f| changed.iter().any(|c| c == &f.file));
    }

    match args.format {
        Format::Json => print!("{}", analysis.to_json()),
        Format::Human => {
            for f in analysis.active() {
                println!("{f}");
                if !f.snippet.is_empty() {
                    println!("    {}", f.snippet);
                }
            }
            let suppressed = analysis.findings.iter().filter(|f| f.suppressed).count();
            let baselined = analysis.findings.iter().filter(|f| f.baselined).count();
            println!(
                "audit: {} active finding(s) ({} suppressed, {} baselined) across {} files in {} crates",
                analysis.active_count(),
                suppressed,
                baselined,
                analysis.files,
                analysis.crates
            );
        }
    }
    Ok(if analysis.active_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("dirca-audit: {message}");
            ExitCode::from(2)
        }
    }
}
