//! `dirca-audit`: static hygiene auditor for the workspace.
//!
//! Walks every library crate's `src/` tree and flags constructs that the
//! deterministic discrete-event core must never contain:
//!
//! * **`HashMap`/`HashSet` in simulation-ordering crates** (`sim`, `mac`,
//!   `net`, `radio`, `experiments`): iteration order of the std hash
//!   collections is randomized per process, so any use in code that feeds
//!   the event loop (or aggregates its results, as the experiment harness
//!   and its checkpoint/resume runner do) is a determinism hazard. Use
//!   `BTreeMap`/`BTreeSet`/`Vec` instead.
//! * **Wall-clock and entropy sources in deterministic crates**
//!   (`std::time`, `thread_rng`, `from_entropy`, `rand::rng()`): simulated
//!   time comes from the event queue and randomness from seeded streams;
//!   anything else makes runs irreproducible.
//! * **Direct `f64` equality against float literals** outside tests:
//!   results compared with `==` drift across optimization levels; compare
//!   against a tolerance instead.
//! * **`.unwrap()` in library code**: library crates must surface errors
//!   as `Result` or document impossibility with `expect("why")`.
//!
//! The checks are line-based heuristics, not a parser: a file's trailing
//! `#[cfg(test)]` module (the repo-wide convention) and comment/doc lines
//! are exempt, as are `benches/`, `tests/`, `examples/`, and the vendored
//! dependency stubs. Run with `cargo run -p dirca-audit`; the process exits
//! non-zero if any finding is reported, so CI can gate on it.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose data structures feed event ordering: hash collections are
/// banned outright. The trace crate is included because its recorder and
/// metrics registry sit on the record path — a hash-ordered collection
/// there would make exported traces irreproducible.
const ORDERING_CRATES: &[&str] = &["sim", "mac", "net", "radio", "experiments", "trace"];

/// Crates that must be reproducible end to end: no wall clocks, no
/// entropy. The trace recorder stamps records with *sim* time only; a wall
/// clock in the observability layer would leak nondeterminism into golden
/// traces.
const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "mac",
    "net",
    "radio",
    "topology",
    "experiments",
    "analysis",
    "geometry",
    "stats",
    "trace",
];

/// One reported violation.
struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn main() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("dirca-audit: cannot read {}: {e}", crates_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut audited = 0usize;
    for entry in entries.flatten() {
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        if crate_name == "audit" || crate_name == "bench" {
            continue; // the auditor itself and the bench harness are exempt
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            audited += 1;
            walk(&src, &crate_name, &root, &mut findings);
        }
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "dirca-audit: {} finding(s) across {audited} crate(s)",
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root, resolved from this crate's manifest directory so the
/// tool works from any working directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit always sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively audits every `.rs` file under `dir`.
fn walk(dir: &Path, crate_name: &str, root: &Path, findings: &mut Vec<Finding>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort(); // deterministic report order, of course
    for path in paths {
        if path.is_dir() {
            walk(&path, crate_name, root, findings);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                audit_file(&rel, &text, crate_name, findings);
            }
        }
    }
}

/// Applies every rule to one source file.
fn audit_file(rel: &Path, text: &str, crate_name: &str, findings: &mut Vec<Finding>) {
    let ordering = ORDERING_CRATES.contains(&crate_name);
    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);
    let mut in_tests = false;
    for (idx, line) in text.lines().enumerate() {
        // Repo convention: the unit-test module is the last item of the
        // file, so everything after `#[cfg(test)]` is test code and exempt
        // from the panic-safety and float-comparison rules.
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        let code = strip_comment(line);
        if code.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut report = |rule: &'static str, message: String| {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule,
                message,
            });
        };
        if ordering && (code.contains("HashMap") || code.contains("HashSet")) {
            report(
                "hash-order",
                "hash collections have randomized iteration order; use BTreeMap/BTreeSet/Vec \
                 in simulation-ordering crates"
                    .into(),
            );
        }
        if deterministic {
            for needle in ["std::time", "thread_rng", "from_entropy", "rand::rng("] {
                if code.contains(needle) {
                    report(
                        "wall-clock-entropy",
                        format!(
                            "`{needle}` breaks reproducibility; use the event queue clock and \
                             seeded rng streams"
                        ),
                    );
                }
            }
        }
        if !in_tests {
            if code.contains(".unwrap()") {
                report(
                    "unwrap",
                    "library code must not unwrap; return a Result or use \
                     expect(\"why this cannot fail\")"
                        .into(),
                );
            }
            if let Some(operand) = float_literal_equality(code) {
                report(
                    "float-eq",
                    format!("direct f64 equality against `{operand}`; compare with a tolerance"),
                );
            }
        }
    }
}

/// Drops a trailing `//` comment (including doc comments) from a line,
/// ignoring `//` inside string literals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped character
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Detects `== <float literal>` or `<float literal> ==` comparisons (also
/// `!=`). Returns the offending literal when found.
///
/// This is a token heuristic: a float literal is a digit run containing a
/// `.` with a digit on both sides (so ranges like `0..10` and method calls
/// like `1.max(x)` do not match).
fn float_literal_equality(code: &str) -> Option<String> {
    let sites = code
        .match_indices("==")
        .chain(code.match_indices("!="))
        .map(|(pos, _)| pos);
    for pos in sites {
        // `<=` / `>=` are ordering comparisons and fine; `!==` cannot
        // occur in Rust.
        if pos > 0 && matches!(code.as_bytes()[pos - 1], b'<' | b'>') {
            continue;
        }
        let left = code[..pos].trim_end();
        let right = code[pos + 2..].trim_start();
        let left_token = left
            .rsplit(|c: char| c.is_whitespace() || "(,".contains(c))
            .next();
        let right_token = right
            .split(|c: char| c.is_whitespace() || "),;".contains(c))
            .next();
        for token in [left_token, right_token].into_iter().flatten() {
            if is_float_literal(token) {
                return Some(token.to_string());
            }
        }
    }
    None
}

/// Whether `token` is (or ends with) a float literal like `1.0`, `0.5e3`,
/// or `2.25f64`.
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_matches(|c: char| "()&*-+".contains(c));
    let t = t
        .strip_suffix("f64")
        .or_else(|| t.strip_suffix("f32"))
        .unwrap_or(t);
    let Some(dot) = t.find('.') else {
        return false;
    };
    let (int_part, rest) = t.split_at(dot);
    let frac = &rest[1..];
    let int_ok = !int_part.is_empty() && int_part.chars().all(|c| c.is_ascii_digit() || c == '_');
    let frac_digits: String = frac
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_' || *c == 'e' || *c == '-')
        .collect();
    let frac_ok = frac_digits
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit());
    // Reject method calls on integers (`1.max(...)`) — the fractional part
    // must be digits, not an identifier.
    int_ok && frac_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_literal_detection() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("0.5e3"));
        assert!(is_float_literal("2.25f64"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal("0..10"));
        assert!(!is_float_literal("1.max"));
        assert!(!is_float_literal("x.len"));
    }

    #[test]
    fn equality_heuristic() {
        assert!(float_literal_equality("if x == 1.0 {").is_some());
        assert!(float_literal_equality("if 0.5 == y {").is_some());
        assert!(float_literal_equality("assert!(util != 0.3);").is_some());
        assert!(float_literal_equality("if x <= 1.0 {").is_none());
        assert!(float_literal_equality("if x >= 1.0 {").is_none());
        assert!(float_literal_equality("if n == 10 {").is_none());
    }

    #[test]
    fn comment_stripping() {
        assert_eq!(strip_comment("let x = 1; // == 1.0"), "let x = 1; ");
        assert_eq!(strip_comment("/// doc == 1.0"), "");
        assert_eq!(strip_comment("let s = \"a // b\";"), "let s = \"a // b\";");
    }

    #[test]
    fn flags_hash_collections_only_in_ordering_crates() {
        let mut findings = Vec::new();
        audit_file(
            Path::new("crates/mac/src/x.rs"),
            "use std::collections::HashMap;\n",
            "mac",
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hash-order");
        findings.clear();
        audit_file(
            Path::new("crates/stats/src/x.rs"),
            "use std::collections::HashMap;\n",
            "stats",
            &mut findings,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn flags_entropy_and_unwrap_outside_tests() {
        let src = "fn f() { let t = std::time::Instant::now(); x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let mut findings = Vec::new();
        audit_file(Path::new("crates/sim/src/x.rs"), src, "sim", &mut findings);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["wall-clock-entropy", "unwrap"]);
    }
}
