//! A hand-rolled Rust lexer producing a token stream with line/column
//! spans plus a side list of comments.
//!
//! The lexer exists so the rule engine never mistakes text inside a string
//! literal, doc comment, or block comment for code (the "HashMap in a doc
//! comment" class of false positive the old line-based auditor had), and
//! never mistakes a lifetime for a character literal. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), preserved in a side table so the suppression and
//!   justification passes can see them;
//! * string literals with escapes, raw strings (`r"…"`, `r#"…"#` with any
//!   number of `#`s), byte and byte-raw strings, and C strings;
//! * character literals vs lifetimes/labels (`'a'` vs `'a` vs `'\n'`);
//! * numeric literals including hex/octal/binary prefixes, `_` separators,
//!   float forms (`1.0`, `1.`, `1e9`, `2.5e-3`), and type suffixes —
//!   distinguishing `1.0` (float) from `0..10` (range), `x.0` (tuple
//!   field), and `1.max(2)` (method call on an integer);
//! * multi-character operators the rules care about (`==`, `!=`, `<=`,
//!   `>=`, `::`, `->`, `=>`, `..`, `..=`).
//!
//! It is deliberately *not* a full parser: it has no grammar, only a token
//! classification. The item-level structure lives in [`crate::model`].

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `HashMap`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// An integer literal (`42`, `0xFA17_1A11`, `7u64`).
    Int,
    /// A float literal (`1.0`, `1.`, `5e-3`, `2.25f64`).
    Float,
    /// A string literal of any flavor (plain, raw, byte, C).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Punctuation or an operator; multi-character operators from the set
    /// documented on the module are a single token.
    Punct,
}

/// One token: kind plus byte range and 1-based line/column position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.start + self.len]
    }
}

/// One comment (line or block), with the `//`/`/*` markers included.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the comment's first byte.
    pub start: usize,
    /// Byte length of the comment (for block comments, through the
    /// closing `*/`).
    pub len: usize,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based last line the comment covers (equal to `line` for line
    /// comments).
    pub end_line: u32,
}

impl Comment {
    /// The comment's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.start + self.len]
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch is a simple
/// prefix scan.
const OPERATORS: &[&str] = &["..=", "==", "!=", "<=", ">=", "::", "->", "=>", ".."];

/// Lexes `source` into tokens and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// byte) degrades to best-effort tokens rather than an error, because the
/// analyzer must keep going on code that `rustc` itself will reject later.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.advance(1),
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'r' | b'b' | b'c' if self.raw_or_byte_literal() => {}
                _ if is_ident_start(self.cur_char()) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn cur_char(&self) -> char {
        self.src[self.pos..].chars().next().unwrap_or('\0') // pos is always a char boundary below len
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances `n` bytes, maintaining line/column counters.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.pos >= self.bytes.len() {
                return;
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    /// Advances one full character (multi-byte safe).
    fn advance_char(&mut self) {
        let n = self.cur_char().len_utf8();
        self.advance(n);
    }

    fn push_token(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            start,
            len: self.pos - start,
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.advance_char();
        }
        self.out.comments.push(Comment {
            start,
            len: self.pos - start,
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.advance(2); // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance_char();
            }
        }
        self.out.comments.push(Comment {
            start,
            len: self.pos - start,
            line,
            end_line: self.line,
        });
    }

    /// Lexes a plain (non-raw) string body starting at the opening quote.
    fn string(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                b'"' => {
                    self.advance(1);
                    break;
                }
                _ => self.advance_char(),
            }
        }
        self.push_token(TokenKind::Str, start, line, col);
    }

    /// Tries to lex a raw/byte/C string (or byte char) literal starting at
    /// the current `r`/`b`/`c` prefix. Returns `false` when the prefix is
    /// just the start of an ordinary identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        // Longest literal prefixes first: br#…, br", rb is not Rust.
        let (prefix_len, raw, is_char) = if rest.starts_with(b"br#") || rest.starts_with(b"br\"") {
            (2, true, false)
        } else if rest.starts_with(b"r#\"") || rest.starts_with(b"r##") || rest.starts_with(b"r\"")
        {
            (1, true, false)
        } else if rest.starts_with(b"b\"") || rest.starts_with(b"c\"") {
            (1, false, false)
        } else if rest.starts_with(b"b'") {
            (1, false, true)
        } else {
            return false;
        };
        // `r#ident` (a raw identifier) also matches `r#` — only treat it as
        // a raw string if a quote follows the `#` run.
        if raw {
            let mut i = self.pos + prefix_len;
            while self.bytes.get(i) == Some(&b'#') {
                i += 1;
            }
            if self.bytes.get(i) != Some(&b'"') {
                return false;
            }
        }
        let (start, line, col) = (self.pos, self.line, self.col);
        self.advance(prefix_len);
        if is_char {
            // b'x' or b'\n'
            self.advance(1); // opening quote
            if self.bytes.get(self.pos) == Some(&b'\\') {
                self.advance(2);
            } else {
                self.advance_char();
            }
            if self.bytes.get(self.pos) == Some(&b'\'') {
                self.advance(1);
            }
            self.push_token(TokenKind::Char, start, line, col);
            return true;
        }
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(self.pos) == Some(&b'#') {
                hashes += 1;
                self.advance(1);
            }
            self.advance(1); // opening quote
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            while self.pos < self.bytes.len() && !self.bytes[self.pos..].starts_with(&closer) {
                self.advance_char();
            }
            self.advance(closer.len().min(self.bytes.len() - self.pos));
            self.push_token(TokenKind::Str, start, line, col);
        } else {
            // b"…" / c"…": same escape rules as a plain string.
            self.advance(1);
            while self.pos < self.bytes.len() {
                match self.bytes[self.pos] {
                    b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                    b'"' => {
                        self.advance(1);
                        break;
                    }
                    _ => self.advance_char(),
                }
            }
            self.push_token(TokenKind::Str, start, line, col);
        }
        true
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label).
    fn char_or_lifetime(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(b'\\') => false,
            Some(c) if is_ident_start(c as char) || c.is_ascii_digit() => {
                // `'a'` is a char; `'a` / `'static` is a lifetime. Look for
                // the closing quote right after one identifier character
                // run of length 1 (chars like `'a'`) — longer runs without
                // a quote are lifetimes.
                self.peek(2) != Some(b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.advance(1); // the `'`
            while self.pos < self.bytes.len() && is_ident_continue(self.cur_char()) {
                self.advance_char();
            }
            self.push_token(TokenKind::Lifetime, start, line, col);
        } else {
            self.advance(1); // the `'`
            if self.bytes.get(self.pos) == Some(&b'\\') {
                self.advance(2);
                // escapes like \u{1F600} carry a braced payload
                if self.bytes.get(self.pos) == Some(&b'{') {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'}' {
                        self.advance(1);
                    }
                    self.advance(1);
                }
            } else {
                self.advance_char();
            }
            if self.bytes.get(self.pos) == Some(&b'\'') {
                self.advance(1);
            }
            self.push_token(TokenKind::Char, start, line, col);
        }
    }

    fn number(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let mut float = false;
        if self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.advance(2);
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                self.advance(1);
            }
            self.push_token(TokenKind::Int, start, line, col);
            return;
        }
        self.digits();
        // Fractional part: `1.0` and `1.` are floats, `0..10` is an int
        // followed by a range, `1.max(2)` is an int then a method call.
        if self.bytes.get(self.pos) == Some(&b'.') {
            let after = self.peek(1);
            let starts_method = after.is_some_and(|b| is_ident_start(b as char));
            let starts_range = after == Some(b'.');
            if !starts_method && !starts_range {
                float = true;
                self.advance(1);
                self.digits();
            }
        }
        // Exponent: `1e9`, `2.5e-3`.
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            let (a, b) = (self.peek(1), self.peek(2));
            let exp = match a {
                Some(b'+' | b'-') => b.is_some_and(|d| d.is_ascii_digit()),
                Some(d) => d.is_ascii_digit(),
                None => false,
            };
            if exp {
                float = true;
                self.advance(if matches!(a, Some(b'+' | b'-')) { 2 } else { 1 });
                self.digits();
            }
        }
        // Type suffix (`u64`, `f64`, …) rides along with the token.
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|b| is_ident_start(*b as char))
        {
            let suffix_start = self.pos;
            while self.pos < self.bytes.len() && is_ident_continue(self.cur_char()) {
                self.advance_char();
            }
            let suffix = &self.src[suffix_start..self.pos];
            if suffix.starts_with("f32") || suffix.starts_with("f64") {
                float = true;
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push_token(kind, start, line, col);
    }

    fn digits(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || *b == b'_')
        {
            self.advance(1);
        }
    }

    fn ident(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        while self.pos < self.bytes.len() && is_ident_continue(self.cur_char()) {
            self.advance_char();
        }
        self.push_token(TokenKind::Ident, start, line, col);
    }

    fn punct(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.advance(op.len());
                self.push_token(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.advance_char();
        self.push_token(TokenKind::Punct, start, line, col);
    }
}

/// Whether `c` can start an identifier.
fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Whether `c` can continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Parses the numeric value of an integer-literal token's text (handles
/// `0x`/`0o`/`0b` prefixes, `_` separators, and type suffixes). Returns
/// `None` for values that overflow `u128`.
pub fn int_value(text: &str) -> Option<u128> {
    let clean: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = if let Some(h) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        (h, 16)
    } else if let Some(o) = clean
        .strip_prefix("0o")
        .or_else(|| clean.strip_prefix("0O"))
    {
        (o, 8)
    } else if let Some(b) = clean
        .strip_prefix("0b")
        .or_else(|| clean.strip_prefix("0B"))
    {
        (b, 2)
    } else {
        (clean.as_str(), 10)
    };
    // Drop any type suffix (`u64`, `usize`, …).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let src = "let x = 1; // HashMap here\n/* also HashMap */ let y = 2;";
        let toks = kinds(src);
        assert!(toks.iter().all(|(_, t)| t != "HashMap"));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text(src).contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ fn x() {}";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Ident, "fn".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text(src).ends_with("c */"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "HashMap // not a comment"; let t = 1;"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap")));
        assert!(toks.iter().any(|(_, t)| t == "t"));
        assert!(lex(src).comments.is_empty());
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let a = r#"raw "quoted" body"#; let r#fn = 1;"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quoted")));
        // `r#fn` lexes as punct `r#`? No: as ident `r`… ensure at least the
        // statement after the raw string is still visible.
        assert!(toks.iter().any(|(_, t)| t == "1"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
    }

    #[test]
    fn numeric_forms() {
        assert_eq!(
            kinds("1.0 0..10 x.0 1.max(2) 5e-3 0xFA17_1A11 2.25f64 7u64 1.")
                .into_iter()
                .filter(|(k, _)| matches!(k, TokenKind::Int | TokenKind::Float))
                .collect::<Vec<_>>(),
            vec![
                (TokenKind::Float, "1.0".to_string()),
                (TokenKind::Int, "0".to_string()),
                (TokenKind::Int, "10".to_string()),
                (TokenKind::Int, "0".to_string()),
                (TokenKind::Int, "1".to_string()),
                (TokenKind::Int, "2".to_string()),
                (TokenKind::Float, "5e-3".to_string()),
                (TokenKind::Int, "0xFA17_1A11".to_string()),
                (TokenKind::Float, "2.25f64".to_string()),
                (TokenKind::Int, "7u64".to_string()),
                (TokenKind::Float, "1.".to_string()),
            ]
        );
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("0xFA17_1A11"), Some(0xFA17_1A11));
        assert_eq!(int_value("42"), Some(42));
        assert_eq!(int_value("0b1010"), Some(10));
        assert_eq!(int_value("7u64"), Some(7));
        assert_eq!(int_value("0o17"), Some(15));
    }

    #[test]
    fn operators_munch_maximally() {
        let src = "a == b != c <= d ..= e .. f :: g -> h => i";
        let ops: Vec<String> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "<=", "..=", "..", "::", "->", "=>"]);
    }

    #[test]
    fn spans_are_one_based() {
        let src = "fn f() {\n    let x = 1;\n}";
        let lexed = lex(src);
        let x = lexed
            .tokens
            .iter()
            .find(|t| t.text(src) == "x")
            .expect("token x exists");
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn byte_char_literal() {
        let src = r"let b = b'\n'; let c = 'q';";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == r"b'\n'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'q'"));
    }
}
