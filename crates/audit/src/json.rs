//! A minimal JSON reader for the baseline file and the fixture tests.
//!
//! Std-only by design (the analyzer must not grow dependencies); supports
//! exactly the subset the analyzer writes: objects, arrays, strings with
//! the common escapes, numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order normalized; duplicate keys keep the last).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects: `value.get("findings")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse error with byte offset.
#[derive(Debug)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(err(*pos, "object key must be a string")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "short \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_analyzer_output() {
        let doc = r#"{"schema": "dirca-audit/1", "findings": [{"rule": "DA004", "line": 3, "suppressed": false}], "summary": {"total": 1}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("dirca-audit/1")
        );
        let findings = v.get("findings").and_then(Value::as_arr).expect("array");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("line").and_then(Value::as_num), Some(3.0));
        assert_eq!(findings[0].get("suppressed"), Some(&Value::Bool(false)));
    }

    #[test]
    fn escapes_decode() {
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 45").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").expect("arr"), Value::Arr(vec![]));
        assert_eq!(parse("{}").expect("obj"), Value::Obj(BTreeMap::new()));
    }
}
