//! Explicit finding suppression: `// audit-allow(rule): why`.
//!
//! A suppression comment names one or more rules (by short name or ID)
//! and must carry a non-empty justification after the colon. It applies
//! to findings on its own line (trailing comment) or on the next code
//! line (standalone comment). A suppression that matches no finding is
//! itself reported under `DA009 stale-allow`, so dead allows cannot
//! accumulate.

use crate::diag::{Finding, Rule};
use crate::model::SourceFile;

/// One parsed `audit-allow` directive.
#[derive(Debug)]
pub struct Suppression {
    /// Rules this directive may suppress.
    pub rules: Vec<Rule>,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// Whether a non-empty reason followed the colon.
    pub has_reason: bool,
    /// Rule names that did not resolve (typos — reported, never silently
    /// ignored).
    pub unknown: Vec<String>,
    /// Whether the directive suppressed at least one finding.
    pub used: bool,
}

/// Extracts all suppression directives from one file's comments.
pub fn collect(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in &file.comments {
        // A directive must start the comment (after the `//`-style markers)
        // so prose *about* `audit-allow(...)` in docs is never a directive.
        let text = comment
            .text(&file.source)
            .trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(after) = text.strip_prefix("audit-allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            continue;
        };
        let names = &after[..close];
        let rest = &after[close + 1..];
        let has_reason = rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        let mut rules = Vec::new();
        let mut unknown = Vec::new();
        for raw in names.split(',') {
            let name = raw.trim();
            if name.is_empty() {
                continue;
            }
            match Rule::parse(name) {
                Some(rule) => rules.push(rule),
                None => unknown.push(name.to_string()),
            }
        }
        out.push(Suppression {
            rules,
            line: comment.line,
            col: 1,
            has_reason,
            unknown,
            used: false,
        });
    }
    out
}

/// Marks findings suppressed where a directive covers them, flags the
/// directive used, and appends `DA009` findings for malformed or unused
/// directives.
///
/// Findings belonging to other files are ignored, so the caller may pass
/// the whole workspace's findings.
pub fn apply(
    file: &SourceFile,
    suppressions: &mut [Suppression],
    findings: &mut [Finding],
    stale: &mut Vec<Finding>,
) {
    for finding in findings.iter_mut() {
        if finding.file != file.rel_path {
            continue;
        }
        for sup in suppressions.iter_mut() {
            let covers = sup.line == finding.line || sup.line + 1 == finding.line;
            if covers && sup.rules.contains(&finding.rule) && sup.has_reason {
                finding.suppressed = true;
                sup.used = true;
            }
        }
    }
    for sup in suppressions {
        if !sup.has_reason {
            stale.push(stale_finding(
                file,
                sup.line,
                "audit-allow without a justification: write `audit-allow(rule): why`".to_string(),
            ));
        }
        for unknown in &sup.unknown {
            stale.push(stale_finding(
                file,
                sup.line,
                format!("audit-allow names unknown rule `{unknown}`"),
            ));
        }
        if sup.has_reason && sup.unknown.is_empty() && !sup.used {
            let names: Vec<_> = sup.rules.iter().map(|r| r.name()).collect();
            stale.push(stale_finding(
                file,
                sup.line,
                format!(
                    "stale audit-allow({}): it suppresses nothing on this or the next line",
                    names.join(", ")
                ),
            ));
        }
    }
}

fn stale_finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: Rule::StaleAllow,
        file: file.rel_path.clone(),
        line,
        col: 1,
        message,
        snippet: file.line_text(line).to_string(),
        suppressed: false,
        baselined: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;

    fn file(src: &str) -> SourceFile {
        parse_file("crates/net/src/x.rs".to_string(), src.to_string())
    }

    fn finding(rule: Rule, line: u32) -> Finding {
        Finding {
            rule,
            file: "crates/net/src/x.rs".into(),
            line,
            col: 1,
            message: "m".into(),
            snippet: String::new(),
            suppressed: false,
            baselined: false,
        }
    }

    #[test]
    fn trailing_and_preceding_comments_suppress() {
        let src = "\
let a = x.unwrap(); // audit-allow(unwrap): cannot fail, checked above
// audit-allow(unwrap): prototype code
let b = y.unwrap();
";
        let f = file(src);
        let mut sups = collect(&f);
        assert_eq!(sups.len(), 2);
        let mut findings = vec![finding(Rule::Unwrap, 1), finding(Rule::Unwrap, 3)];
        let mut stale = Vec::new();
        apply(&f, &mut sups, &mut findings, &mut stale);
        assert!(findings.iter().all(|f| f.suppressed));
        assert!(stale.is_empty());
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let src = "let a = x.unwrap(); // audit-allow(float-eq): wrong rule\n";
        let f = file(src);
        let mut sups = collect(&f);
        let mut findings = vec![finding(Rule::Unwrap, 1)];
        let mut stale = Vec::new();
        apply(&f, &mut sups, &mut findings, &mut stale);
        assert!(!findings[0].suppressed);
        // …and the allow is stale: it suppressed nothing.
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, Rule::StaleAllow);
    }

    #[test]
    fn missing_reason_is_flagged_and_inert() {
        let src = "let a = x.unwrap(); // audit-allow(unwrap)\n";
        let f = file(src);
        let mut sups = collect(&f);
        let mut findings = vec![finding(Rule::Unwrap, 1)];
        let mut stale = Vec::new();
        apply(&f, &mut sups, &mut findings, &mut stale);
        assert!(!findings[0].suppressed, "reasonless allows are inert");
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("without a justification"));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "// audit-allow(not-a-rule): hm\nlet a = 1;\n";
        let f = file(src);
        let mut sups = collect(&f);
        let mut stale = Vec::new();
        apply(&f, &mut sups, &mut [], &mut stale);
        assert!(stale
            .iter()
            .any(|s| s.message.contains("unknown rule `not-a-rule`")));
    }

    #[test]
    fn prose_about_directives_is_not_a_directive() {
        let src = "/// Honors `audit-allow(rule): why` comments in docs.\nfn f() {}\n";
        let f = file(src);
        assert!(collect(&f).is_empty());
    }

    #[test]
    fn multi_rule_directive() {
        let src = "let a = v[i].unwrap(); // audit-allow(unwrap, panic-path): i < len checked\n";
        let f = file(src);
        let mut sups = collect(&f);
        let mut findings = vec![finding(Rule::Unwrap, 1), finding(Rule::PanicPath, 1)];
        let mut stale = Vec::new();
        apply(&f, &mut sups, &mut findings, &mut stale);
        assert!(findings.iter().all(|f| f.suppressed));
        assert!(stale.is_empty());
    }
}
