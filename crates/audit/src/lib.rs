//! `dirca-audit` — a std-only static analyzer for the dirca workspace.
//!
//! The simulator's correctness claims rest on invariants the compiler
//! cannot check: deterministic iteration order, seeded randomness,
//! salt-disjoint RNG streams, non-perturbing observability layers, and a
//! panic-free transmit path. This crate enforces them mechanically:
//!
//! ```text
//! lexer  →  cfg  →  model (crates → files → items)  →  rules  →  diag
//!                                                        │
//!                            suppress (audit-allow) ─────┤
//!                            baseline (audit-baseline.json)
//! ```
//!
//! * [`lexer`] tokenizes Rust source (comments, strings, raw strings,
//!   lifetimes, numeric forms) so rules never see text inside literals;
//! * [`cfg`] evaluates `#[cfg(...)]` predicates structurally;
//! * [`model`] recovers the item tree — notably, `#[cfg(test)]` scope is
//!   tracked **wherever** it appears in a file, fixing the old
//!   line-scanner's trailing-module assumption;
//! * [`rules`] runs the passes (`DA001`–`DA009`, see
//!   [`diag::Rule::describe`]);
//! * [`suppress`] honors `// audit-allow(rule): why` comments and flags
//!   stale ones;
//! * [`baseline`] absorbs findings recorded in `audit-baseline.json`
//!   (workspace policy: the checked-in baseline is empty).
//!
//! The library is dependency-free by design — the analyzer gates CI, so
//! it must build before (and regardless of) everything else.

pub mod baseline;
pub mod cfg;
pub mod diag;
pub mod json;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod suppress;

use std::path::Path;

use diag::{Analysis, Finding};
use model::Workspace;

/// Crates never scanned: the bench harness intentionally uses wall-clock
/// timing (that is its job).
pub const SKIP_CRATES: &[&str] = &["bench"];

/// Loads the workspace under `root` and runs every rule pass.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let ws = Workspace::load(root, SKIP_CRATES)?;
    Ok(analyze_workspace(&ws))
}

/// Runs every rule pass over an already-loaded workspace, applies
/// `audit-allow` suppressions, and sorts findings by position.
///
/// The baseline is *not* applied here — callers decide whether one is in
/// play (see [`baseline::Baseline::apply`]).
pub fn analyze_workspace(ws: &Workspace) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    let gated = rules::gates::gated_module_files(ws);
    for krate in &ws.crates {
        for file in &krate.files {
            rules::bans::run(krate, file, &mut findings);
            rules::gates::run(krate, file, &gated, &mut findings);
            rules::purity::run(krate, file, &mut findings);
            rules::allows::run(krate, file, &mut findings);
            rules::salts::run_calls(krate, file, &mut findings);
        }
    }
    rules::salts::run_consts(ws, &mut findings);
    // Suppressions: applied after all passes so cross-file findings (salt
    // registry checks) are suppressible too.
    let mut stale: Vec<Finding> = Vec::new();
    for krate in &ws.crates {
        for file in &krate.files {
            let mut sups = suppress::collect(file);
            if sups.is_empty() {
                continue;
            }
            suppress::apply(file, &mut sups, &mut findings, &mut stale);
        }
    }
    findings.extend(stale);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Analysis {
        findings,
        crates: ws.crates.len(),
        files: ws.crates.iter().map(|c| c.files.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_inline_workspace() {
        let ws = Workspace::from_source(
            "net",
            "crates/net/src/world.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // audit-allow(unwrap, panic-path): demo\n}\n",
        );
        let analysis = analyze_workspace(&ws);
        assert_eq!(analysis.files, 1);
        assert!(analysis.findings.iter().all(|f| f.suppressed));
        assert_eq!(analysis.active_count(), 0);
    }

    #[test]
    fn findings_are_sorted() {
        let ws = Workspace::from_source(
            "net",
            "crates/net/src/x.rs",
            "pub fn g(b: Option<u32>) -> u32 { b.unwrap() }\npub fn f(a: Option<u32>) -> u32 { a.unwrap() }\n",
        );
        let analysis = analyze_workspace(&ws);
        assert_eq!(analysis.findings.len(), 2);
        assert!(analysis.findings[0].line < analysis.findings[1].line);
    }
}
