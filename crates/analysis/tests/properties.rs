//! Property-based tests of the analytical model: for any admissible
//! parameters, throughput stays physical and the Markov chain stays a
//! probability distribution.

use dirca_analysis::{
    drts_dcts, drts_octs, orts_octs, simpson, throughput, truncated_geometric_mean, ModelInput,
    ProtocolTimes,
};
use dirca_mac::Scheme;
use proptest::prelude::*;

fn times_strategy() -> impl Strategy<Value = ProtocolTimes> {
    (1u32..20, 1u32..20, 5u32..400, 1u32..20).prop_map(|(l_rts, l_cts, l_data, l_ack)| {
        ProtocolTimes {
            l_rts,
            l_cts,
            l_data,
            l_ack,
        }
    })
}

fn input_strategy() -> impl Strategy<Value = ModelInput> {
    (
        times_strategy(),
        0.5f64..20.0,
        0.02f64..std::f64::consts::TAU,
    )
        .prop_map(|(times, n_avg, theta)| ModelInput::new(times, n_avg, theta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn throughput_is_physical(input in input_strategy(), p in 0.0001f64..0.9) {
        // Throughput is a time fraction spent on successful data: it must
        // lie in [0, l_data / T_succeed).
        let ceiling = f64::from(input.times.l_data) / input.times.t_succeed();
        for scheme in Scheme::ALL {
            let th = throughput(scheme, &input, p);
            prop_assert!(th.is_finite(), "{scheme}: non-finite");
            prop_assert!(th >= 0.0, "{scheme}: negative {th}");
            prop_assert!(th <= ceiling + 1e-12, "{scheme}: {th} above ceiling {ceiling}");
        }
    }

    #[test]
    fn success_probability_below_attempt_probability(input in input_strategy(), p in 0.0001f64..0.5) {
        // P_ws conditions on the node transmitting (probability p) and
        // more, so it can never exceed p.
        prop_assert!(orts_octs::p_ws(&input, p) <= p);
        prop_assert!(drts_dcts::p_ws(&input, p) <= p);
        prop_assert!(drts_octs::p_ws(&input, p) <= p);
    }

    #[test]
    fn p_ww_is_probability_and_decreases_with_density(
        times in times_strategy(),
        theta in 0.02f64..std::f64::consts::TAU,
        p in 0.0001f64..0.5,
        n in 0.5f64..10.0,
    ) {
        let sparse = ModelInput::new(times, n, theta);
        let dense = ModelInput::new(times, n * 2.0, theta);
        for f in [orts_octs::p_ww, drts_dcts::p_ww, drts_octs::p_ww] {
            let a = f(&sparse, p);
            let b = f(&dense, p);
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert!(b <= a + 1e-12, "P_ww rose with density");
        }
    }

    #[test]
    fn t_fail_within_support(input in input_strategy(), p in 0.0001f64..0.9) {
        let t = &input.times;
        let t_max = f64::from(t.l_rts + t.l_cts + t.l_data + t.l_ack + 4);
        let full = drts_dcts::t_fail(&input, p);
        prop_assert!(full >= f64::from(t.l_rts + 1) - 1e-9);
        prop_assert!(full <= t_max + 1e-9);
        let hybrid = drts_octs::t_fail(&input, p);
        prop_assert!(hybrid >= f64::from(t.l_rts + t.l_cts + 2) - 1e-9);
        prop_assert!(hybrid <= t_max + 1e-9);
        prop_assert!(hybrid >= full - 1e-9, "hybrid failures cannot be cheaper");
    }

    #[test]
    fn truncated_geometric_mean_is_monotone_in_bounds(
        p in 0.001f64..0.999,
        t1 in 1u32..50,
        span in 0u32..100,
    ) {
        let m = truncated_geometric_mean(p, t1, t1 + span);
        prop_assert!(m >= f64::from(t1) - 1e-9);
        prop_assert!(m <= f64::from(t1 + span) + 1e-9);
        // Widening the support can only raise the mean.
        let wider = truncated_geometric_mean(p, t1, t1 + span + 10);
        prop_assert!(wider >= m - 1e-9);
    }

    #[test]
    fn simpson_agrees_with_antiderivative_for_quartics(
        a in -2.0f64..2.0,
        len in 0.01f64..3.0,
        c3 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        let b = a + len;
        let f = |x: f64| c3 * x * x * x + c2 * x * x + 1.0;
        let antider = |x: f64| c3 * x.powi(4) / 4.0 + c2 * x.powi(3) / 3.0 + x;
        let got = simpson(a, b, 256, f);
        let exact = antider(b) - antider(a);
        prop_assert!((got - exact).abs() < 1e-6 * (1.0 + exact.abs()));
    }

    #[test]
    fn narrowing_the_beam_raises_p_ww(
        times in times_strategy(),
        n in 1.0f64..10.0,
        p in 0.001f64..0.5,
        theta in 0.1f64..std::f64::consts::TAU,
    ) {
        // A waiting node is disturbed at the directional rate p' = p·θ/2π,
        // so narrowing the beam always makes waits stickier.
        let wide = drts_dcts::p_ww(&ModelInput::new(times, n, theta), p);
        let narrow = drts_dcts::p_ww(&ModelInput::new(times, n, theta / 2.0), p);
        prop_assert!(narrow >= wide - 1e-12);
    }

    #[test]
    fn narrowing_the_beam_helps_at_paper_lengths(
        n in 1.0f64..8.0,
        p in 0.001f64..0.03,
        theta in 0.5f64..2.6,
    ) {
        // With the paper's packet lengths, moderate beamwidths (clear of
        // the tan(θ/2) blow-up near 180°), and attempt probabilities in
        // the collision-avoidance regime (p ≲ 0.03, where the paper's
        // optima live), DRTS-DCTS throughput is monotone in θ. Outside
        // this envelope the model is genuinely non-monotone — see
        // `wider_beams_can_win_for_short_handshakes`.
        let times = ProtocolTimes::paper();
        let wide = throughput(Scheme::DrtsDcts, &ModelInput::new(times, n, theta), p);
        let narrow = throughput(Scheme::DrtsDcts, &ModelInput::new(times, n, theta / 2.0), p);
        prop_assert!(narrow >= wide - 1e-9, "narrow {narrow} < wide {wide} at θ={theta}");
    }
}

/// A documented corner of the paper's model, found by property testing:
/// for very short handshakes (control packets of 1 slot) at high attempt
/// probability, a *wider* beam can beat a narrower one at fixed `p`. The
/// cause is geometric: at short sender–receiver distances a wide beam
/// covers most of the two-disk lens, leaving almost no Area III — the
/// region exposed for the whole handshake — whereas a narrow beam pushes
/// most of the lens into Area III. With `l_data` large (the paper's
/// regime) the effect washes out, which is why Fig. 5 is monotone.
#[test]
fn wider_beams_can_win_for_short_handshakes() {
    let times = ProtocolTimes {
        l_rts: 1,
        l_cts: 1,
        l_data: 39,
        l_ack: 4,
    };
    let p = 0.18;
    let n = 4.25;
    let wide = throughput(Scheme::DrtsDcts, &ModelInput::new(times, n, 3.05), p);
    let narrow = throughput(Scheme::DrtsDcts, &ModelInput::new(times, n, 3.05 / 2.0), p);
    assert!(
        wide > narrow,
        "expected the documented non-monotonicity: wide {wide} <= narrow {narrow}"
    );
}
