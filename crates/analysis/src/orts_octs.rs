//! §2.1 — the all-omni-directional ORTS-OCTS scheme.

use dirca_geometry::paper::hidden_area_norm;

use crate::integrate::simpson;
use crate::markov::{throughput_from_chain, ChainInput};
use crate::model::{validate_p, ModelInput};

/// Number of Simpson panels used to integrate over the sender–receiver
/// distance.
pub(crate) const PANELS: usize = 512;

/// `P_ws(r)`: probability that a node at distance `r` (normalized to `R`)
/// from its receiver completes a successful handshake started in this slot.
///
/// `P_ws(r) = p·(1−p)·e^{−pN}·e^{−p·N·B(r)·(2·l_rts+1)}` where `B(r)` is
/// the normalized hidden area. The four factors are: the sender transmits;
/// the receiver listens; no neighbour of the sender transmits in the same
/// slot; no hidden terminal transmits during the RTS's vulnerable period
/// (after which the omni CTS silences everyone).
pub fn p_ws_at(input: &ModelInput, p: f64, r: f64) -> f64 {
    validate_p(p);
    let n = input.n_avg;
    let vulnerable = f64::from(2 * input.times.l_rts + 1);
    p * (1.0 - p) * (-p * n).exp() * (-p * n * hidden_area_norm(r) * vulnerable).exp()
}

/// `P_ws` averaged over the receiver distance with density `f(r) = 2r`.
pub fn p_ws(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    simpson(0.0, 1.0, PANELS, |r| {
        if r <= 0.0 {
            // The integration variable is non-negative: exact origin guard.
            0.0
        } else {
            2.0 * r * p_ws_at(input, p, r)
        }
    })
}

/// `P_ww = (1−p)·e^{−pN}`: the node neither transmits nor hears any
/// neighbour start.
pub fn p_ww(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    (1.0 - p) * (-p * input.n_avg).exp()
}

/// Duration of a failed handshake: `l_rts + l_cts + 2` slots (the sender
/// learns of the failure when no CTS arrives).
pub fn t_fail(input: &ModelInput) -> f64 {
    f64::from(input.times.l_rts + input.times.l_cts + 2)
}

/// Saturation throughput of ORTS-OCTS at attempt probability `p`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Example
///
/// ```
/// use dirca_analysis::{orts_octs, ModelInput, ProtocolTimes};
///
/// let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 1.0);
/// let th = orts_octs::throughput(&input, 0.01);
/// assert!(th > 0.0 && th < 1.0);
/// ```
pub fn throughput(input: &ModelInput, p: f64) -> f64 {
    let chain = ChainInput {
        p_ww: p_ww(input, p),
        p_ws: p_ws(input, p),
        t_succeed: input.times.t_succeed(),
        t_fail: t_fail(input),
        l_data: f64::from(input.times.l_data),
    };
    throughput_from_chain(&chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProtocolTimes;

    fn input() -> ModelInput {
        ModelInput::new(ProtocolTimes::paper(), 5.0, 1.0)
    }

    #[test]
    fn p_ws_below_transmit_probability() {
        let inp = input();
        for &p in &[0.01, 0.05, 0.1] {
            let pws = p_ws(&inp, p);
            assert!(pws > 0.0 && pws < p, "p={p}: P_ws={pws}");
        }
    }

    #[test]
    fn p_ws_at_decreases_with_distance() {
        // Farther receivers expose more hidden area.
        let inp = input();
        let near = p_ws_at(&inp, 0.02, 0.1);
        let far = p_ws_at(&inp, 0.02, 0.9);
        assert!(near > far);
    }

    #[test]
    fn throughput_is_independent_of_theta() {
        let a = throughput(&ModelInput::new(ProtocolTimes::paper(), 5.0, 0.3), 0.02);
        let b = throughput(&ModelInput::new(ProtocolTimes::paper(), 5.0, 3.0), 0.02);
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_has_interior_maximum_in_p() {
        // Tiny p wastes the channel idle; large p wastes it on collisions.
        let inp = input();
        let low = throughput(&inp, 0.0005);
        let mid = throughput(&inp, 0.02);
        let high = throughput(&inp, 0.4);
        assert!(mid > low, "mid {mid} <= low {low}");
        assert!(mid > high, "mid {mid} <= high {high}");
    }

    #[test]
    fn denser_networks_have_lower_throughput_at_fixed_p() {
        let sparse = throughput(&ModelInput::new(ProtocolTimes::paper(), 3.0, 1.0), 0.02);
        let dense = throughput(&ModelInput::new(ProtocolTimes::paper(), 8.0, 1.0), 0.02);
        assert!(sparse > dense);
    }

    #[test]
    fn t_fail_value() {
        assert_eq!(t_fail(&input()), 12.0);
    }

    #[test]
    fn p_ww_limits() {
        let inp = input();
        // p → 0: the node is almost surely still waiting.
        assert!(p_ww(&inp, 1e-9) > 0.9999);
        // Large p: waiting is unlikely.
        assert!(p_ww(&inp, 0.5) < 0.1);
    }
}
