//! The analytical model of Section 2 of Wang & Garcia-Luna-Aceves
//! (ICDCS 2003).
//!
//! Nodes form a two-dimensional Poisson field with, on average, `N`
//! neighbours within the common range `R`. Time is slotted; every silent
//! node starts a handshake in a slot with probability `p`. Each node is a
//! three-state Markov chain (*wait*, *succeed*, *fail*), and the saturation
//! throughput of a node is
//!
//! ```text
//!        l_data · π_s
//! Th = ─────────────────────────────────
//!      π_w·T_w + π_s·T_s + π_f·T_fail
//! ```
//!
//! The three schemes differ in the success probability `P_ws` (built from
//! the interference areas of `dirca_geometry::paper`) and in the duration
//! `T_fail` of failed handshakes:
//!
//! * [`orts_octs::throughput`] — everything omni-directional (§2.1),
//! * [`basic::throughput`] — no handshake at all (basic access; our
//!   extension in the same framework, for the RTS-threshold study),
//! * [`drts_dcts::throughput`] — everything directional (§2.2),
//! * [`drts_octs::throughput`] — directional RTS/DATA/ACK, omni CTS (§2.3).
//!
//! [`throughput`] dispatches on [`dirca_mac::Scheme`];
//! [`optimize::max_throughput`] maximizes over `p` (the paper's "maximum
//! achievable throughput"); [`sweep`] regenerates Fig. 5.
//!
//! # Example
//!
//! ```
//! use dirca_analysis::{throughput, ModelInput, ProtocolTimes};
//! use dirca_mac::Scheme;
//!
//! let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
//! let th_omni = throughput(Scheme::OrtsOcts, &input, 0.01);
//! let th_beam = throughput(Scheme::DrtsDcts, &input, 0.01);
//! assert!(th_beam > th_omni, "narrow beams must win at equal p");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

/// The paper-to-code notation map (rendered from `NOTATION.md`).
#[doc = include_str!("../NOTATION.md")]
pub mod notation {}

pub mod ablation;
pub mod basic;
pub mod drts_dcts;
pub mod drts_octs;
pub mod optimize;
pub mod orts_octs;
pub mod sweep;

mod integrate;
mod markov;
mod model;
mod tgeom;

pub use integrate::simpson;
#[cfg(feature = "audit")]
pub use markov::audit as markov_audit;
pub use markov::{steady_state, throughput_from_chain, ChainInput, SteadyState};
pub use model::{ModelInput, ProtocolTimes};
pub use tgeom::truncated_geometric_mean;

use dirca_mac::Scheme;

/// Saturation throughput of scheme `scheme` at attempt probability `p`.
///
/// Dispatches to the per-scheme modules.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` (see the per-scheme functions).
pub fn throughput(scheme: Scheme, input: &ModelInput, p: f64) -> f64 {
    match scheme {
        Scheme::OrtsOcts => orts_octs::throughput(input, p),
        Scheme::DrtsDcts => drts_dcts::throughput(input, p),
        Scheme::DrtsOcts => drts_octs::throughput(input, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(theta_deg: f64) -> ModelInput {
        ModelInput::new(ProtocolTimes::paper(), 5.0, theta_deg.to_radians())
    }

    #[test]
    fn dispatch_matches_modules() {
        let inp = input(60.0);
        let p = 0.02;
        assert_eq!(
            throughput(Scheme::OrtsOcts, &inp, p),
            orts_octs::throughput(&inp, p)
        );
        assert_eq!(
            throughput(Scheme::DrtsDcts, &inp, p),
            drts_dcts::throughput(&inp, p)
        );
        assert_eq!(
            throughput(Scheme::DrtsOcts, &inp, p),
            drts_octs::throughput(&inp, p)
        );
    }

    #[test]
    fn all_schemes_give_sane_throughput() {
        let inp = input(30.0);
        for scheme in Scheme::ALL {
            for &p in &[0.001, 0.01, 0.05, 0.1] {
                let th = throughput(scheme, &inp, p);
                assert!(th.is_finite() && th >= 0.0, "{scheme} p={p}: {th}");
                assert!(th < 1.0, "{scheme} p={p}: throughput {th} >= 1");
            }
        }
    }

    #[test]
    fn narrow_beam_directional_beats_omni() {
        let inp = input(15.0);
        let p = 0.02;
        let omni = throughput(Scheme::OrtsOcts, &inp, p);
        let dir = throughput(Scheme::DrtsDcts, &inp, p);
        assert!(dir > omni, "directional {dir} <= omni {omni}");
    }
}
