//! The three-state node Markov chain (Fig. 1 of the paper).

/// Inputs to the chain: transition probabilities and state durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainInput {
    /// Probability of staying in *wait* for another slot.
    pub p_ww: f64,
    /// Probability of moving from *wait* to *succeed*.
    pub p_ws: f64,
    /// Duration of a successful handshake, in slots.
    pub t_succeed: f64,
    /// Mean duration of a failed handshake, in slots.
    pub t_fail: f64,
    /// Data packet length, in slots.
    pub l_data: f64,
}

/// Steady-state occupation probabilities of the chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// π_w — probability of the *wait* state.
    pub wait: f64,
    /// π_s — probability of the *succeed* state.
    pub succeed: f64,
    /// π_f — probability of the *fail* state.
    pub fail: f64,
}

/// Solves the chain: `π_w = 1/(2 − P_ww)`, `π_s = π_w·P_ws`,
/// `π_f = 1 − π_w − π_s`.
///
/// # Panics
///
/// Panics if the probabilities are outside `[0, 1]` or `p_ws > 1 − p_ww`
/// (the *wait* state's exits cannot exceed its non-self mass).
pub fn steady_state(input: &ChainInput) -> SteadyState {
    assert!(
        (0.0..=1.0).contains(&input.p_ww) && (0.0..=1.0).contains(&input.p_ws),
        "transition probabilities must be in [0, 1]"
    );
    assert!(
        input.p_ws <= 1.0 - input.p_ww + 1e-12,
        "p_ws {} exceeds available transition mass 1 - p_ww {}",
        input.p_ws,
        1.0 - input.p_ww
    );
    let wait = 1.0 / (2.0 - input.p_ww);
    let succeed = wait * input.p_ws;
    let fail = (1.0 - wait - succeed).max(0.0);
    let ss = SteadyState {
        wait,
        succeed,
        fail,
    };
    #[cfg(feature = "audit")]
    {
        audit::assert_stochastic(&audit::transition_matrix(input));
        audit::assert_fixed_point(input, &ss);
    }
    ss
}

/// The paper's throughput formula: time in successful data transmission
/// over total time, weighting each state by its duration.
///
/// # Panics
///
/// Panics on invalid chain inputs (see [`steady_state`]) or non-positive
/// durations.
pub fn throughput_from_chain(input: &ChainInput) -> f64 {
    assert!(
        input.t_succeed > 0.0 && input.t_fail > 0.0 && input.l_data > 0.0,
        "durations must be positive"
    );
    let ss = steady_state(input);
    let denom = ss.wait + ss.succeed * input.t_succeed + ss.fail * input.t_fail;
    input.l_data * ss.succeed / denom
}

/// Stochastic-matrix auditing for the chain (feature `audit`): panics with
/// `audit[markov]:` messages when the transition matrix is not
/// row-stochastic or a claimed steady state is not a fixed point of it.
/// [`steady_state`] runs both checks on every solve when the feature is on.
#[cfg(feature = "audit")]
pub mod audit {
    use super::{ChainInput, SteadyState};

    /// Numerical slack for probability arithmetic.
    const EPS: f64 = 1e-9;

    /// The explicit transition matrix of the wait/succeed/fail chain, rows
    /// in that state order: *wait* self-loops with `p_ww` and exits to
    /// *succeed*/*fail*; both transmission states return to *wait*.
    pub fn transition_matrix(input: &ChainInput) -> [[f64; 3]; 3] {
        [
            [input.p_ww, input.p_ws, 1.0 - input.p_ww - input.p_ws],
            [1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
        ]
    }

    /// Panics unless every row of `matrix` is a probability distribution
    /// (entries in `[0, 1]`, summing to 1, within numerical slack).
    pub fn assert_stochastic(matrix: &[[f64; 3]; 3]) {
        for (i, row) in matrix.iter().enumerate() {
            for (j, &p) in row.iter().enumerate() {
                assert!(
                    (-EPS..=1.0 + EPS).contains(&p) && p.is_finite(),
                    "audit[markov]: transition probability P[{i}][{j}] = {p} outside [0, 1]"
                );
            }
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() <= EPS,
                "audit[markov]: row {i} sums to {sum}, not 1 — matrix is not stochastic"
            );
        }
    }

    /// Panics unless `ss` is a normalized fixed point of the chain's
    /// transition matrix: `π P = π` and `Σ π = 1` (within numerical slack).
    pub fn assert_fixed_point(input: &ChainInput, ss: &SteadyState) {
        let m = transition_matrix(input);
        let pi = [ss.wait, ss.succeed, ss.fail];
        let total: f64 = pi.iter().sum();
        assert!(
            (total - 1.0).abs() <= EPS,
            "audit[markov]: steady state sums to {total}, not 1"
        );
        for (j, &p_j) in pi.iter().enumerate() {
            let next: f64 = (0..3).map(|i| pi[i] * m[i][j]).sum();
            assert!(
                (next - p_j).abs() <= EPS,
                "audit[markov]: steady state is not a fixed point: (πP)[{j}] = {next} but \
                 π[{j}] = {p_j}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(p_ww: f64, p_ws: f64) -> ChainInput {
        ChainInput {
            p_ww,
            p_ws,
            t_succeed: 119.0,
            t_fail: 12.0,
            l_data: 100.0,
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ss = steady_state(&chain(0.9, 0.05));
        assert!((ss.wait + ss.succeed + ss.fail - 1.0).abs() < 1e-12);
        assert!(ss.wait > 0.0 && ss.succeed > 0.0 && ss.fail >= 0.0);
    }

    #[test]
    fn no_transmissions_means_all_wait() {
        // p_ww = 1: the node never leaves wait.
        let ss = steady_state(&chain(1.0, 0.0));
        assert!((ss.wait - 1.0).abs() < 1e-12);
        assert_eq!(ss.succeed, 0.0);
    }

    #[test]
    fn always_succeed_splits_between_wait_and_succeed() {
        // Every attempt succeeds: p_ws = 1 - p_ww.
        let ss = steady_state(&chain(0.8, 0.2));
        assert!(ss.fail.abs() < 1e-12);
        assert!((ss.wait - 1.0 / 1.2).abs() < 1e-12);
    }

    #[test]
    fn throughput_increases_with_success_probability() {
        let low = throughput_from_chain(&chain(0.9, 0.01));
        let high = throughput_from_chain(&chain(0.9, 0.05));
        assert!(high > low);
    }

    #[test]
    fn throughput_bounded_by_data_fraction() {
        // Even a node that always succeeds spends T_s slots per l_data.
        let th = throughput_from_chain(&chain(0.5, 0.5));
        assert!(th <= 100.0 / 119.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "transition mass")]
    fn rejects_overfull_exits() {
        let _ = steady_state(&chain(0.9, 0.5));
    }

    #[test]
    #[should_panic(expected = "durations must be positive")]
    fn rejects_zero_durations() {
        let mut c = chain(0.9, 0.05);
        c.t_fail = 0.0;
        let _ = throughput_from_chain(&c);
    }
}
