//! The three-state node Markov chain (Fig. 1 of the paper).

use serde::{Deserialize, Serialize};

/// Inputs to the chain: transition probabilities and state durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainInput {
    /// Probability of staying in *wait* for another slot.
    pub p_ww: f64,
    /// Probability of moving from *wait* to *succeed*.
    pub p_ws: f64,
    /// Duration of a successful handshake, in slots.
    pub t_succeed: f64,
    /// Mean duration of a failed handshake, in slots.
    pub t_fail: f64,
    /// Data packet length, in slots.
    pub l_data: f64,
}

/// Steady-state occupation probabilities of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyState {
    /// π_w — probability of the *wait* state.
    pub wait: f64,
    /// π_s — probability of the *succeed* state.
    pub succeed: f64,
    /// π_f — probability of the *fail* state.
    pub fail: f64,
}

/// Solves the chain: `π_w = 1/(2 − P_ww)`, `π_s = π_w·P_ws`,
/// `π_f = 1 − π_w − π_s`.
///
/// # Panics
///
/// Panics if the probabilities are outside `[0, 1]` or `p_ws > 1 − p_ww`
/// (the *wait* state's exits cannot exceed its non-self mass).
pub fn steady_state(input: &ChainInput) -> SteadyState {
    assert!(
        (0.0..=1.0).contains(&input.p_ww) && (0.0..=1.0).contains(&input.p_ws),
        "transition probabilities must be in [0, 1]"
    );
    assert!(
        input.p_ws <= 1.0 - input.p_ww + 1e-12,
        "p_ws {} exceeds available transition mass 1 - p_ww {}",
        input.p_ws,
        1.0 - input.p_ww
    );
    let wait = 1.0 / (2.0 - input.p_ww);
    let succeed = wait * input.p_ws;
    let fail = (1.0 - wait - succeed).max(0.0);
    SteadyState {
        wait,
        succeed,
        fail,
    }
}

/// The paper's throughput formula: time in successful data transmission
/// over total time, weighting each state by its duration.
///
/// # Panics
///
/// Panics on invalid chain inputs (see [`steady_state`]) or non-positive
/// durations.
pub fn throughput_from_chain(input: &ChainInput) -> f64 {
    assert!(
        input.t_succeed > 0.0 && input.t_fail > 0.0 && input.l_data > 0.0,
        "durations must be positive"
    );
    let ss = steady_state(input);
    let denom = ss.wait + ss.succeed * input.t_succeed + ss.fail * input.t_fail;
    input.l_data * ss.succeed / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(p_ww: f64, p_ws: f64) -> ChainInput {
        ChainInput {
            p_ww,
            p_ws,
            t_succeed: 119.0,
            t_fail: 12.0,
            l_data: 100.0,
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ss = steady_state(&chain(0.9, 0.05));
        assert!((ss.wait + ss.succeed + ss.fail - 1.0).abs() < 1e-12);
        assert!(ss.wait > 0.0 && ss.succeed > 0.0 && ss.fail >= 0.0);
    }

    #[test]
    fn no_transmissions_means_all_wait() {
        // p_ww = 1: the node never leaves wait.
        let ss = steady_state(&chain(1.0, 0.0));
        assert!((ss.wait - 1.0).abs() < 1e-12);
        assert_eq!(ss.succeed, 0.0);
    }

    #[test]
    fn always_succeed_splits_between_wait_and_succeed() {
        // Every attempt succeeds: p_ws = 1 - p_ww.
        let ss = steady_state(&chain(0.8, 0.2));
        assert!(ss.fail.abs() < 1e-12);
        assert!((ss.wait - 1.0 / 1.2).abs() < 1e-12);
    }

    #[test]
    fn throughput_increases_with_success_probability() {
        let low = throughput_from_chain(&chain(0.9, 0.01));
        let high = throughput_from_chain(&chain(0.9, 0.05));
        assert!(high > low);
    }

    #[test]
    fn throughput_bounded_by_data_fraction() {
        // Even a node that always succeeds spends T_s slots per l_data.
        let th = throughput_from_chain(&chain(0.5, 0.5));
        assert!(th <= 100.0 / 119.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "transition mass")]
    fn rejects_overfull_exits() {
        let _ = steady_state(&chain(0.9, 0.5));
    }

    #[test]
    #[should_panic(expected = "durations must be positive")]
    fn rejects_zero_durations() {
        let mut c = chain(0.9, 0.05);
        c.t_fail = 0.0;
        let _ = throughput_from_chain(&c);
    }
}
