//! The truncated geometric distribution of failed-handshake durations.

/// Mean of a geometric distribution with parameter `p`, truncated to the
/// integer support `[t1, t2]`:
///
/// ```text
///             1 − p       t2−t1
/// T_fail = ─────────────   Σ    pⁱ · (t1 + i)
///          1 − p^(t2−t1+1) i=0
/// ```
///
/// The paper models the duration of a failed DRTS-DCTS (or DRTS-OCTS)
/// handshake this way: a failure is detected no earlier than `t1` slots in,
/// no later than the full handshake length `t2`, and longer survivals are
/// geometrically less likely.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `t1 <= t2`.
///
/// # Example
///
/// ```
/// use dirca_analysis::truncated_geometric_mean;
///
/// // With a tiny p virtually all mass sits at t1.
/// let m = truncated_geometric_mean(1e-9, 6, 119);
/// assert!((m - 6.0).abs() < 1e-6);
/// ```
pub fn truncated_geometric_mean(p: f64, t1: u32, t2: u32) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    assert!(t1 <= t2, "t1 {t1} must not exceed t2 {t2}");
    let span = t2 - t1;
    let mut weighted = 0.0;
    let mut p_i = 1.0;
    for i in 0..=span {
        weighted += p_i * f64::from(t1 + i);
        p_i *= p;
    }
    // After the loop, p_i == p^(span+1).
    (1.0 - p) / (1.0 - p_i) * weighted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_support_is_t1() {
        assert!((truncated_geometric_mean(0.3, 7, 7) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_within_support() {
        for &p in &[0.001, 0.05, 0.3, 0.9] {
            let m = truncated_geometric_mean(p, 6, 119);
            assert!((6.0..=119.0).contains(&m), "p={p}: mean {m} out of range");
        }
    }

    #[test]
    fn mean_increases_with_p() {
        let lo = truncated_geometric_mean(0.01, 6, 119);
        let hi = truncated_geometric_mean(0.5, 6, 119);
        assert!(hi > lo);
    }

    #[test]
    fn small_p_concentrates_at_t1() {
        let m = truncated_geometric_mean(1e-12, 12, 119);
        assert!((m - 12.0).abs() < 1e-9);
    }

    #[test]
    fn large_p_approaches_uniform_mean() {
        // As p → 1 the truncated geometric tends to uniform on [t1, t2].
        let m = truncated_geometric_mean(0.999999, 0, 10);
        assert!((m - 5.0).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn normalization_weights_sum_to_one() {
        // Direct check of the distribution: Σ P(i) == 1.
        let (p, t1, t2) = (0.2f64, 3u32, 9u32);
        let norm: f64 = (0..=(t2 - t1))
            .map(|i| (1.0 - p) / (1.0 - p.powi((t2 - t1 + 1) as i32)) * p.powi(i as i32))
            .sum();
        assert!((norm - 1.0).abs() < 1e-12);
        // And the implementation matches the direct weighted sum.
        let direct: f64 = (0..=(t2 - t1))
            .map(|i| {
                (1.0 - p) / (1.0 - p.powi((t2 - t1 + 1) as i32))
                    * p.powi(i as i32)
                    * f64::from(t1 + i)
            })
            .sum();
        assert!((truncated_geometric_mean(p, t1, t2) - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_p_one() {
        let _ = truncated_geometric_mean(1.0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_inverted_support() {
        let _ = truncated_geometric_mean(0.5, 5, 4);
    }
}
