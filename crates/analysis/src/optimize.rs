//! Maximizing throughput over the attempt probability `p`.

use dirca_mac::Scheme;

use crate::{throughput, ModelInput};

/// The result of a throughput maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimum {
    /// Argmax attempt probability.
    pub p: f64,
    /// Maximum throughput.
    pub throughput: f64,
}

/// Maximizes a unimodal-ish function on `(0, 1)` by a coarse logarithmic
/// grid scan followed by golden-section refinement around the best cell.
///
/// # Panics
///
/// Panics if the function returns a non-finite value.
pub fn maximize(f: impl Fn(f64) -> f64) -> Optimum {
    // Log grid from 1e-4 to 0.9: throughput optima of collision-avoidance
    // protocols sit at small p, but keep headroom for degenerate inputs.
    const GRID: usize = 120;
    let lo = 1e-4f64;
    let hi = 0.9f64;
    let ratio = (hi / lo).powf(1.0 / (GRID - 1) as f64);
    let mut best_i = 0;
    let mut best_v = f64::NEG_INFINITY;
    let mut xs = Vec::with_capacity(GRID);
    for i in 0..GRID {
        let x = lo * ratio.powi(i as i32);
        let v = f(x);
        assert!(v.is_finite(), "objective not finite at p={x}: {v}");
        xs.push(x);
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    // Golden-section search in the bracket around the best grid point.
    let mut a = xs[best_i.saturating_sub(1)];
    let mut b = xs[(best_i + 1).min(GRID - 1)];
    if a >= b {
        return Optimum {
            p: xs[best_i],
            throughput: best_v,
        };
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..80 {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
        if (b - a).abs() < 1e-10 {
            break;
        }
    }
    let p = (a + b) / 2.0;
    let v = f(p);
    if v >= best_v {
        Optimum { p, throughput: v }
    } else {
        Optimum {
            p: xs[best_i],
            throughput: best_v,
        }
    }
}

/// The paper's "maximum achievable throughput": the throughput of `scheme`
/// maximized over the attempt probability `p`.
///
/// # Example
///
/// ```
/// use dirca_analysis::{optimize, ModelInput, ProtocolTimes};
/// use dirca_mac::Scheme;
///
/// let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
/// let best = optimize::max_throughput(Scheme::DrtsDcts, &input);
/// assert!(best.throughput > 0.3);
/// assert!(best.p > 0.0 && best.p < 0.5);
/// ```
pub fn max_throughput(scheme: Scheme, input: &ModelInput) -> Optimum {
    maximize(|p| throughput(scheme, input, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolTimes;

    #[test]
    fn maximize_finds_parabola_peak() {
        let opt = maximize(|x| -(x - 0.25) * (x - 0.25));
        assert!((opt.p - 0.25).abs() < 1e-5, "found {}", opt.p);
        assert!(opt.throughput.abs() < 1e-9);
    }

    #[test]
    fn maximize_handles_monotone_decreasing() {
        // Peak at the left edge of the grid.
        let opt = maximize(|x| -x);
        assert!(opt.p <= 2e-4);
    }

    #[test]
    fn max_throughput_beats_fixed_p() {
        let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 1.0);
        for scheme in Scheme::ALL {
            let best = max_throughput(scheme, &input);
            for &p in &[0.001, 0.01, 0.1] {
                assert!(
                    best.throughput >= crate::throughput(scheme, &input, p) - 1e-9,
                    "{scheme}: optimum below fixed p={p}"
                );
            }
        }
    }

    #[test]
    fn optimal_p_is_small_for_dense_networks() {
        // Collision avoidance forces small attempt probabilities (the paper
        // argues p ≲ 0.1).
        let input = ModelInput::new(ProtocolTimes::paper(), 8.0, 1.0);
        let best = max_throughput(Scheme::OrtsOcts, &input);
        assert!(best.p < 0.1, "optimal p {} unexpectedly large", best.p);
    }

    #[test]
    fn optimal_p_decreases_with_density() {
        let sparse = max_throughput(
            Scheme::OrtsOcts,
            &ModelInput::new(ProtocolTimes::paper(), 3.0, 1.0),
        );
        let dense = max_throughput(
            Scheme::OrtsOcts,
            &ModelInput::new(ProtocolTimes::paper(), 8.0, 1.0),
        );
        assert!(dense.p < sparse.p);
    }
}
