//! The beamwidth sweep regenerating Fig. 5.

use dirca_mac::Scheme;

use crate::optimize::max_throughput;
use crate::{ModelInput, ProtocolTimes};

/// One row of the Fig. 5 data: maximum achievable throughput of the three
/// schemes at a given beamwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Beamwidth in degrees.
    pub theta_degrees: f64,
    /// ORTS-OCTS maximum throughput (independent of θ).
    pub orts_octs: f64,
    /// DRTS-DCTS maximum throughput.
    pub drts_dcts: f64,
    /// DRTS-OCTS maximum throughput.
    pub drts_octs: f64,
}

impl Fig5Row {
    /// Throughput of `scheme` in this row.
    pub fn get(&self, scheme: Scheme) -> f64 {
        match scheme {
            Scheme::OrtsOcts => self.orts_octs,
            Scheme::DrtsDcts => self.drts_dcts,
            Scheme::DrtsOcts => self.drts_octs,
        }
    }
}

/// Sweeps the beamwidth over `theta_degrees` and computes the maximum
/// achievable throughput of every scheme (the paper's Fig. 5; its x-axis
/// runs 15°…180° in 15° steps).
///
/// # Panics
///
/// Panics on invalid beamwidths (outside `(0, 360]`) or `n_avg <= 0`.
///
/// # Example
///
/// ```
/// use dirca_analysis::sweep::fig5;
/// use dirca_analysis::ProtocolTimes;
///
/// let rows = fig5(ProtocolTimes::paper(), 5.0, &[15.0, 90.0]);
/// assert_eq!(rows.len(), 2);
/// // Narrow beams: all-directional wins decisively.
/// assert!(rows[0].drts_dcts > rows[0].drts_octs);
/// assert!(rows[0].drts_dcts > rows[0].orts_octs);
/// ```
pub fn fig5(times: ProtocolTimes, n_avg: f64, theta_degrees: &[f64]) -> Vec<Fig5Row> {
    theta_degrees
        .iter()
        .map(|&deg| {
            let input = ModelInput::new(times, n_avg, deg.to_radians());
            Fig5Row {
                theta_degrees: deg,
                orts_octs: max_throughput(Scheme::OrtsOcts, &input).throughput,
                drts_dcts: max_throughput(Scheme::DrtsDcts, &input).throughput,
                drts_octs: max_throughput(Scheme::DrtsOcts, &input).throughput,
            }
        })
        .collect()
}

/// The paper's Fig. 5 x-axis: 15° to 180° in 15° steps.
pub fn paper_theta_grid() -> Vec<f64> {
    (1..=12).map(|i| 15.0 * i as f64).collect()
}

/// One row of the data-length sweep (extension E10): maximum achievable
/// throughput of the three schemes as the data packet length varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataLengthRow {
    /// Data packet length in slots.
    pub l_data: u32,
    /// ORTS-OCTS maximum throughput.
    pub orts_octs: f64,
    /// DRTS-DCTS maximum throughput.
    pub drts_dcts: f64,
    /// DRTS-OCTS maximum throughput.
    pub drts_octs: f64,
}

/// Sweeps the data packet length at fixed beamwidth, quantifying the §3
/// remark that the RTS/CTS handshake is only warranted when data packets
/// are much longer than control packets: at small `l_data` the four-way
/// overhead dominates every scheme.
///
/// # Panics
///
/// Panics if any `l_data` is zero or the other inputs are invalid (see
/// [`crate::ModelInput::new`]).
pub fn data_length_sweep(
    base: ProtocolTimes,
    n_avg: f64,
    theta: f64,
    l_data_values: &[u32],
) -> Vec<DataLengthRow> {
    l_data_values
        .iter()
        .map(|&l_data| {
            assert!(l_data > 0, "l_data must be positive");
            let times = ProtocolTimes { l_data, ..base };
            let input = ModelInput::new(times, n_avg, theta);
            DataLengthRow {
                l_data,
                orts_octs: max_throughput(Scheme::OrtsOcts, &input).throughput,
                drts_dcts: max_throughput(Scheme::DrtsDcts, &input).throughput,
                drts_octs: max_throughput(Scheme::DrtsOcts, &input).throughput,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_15_to_180() {
        let grid = paper_theta_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0], 15.0);
        assert_eq!(grid[11], 180.0);
    }

    #[test]
    fn fig5_shape_matches_paper() {
        let rows = fig5(ProtocolTimes::paper(), 5.0, &paper_theta_grid());

        // (1) ORTS-OCTS is flat in θ.
        let base = rows[0].orts_octs;
        for row in &rows {
            assert!(
                (row.orts_octs - base).abs() < 1e-6,
                "ORTS-OCTS varied with θ"
            );
        }

        // (2) DRTS-DCTS is the overall winner at the narrowest beam and
        //     decays monotonically with θ.
        assert!(rows[0].drts_dcts > rows[0].drts_octs);
        assert!(rows[0].drts_dcts > 1.4 * rows[0].orts_octs);
        for w in rows.windows(2) {
            assert!(
                w[1].drts_dcts <= w[0].drts_dcts + 1e-9,
                "DRTS-DCTS rose between θ={} and θ={}",
                w[0].theta_degrees,
                w[1].theta_degrees
            );
        }

        // (3) DRTS-OCTS differs from ORTS-OCTS only marginally: above it
        //     for narrow beams, slightly below for very wide ones, always
        //     within ±60%.
        for row in &rows {
            if row.theta_degrees <= 60.0 {
                assert!(
                    row.drts_octs >= row.orts_octs - 1e-9,
                    "DRTS-OCTS below ORTS-OCTS at narrow θ={}",
                    row.theta_degrees
                );
            }
            let ratio = row.drts_octs / row.orts_octs;
            assert!(
                (0.8..1.6).contains(&ratio),
                "DRTS-OCTS not marginal at θ={}: ratio {ratio}",
                row.theta_degrees
            );
        }

        // (4) "When the antenna beamwidth is wider, the performance of
        //     DRTS-DCTS drops significantly": by 180° it falls below the
        //     conservative schemes.
        let last = rows.last().unwrap();
        assert!(last.drts_dcts < last.orts_octs);
        assert!(last.drts_dcts < 0.5 * rows[0].drts_dcts);
    }

    #[test]
    fn fig5_row_get_dispatches() {
        let row = Fig5Row {
            theta_degrees: 30.0,
            orts_octs: 0.1,
            drts_dcts: 0.5,
            drts_octs: 0.2,
        };
        assert_eq!(row.get(Scheme::OrtsOcts), 0.1);
        assert_eq!(row.get(Scheme::DrtsDcts), 0.5);
        assert_eq!(row.get(Scheme::DrtsOcts), 0.2);
    }

    #[test]
    fn longer_data_amortizes_handshake_overhead() {
        let rows = data_length_sweep(
            ProtocolTimes::paper(),
            5.0,
            30f64.to_radians(),
            &[10, 50, 100, 200, 400],
        );
        assert_eq!(rows.len(), 5);
        // Throughput rises monotonically with data length for every scheme.
        for w in rows.windows(2) {
            assert!(w[1].orts_octs > w[0].orts_octs);
            assert!(w[1].drts_dcts > w[0].drts_dcts);
            assert!(w[1].drts_octs > w[0].drts_octs);
        }
        // With data as short as the control packets, the handshake
        // overhead caps everything well below the long-data regime.
        assert!(rows[0].orts_octs < 0.5 * rows[4].orts_octs);
    }

    #[test]
    #[should_panic(expected = "l_data must be positive")]
    fn data_length_sweep_rejects_zero() {
        let _ = data_length_sweep(ProtocolTimes::paper(), 5.0, 1.0, &[0]);
    }

    #[test]
    fn density_reduces_all_throughputs() {
        let sparse = fig5(ProtocolTimes::paper(), 3.0, &[30.0]);
        let dense = fig5(ProtocolTimes::paper(), 8.0, &[30.0]);
        assert!(dense[0].orts_octs < sparse[0].orts_octs);
        assert!(dense[0].drts_dcts < sparse[0].drts_dcts);
        assert!(dense[0].drts_octs < sparse[0].drts_octs);
    }
}
