//! §2.2 — the all-directional DRTS-DCTS scheme.

use dirca_geometry::paper::drts_dcts_areas;

use crate::integrate::simpson;
use crate::markov::{throughput_from_chain, ChainInput};
use crate::model::{validate_p, ModelInput};
use crate::orts_octs::PANELS;
use crate::tgeom::truncated_geometric_mean;

/// `P_I(r)`: probability that none of the five interference regions of
/// Fig. 3 disrupts the handshake, given sender–receiver distance `r`.
///
/// Region by region (areas normalized to πR², `p' = p·θ/2π`):
///
/// 1. Area I — nodes inside the sender's beam near the receiver do not
///    know `x` is transmitting; silent for one slot: `e^{−p·S₁·N}`.
/// 2. Area II — silent toward the pair for `2·l_rts` directional slots and
///    one omni slot: `e^{−p′·S₂·N·2l_rts}·e^{−p·S₂·N}`.
/// 3. Area III — silent toward the pair for the whole handshake (θ′ ≈ θ):
///    `e^{−p′·S₃·N·(2l_rts+l_cts+l_data+l_ack+4)}`.
/// 4. Area IV — silent toward `x` while `y` sends CTS and ACK:
///    `e^{−p′·S₄·N·(2l_rts+l_cts+l_ack+2)}`.
/// 5. Area V — silent toward `y` while `x` sends RTS and DATA:
///    `e^{−p′·S₅·N·(3l_rts+l_data+2)}`.
pub fn p_interference_free(input: &ModelInput, p: f64, r: f64) -> f64 {
    validate_p(p);
    let t = &input.times;
    let n = input.n_avg;
    let pd = input.p_directional(p);
    let a = drts_dcts_areas(r, input.theta);
    let w2 = f64::from(2 * t.l_rts);
    let w3 = f64::from(2 * t.l_rts + t.l_cts + t.l_data + t.l_ack + 4);
    let w4 = f64::from(2 * t.l_rts + t.l_cts + t.l_ack + 2);
    let w5 = f64::from(3 * t.l_rts + t.l_data + 2);
    let p1 = (-p * a.s1 * n).exp();
    let p2 = (-pd * a.s2 * n * w2).exp() * (-p * a.s2 * n).exp();
    let p3 = (-pd * a.s3 * n * w3).exp();
    let p4 = (-pd * a.s4 * n * w4).exp();
    let p5 = (-pd * a.s5 * n * w5).exp();
    p1 * p2 * p3 * p4 * p5
}

/// `P_ws(r) = p·(1−p)·P_I(r)`.
pub fn p_ws_at(input: &ModelInput, p: f64, r: f64) -> f64 {
    p * (1.0 - p) * p_interference_free(input, p, r)
}

/// `P_ws` averaged over the receiver distance with density `f(r) = 2r`.
pub fn p_ws(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    simpson(0.0, 1.0, PANELS, |r| {
        if r <= 0.0 {
            // The integration variable is non-negative: exact origin guard.
            0.0
        } else {
            2.0 * r * p_ws_at(input, p, r)
        }
    })
}

/// `P_ww = (1−p)·e^{−p′N}`: with all transmissions directional, only the
/// fraction θ/2π of neighbour transmissions disturbs the node's wait.
pub fn p_ww(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    (1.0 - p) * (-input.p_directional(p) * input.n_avg).exp()
}

/// Mean failed-handshake duration: truncated geometric on
/// `[l_rts + 1, T_succeed]` with parameter `p` (the handshake can be cut
/// short at almost any point because nothing silences all interferers).
pub fn t_fail(input: &ModelInput, p: f64) -> f64 {
    let t1 = input.times.l_rts + 1;
    let t2 = input.times.l_rts + input.times.l_cts + input.times.l_data + input.times.l_ack + 4;
    truncated_geometric_mean(p, t1, t2)
}

/// Saturation throughput of DRTS-DCTS at attempt probability `p`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Example
///
/// ```
/// use dirca_analysis::{drts_dcts, ModelInput, ProtocolTimes};
///
/// let narrow = ModelInput::new(ProtocolTimes::paper(), 5.0, 15f64.to_radians());
/// let wide = ModelInput::new(ProtocolTimes::paper(), 5.0, 150f64.to_radians());
/// assert!(drts_dcts::throughput(&narrow, 0.02) > drts_dcts::throughput(&wide, 0.02));
/// ```
pub fn throughput(input: &ModelInput, p: f64) -> f64 {
    let chain = ChainInput {
        p_ww: p_ww(input, p),
        p_ws: p_ws(input, p),
        t_succeed: input.times.t_succeed(),
        t_fail: t_fail(input, p),
        l_data: f64::from(input.times.l_data),
    };
    throughput_from_chain(&chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProtocolTimes;

    fn input(theta_deg: f64) -> ModelInput {
        ModelInput::new(ProtocolTimes::paper(), 5.0, theta_deg.to_radians())
    }

    #[test]
    fn interference_free_probability_valid() {
        for theta in [15.0, 90.0, 180.0] {
            let inp = input(theta);
            for &r in &[0.1, 0.5, 0.9, 1.0] {
                let pi = p_interference_free(&inp, 0.02, r);
                assert!((0.0..=1.0).contains(&pi), "θ={theta} r={r}: {pi}");
            }
        }
    }

    #[test]
    fn narrower_beams_suffer_less_interference() {
        let narrow = p_interference_free(&input(15.0), 0.02, 0.5);
        let wide = p_interference_free(&input(150.0), 0.02, 0.5);
        assert!(narrow > wide, "narrow {narrow} <= wide {wide}");
    }

    #[test]
    fn p_ws_decreases_with_beamwidth() {
        // Wider beams expose the handshake to more directional
        // interference in every region.
        let p = 0.02;
        let mut prev = f64::INFINITY;
        for theta in [15.0, 30.0, 60.0, 120.0, 180.0] {
            let cur = p_ws(&input(theta), p);
            assert!(cur <= prev + 1e-12, "P_ws rose at θ={theta}°");
            prev = cur;
        }
    }

    #[test]
    fn optimized_throughput_beats_omni_at_narrow_beams() {
        // The paper's headline: at 15° the all-directional scheme clearly
        // outperforms the conservative omni scheme.
        let inp = input(15.0);
        let dir = crate::optimize::max_throughput(dirca_mac::Scheme::DrtsDcts, &inp);
        let omni = crate::optimize::max_throughput(dirca_mac::Scheme::OrtsOcts, &inp);
        assert!(
            dir.throughput > 1.4 * omni.throughput,
            "dir {} vs omni {}",
            dir.throughput,
            omni.throughput
        );
    }

    #[test]
    fn p_ww_larger_than_omni() {
        // Directional neighbours disturb the wait state less.
        let inp = input(30.0);
        assert!(p_ww(&inp, 0.05) > crate::orts_octs::p_ww(&inp, 0.05));
    }

    #[test]
    fn t_fail_bounds() {
        let inp = input(30.0);
        let tf = t_fail(&inp, 0.02);
        assert!((6.0..=119.0).contains(&tf));
        // At small p, failures are detected quickly.
        assert!(t_fail(&inp, 1e-6) < 6.1);
    }

    #[test]
    fn throughput_decreases_with_beamwidth() {
        let p = 0.02;
        let mut prev = f64::INFINITY;
        for theta in [15.0, 45.0, 90.0, 135.0, 180.0] {
            let th = throughput(&input(theta), p);
            assert!(th <= prev + 1e-12, "throughput rose at θ={theta}°");
            prev = th;
        }
    }

    #[test]
    fn throughput_has_interior_maximum_in_p() {
        let inp = input(30.0);
        let low = throughput(&inp, 0.0005);
        let mid = throughput(&inp, 0.05);
        let high = throughput(&inp, 0.6);
        assert!(mid > low && mid > high);
    }
}
