//! Basic access (no RTS/CTS) in the paper's modeling framework — our
//! extension, used to quantify when the four-way handshake pays off.
//!
//! Derivation, mirroring §2.1 exactly but without the handshake: the
//! sender transmits the data frame directly. Its own neighbours sense the
//! transmission after one slot (CSMA), so they interfere only if they
//! start in the same slot (`e^{−pN}`, as for the RTS). Hidden terminals in
//! `B(r)`, however, can destroy the frame at any point of its reception:
//! the vulnerable window is `2·l_data + 1` slots instead of the RTS's
//! `2·l_rts + 1` — this is exactly the classic hidden-terminal exposure
//! that RTS/CTS exists to shrink. Failures cost a full data transmission
//! plus the ACK timeout.

use dirca_geometry::paper::hidden_area_norm;

use crate::integrate::simpson;
use crate::markov::{throughput_from_chain, ChainInput};
use crate::model::{validate_p, ModelInput};
use crate::orts_octs::PANELS;

/// `P_ws(r)` for basic access:
/// `p·(1−p)·e^{−pN}·e^{−p·N·B(r)·(2·l_data+1)}`.
pub fn p_ws_at(input: &ModelInput, p: f64, r: f64) -> f64 {
    validate_p(p);
    let n = input.n_avg;
    let vulnerable = f64::from(2 * input.times.l_data + 1);
    p * (1.0 - p) * (-p * n).exp() * (-p * n * hidden_area_norm(r) * vulnerable).exp()
}

/// `P_ws` averaged over the receiver distance with density `f(r) = 2r`.
pub fn p_ws(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    simpson(0.0, 1.0, PANELS, |r| {
        if r <= 0.0 {
            // The integration variable is non-negative: exact origin guard.
            0.0
        } else {
            2.0 * r * p_ws_at(input, p, r)
        }
    })
}

/// `P_ww` is the omni value `(1−p)·e^{−pN}` — all transmissions are heard
/// by every neighbour.
pub fn p_ww(input: &ModelInput, p: f64) -> f64 {
    crate::orts_octs::p_ww(input, p)
}

/// Duration of a successful exchange: `l_data + l_ack + 2` slots.
pub fn t_succeed(input: &ModelInput) -> f64 {
    f64::from(input.times.l_data + input.times.l_ack + 2)
}

/// Duration of a failed exchange: the whole data frame plus the ACK wait,
/// `l_data + l_ack + 2` slots — failure costs as much as success, which is
/// the whole problem with unprotected long frames.
pub fn t_fail(input: &ModelInput) -> f64 {
    t_succeed(input)
}

/// Saturation throughput of basic access at attempt probability `p`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Example
///
/// ```
/// use dirca_analysis::{basic, orts_octs, optimize, ModelInput, ProtocolTimes};
///
/// // At the paper's 100-slot data length, the handshake wins easily.
/// let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 1.0);
/// let basic_best = optimize::maximize(|p| basic::throughput(&input, p));
/// let rts_best = optimize::maximize(|p| orts_octs::throughput(&input, p));
/// assert!(rts_best.throughput > basic_best.throughput);
/// ```
pub fn throughput(input: &ModelInput, p: f64) -> f64 {
    let chain = ChainInput {
        p_ww: p_ww(input, p),
        p_ws: p_ws(input, p),
        t_succeed: t_succeed(input),
        t_fail: t_fail(input),
        l_data: f64::from(input.times.l_data),
    };
    throughput_from_chain(&chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::maximize;
    use crate::ProtocolTimes;

    fn input(l_data: u32) -> ModelInput {
        let times = ProtocolTimes {
            l_data,
            ..ProtocolTimes::paper()
        };
        ModelInput::new(times, 5.0, 1.0)
    }

    #[test]
    fn vulnerable_window_scales_with_data_length() {
        // Longer frames are exponentially more exposed to hidden terminals.
        let p = 0.02;
        let short = p_ws(&input(20), p) / p;
        let long = p_ws(&input(200), p) / p;
        assert!(short > 2.0 * long, "short {short} vs long {long}");
    }

    #[test]
    fn handshake_wins_for_long_data() {
        let inp = input(100);
        let basic_best = maximize(|p| throughput(&inp, p));
        let rts_best = maximize(|p| crate::orts_octs::throughput(&inp, p));
        assert!(
            rts_best.throughput > 1.5 * basic_best.throughput,
            "rts {} vs basic {}",
            rts_best.throughput,
            basic_best.throughput
        );
    }

    #[test]
    fn basic_wins_for_short_data() {
        // With data as short as the control packets, paying four packets
        // of overhead to protect one is a loss.
        let inp = input(5);
        let basic_best = maximize(|p| throughput(&inp, p));
        let rts_best = maximize(|p| crate::orts_octs::throughput(&inp, p));
        assert!(
            basic_best.throughput > rts_best.throughput,
            "basic {} vs rts {}",
            basic_best.throughput,
            rts_best.throughput
        );
    }

    #[test]
    fn success_and_failure_costs_are_equal() {
        let inp = input(100);
        assert_eq!(t_succeed(&inp), t_fail(&inp));
        assert_eq!(t_succeed(&inp), 107.0);
    }

    #[test]
    fn sparse_network_favors_basic_more() {
        // Fewer hidden terminals narrow the gap.
        let times = ProtocolTimes::paper();
        let gap = |n: f64| {
            let inp = ModelInput::new(times, n, 1.0);
            let rts = maximize(|p| crate::orts_octs::throughput(&inp, p)).throughput;
            let basic = maximize(|p| throughput(&inp, p)).throughput;
            rts / basic
        };
        assert!(
            gap(8.0) > gap(2.0),
            "hidden-terminal pressure should widen the gap"
        );
    }

    #[test]
    fn throughput_is_bounded() {
        let inp = input(100);
        for &p in &[0.001, 0.02, 0.2] {
            let th = throughput(&inp, p);
            assert!((0.0..100.0 / 107.0).contains(&th));
        }
    }
}
