//! §2.3 — the hybrid DRTS-OCTS scheme (directional RTS/DATA/ACK, omni
//! CTS).

use dirca_geometry::paper::drts_octs_areas;

use crate::integrate::simpson;
use crate::markov::{throughput_from_chain, ChainInput};
use crate::model::{validate_p, ModelInput};
use crate::orts_octs::PANELS;
use crate::tgeom::truncated_geometric_mean;

/// `P_I(r)` for DRTS-OCTS: the three regions of Fig. 4.
///
/// 1. Area I (the sender's beam): silent for one slot, `e^{−p·S₁·N}`.
/// 2. Area II (the rest of the disk): silent toward the pair for `2·l_rts`
///    directional slots plus one omni slot.
/// 3. Area III (hidden from the sender): silent toward `x` while `y` sends
///    CTS and ACK — the omni CTS silences these nodes for the data phase,
///    leaving only the CTS/ACK windows vulnerable.
pub fn p_interference_free(input: &ModelInput, p: f64, r: f64) -> f64 {
    validate_p(p);
    let t = &input.times;
    let n = input.n_avg;
    let pd = input.p_directional(p);
    let a = drts_octs_areas(r, input.theta);
    let w2 = f64::from(2 * t.l_rts);
    let w3 = f64::from(2 * t.l_rts + t.l_cts + t.l_ack + 2);
    let p1 = (-p * a.s1 * n).exp();
    let p2 = (-pd * a.s2 * n * w2).exp() * (-p * a.s2 * n).exp();
    let p3 = (-pd * a.s3 * n * w3).exp();
    p1 * p2 * p3
}

/// `P_ws(r) = p·(1−p)·P_I(r)`.
pub fn p_ws_at(input: &ModelInput, p: f64, r: f64) -> f64 {
    p * (1.0 - p) * p_interference_free(input, p, r)
}

/// `P_ws` averaged over the receiver distance with density `f(r) = 2r`.
pub fn p_ws(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    simpson(0.0, 1.0, PANELS, |r| {
        if r <= 0.0 {
            // The integration variable is non-negative: exact origin guard.
            0.0
        } else {
            2.0 * r * p_ws_at(input, p, r)
        }
    })
}

/// `P_ww = (1−p)·e^{−pN}` — as in ORTS-OCTS: nearly every handshake,
/// successful or not, includes an omni-directional CTS that silences the
/// whole neighbourhood, so a waiting node is disturbed at the omni rate.
pub fn p_ww(input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    (1.0 - p) * (-p * input.n_avg).exp()
}

/// Mean failed-handshake duration: truncated geometric on
/// `[l_rts + l_cts + 2, T_succeed]`. The lower bound is higher than in
/// DRTS-DCTS to account for the omni CTS that is transmitted (and can
/// collide with ongoing traffic) even when the handshake eventually fails.
pub fn t_fail(input: &ModelInput, p: f64) -> f64 {
    let t1 = input.times.l_rts + input.times.l_cts + 2;
    let t2 = input.times.l_rts + input.times.l_cts + input.times.l_data + input.times.l_ack + 4;
    truncated_geometric_mean(p, t1, t2)
}

/// Saturation throughput of DRTS-OCTS at attempt probability `p`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
///
/// # Example
///
/// ```
/// use dirca_analysis::{drts_octs, ModelInput, ProtocolTimes};
///
/// let input = ModelInput::new(ProtocolTimes::paper(), 5.0, 30f64.to_radians());
/// let th = drts_octs::throughput(&input, 0.02);
/// assert!(th > 0.0 && th < 1.0);
/// ```
pub fn throughput(input: &ModelInput, p: f64) -> f64 {
    let chain = ChainInput {
        p_ww: p_ww(input, p),
        p_ws: p_ws(input, p),
        t_succeed: input.times.t_succeed(),
        t_fail: t_fail(input, p),
        l_data: f64::from(input.times.l_data),
    };
    throughput_from_chain(&chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProtocolTimes;

    fn input(theta_deg: f64) -> ModelInput {
        ModelInput::new(ProtocolTimes::paper(), 5.0, theta_deg.to_radians())
    }

    #[test]
    fn interference_free_probability_valid() {
        for theta in [15.0, 90.0, 180.0] {
            let inp = input(theta);
            for &r in &[0.1, 0.5, 1.0] {
                let pi = p_interference_free(&inp, 0.02, r);
                assert!((0.0..=1.0).contains(&pi), "θ={theta} r={r}: {pi}");
            }
        }
    }

    #[test]
    fn success_beats_omni_scheme_at_narrow_beams() {
        let inp = input(15.0);
        assert!(p_ws(&inp, 0.02) > crate::orts_octs::p_ws(&inp, 0.02));
    }

    #[test]
    fn loses_to_all_directional_scheme_at_narrow_beams() {
        // The omni CTS wins back protection for the data phase (its raw
        // P_ws can even exceed DRTS-DCTS's), but it silences the whole
        // neighbourhood: P_ww matches the omni scheme and the lost spatial
        // reuse dominates. At each scheme's optimal p, DRTS-DCTS wins for
        // narrow beams.
        let inp = input(15.0);
        let hybrid = crate::optimize::max_throughput(dirca_mac::Scheme::DrtsOcts, &inp);
        let full = crate::optimize::max_throughput(dirca_mac::Scheme::DrtsDcts, &inp);
        assert!(
            full.throughput > hybrid.throughput,
            "full {} <= hybrid {}",
            full.throughput,
            hybrid.throughput
        );
    }

    #[test]
    fn p_ww_matches_omni_scheme() {
        let inp = input(30.0);
        assert_eq!(p_ww(&inp, 0.03), crate::orts_octs::p_ww(&inp, 0.03));
    }

    #[test]
    fn t_fail_lower_bound_exceeds_drts_dcts() {
        let inp = input(30.0);
        assert!(t_fail(&inp, 0.001) > crate::drts_dcts::t_fail(&inp, 0.001));
    }

    #[test]
    fn throughput_has_interior_maximum_in_p() {
        let inp = input(30.0);
        let low = throughput(&inp, 0.0005);
        let mid = throughput(&inp, 0.02);
        let high = throughput(&inp, 0.4);
        assert!(mid > low && mid > high);
    }

    #[test]
    fn marginal_improvement_over_omni_at_optimal_p() {
        // The paper's headline: DRTS-OCTS only slightly outperforms
        // ORTS-OCTS. Compare at a moderate shared p.
        let inp = input(30.0);
        let hybrid = throughput(&inp, 0.02);
        let omni = crate::orts_octs::throughput(&inp, 0.02);
        assert!(hybrid > omni, "hybrid {hybrid} <= omni {omni}");
        assert!(
            hybrid < 2.0 * omni,
            "improvement should be modest: {hybrid} vs {omni}"
        );
    }
}
