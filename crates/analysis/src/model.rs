//! Model inputs.

/// Packet lengths in slots (the paper normalizes all packet durations to
/// the slot length τ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolTimes {
    /// RTS duration in slots.
    pub l_rts: u32,
    /// CTS duration in slots.
    pub l_cts: u32,
    /// Data duration in slots.
    pub l_data: u32,
    /// ACK duration in slots.
    pub l_ack: u32,
}

impl ProtocolTimes {
    /// The configuration of the paper's §3 numerical results:
    /// `l_rts = l_cts = l_ack = 5τ`, `l_data = 100τ`.
    pub fn paper() -> Self {
        ProtocolTimes {
            l_rts: 5,
            l_cts: 5,
            l_data: 100,
            l_ack: 5,
        }
    }

    /// Duration of a successful four-way handshake in slots:
    /// `l_rts + l_cts + l_data + l_ack + 4` (one propagation slot after
    /// each packet).
    pub fn t_succeed(&self) -> f64 {
        f64::from(self.l_rts + self.l_cts + self.l_data + self.l_ack + 4)
    }
}

impl Default for ProtocolTimes {
    fn default() -> Self {
        Self::paper()
    }
}

/// Input to the per-scheme throughput formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelInput {
    /// Packet lengths in slots.
    pub times: ProtocolTimes,
    /// Average number of neighbours `N = λπR²`.
    pub n_avg: f64,
    /// Antenna beamwidth θ in radians (ignored by ORTS-OCTS).
    pub theta: f64,
}

impl ModelInput {
    /// Creates a model input.
    ///
    /// # Panics
    ///
    /// Panics unless `n_avg > 0` and `0 < theta <= 2π`.
    pub fn new(times: ProtocolTimes, n_avg: f64, theta: f64) -> Self {
        assert!(
            n_avg.is_finite() && n_avg > 0.0,
            "n_avg must be positive, got {n_avg}"
        );
        assert!(
            theta.is_finite() && theta > 0.0 && theta <= std::f64::consts::TAU + 1e-12,
            "theta must be in (0, 2π], got {theta}"
        );
        ModelInput {
            times,
            n_avg,
            theta,
        }
    }

    /// The directional attempt probability `p' = p·θ/2π`: the chance that
    /// a transmission by a random neighbour points at a given victim.
    pub fn p_directional(&self, p: f64) -> f64 {
        p * self.theta / std::f64::consts::TAU
    }
}

/// Validates an attempt probability.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub(crate) fn validate_p(p: f64) {
    assert!(
        p.is_finite() && p > 0.0 && p < 1.0,
        "attempt probability p must be in (0, 1), got {p}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_times() {
        let t = ProtocolTimes::paper();
        assert_eq!((t.l_rts, t.l_cts, t.l_data, t.l_ack), (5, 5, 100, 5));
        assert_eq!(t.t_succeed(), 119.0);
        assert_eq!(ProtocolTimes::default(), t);
    }

    #[test]
    fn p_directional_scales_with_beam() {
        let inp = ModelInput::new(ProtocolTimes::paper(), 5.0, std::f64::consts::PI);
        assert!((inp.p_directional(0.1) - 0.05).abs() < 1e-12);
        let omni = ModelInput::new(ProtocolTimes::paper(), 5.0, std::f64::consts::TAU);
        assert!((omni.p_directional(0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n_avg must be positive")]
    fn rejects_zero_density() {
        let _ = ModelInput::new(ProtocolTimes::paper(), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn rejects_bad_theta() {
        let _ = ModelInput::new(ProtocolTimes::paper(), 5.0, 7.0);
    }

    #[test]
    #[should_panic(expected = "attempt probability")]
    fn rejects_bad_p() {
        validate_p(1.0);
    }
}
