//! Ablations of the analytical model's approximations (experiment E7).
//!
//! The paper makes three modeling simplifications that deserve a
//! sensitivity check:
//!
//! 1. **θ′ = θ in Area III** (§2.2): the true angular exposure of a node in
//!    Area III lies between θ and 2θ; the paper picks the optimistic θ.
//! 2. **The `T_fail` lower bound of DRTS-OCTS**: raised from `l_rts + 1`
//!    to `l_rts + l_cts + 2` to penalize omni CTS collisions.
//! 3. **Truncated-geometric `T_fail`** vs. the pessimistic fixed
//!    `T_fail = T_succeed`.

use dirca_geometry::paper::drts_dcts_areas;

use crate::integrate::simpson;
use crate::markov::{throughput_from_chain, ChainInput};
use crate::model::{validate_p, ModelInput};
use crate::optimize::maximize;
use crate::orts_octs::PANELS;
use crate::tgeom::truncated_geometric_mean;

/// Variants of the DRTS-DCTS model being ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrtsDctsVariant {
    /// The paper's model (θ′ = θ, truncated-geometric `T_fail`).
    Paper,
    /// Pessimistic Area III exposure: θ′ = 2θ.
    WideAreaThree,
    /// Pessimistic failure duration: every failure costs a full handshake.
    FullLengthFailures,
}

/// DRTS-DCTS throughput under an ablated model variant.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn drts_dcts_variant(variant: DrtsDctsVariant, input: &ModelInput, p: f64) -> f64 {
    validate_p(p);
    let t = &input.times;
    let n = input.n_avg;
    let pd = input.p_directional(p);
    // θ′ multiplier for Area III.
    let pd3 = match variant {
        DrtsDctsVariant::WideAreaThree => (pd * 2.0).min(p),
        _ => pd,
    };
    let w2 = f64::from(2 * t.l_rts);
    let w3 = f64::from(2 * t.l_rts + t.l_cts + t.l_data + t.l_ack + 4);
    let w4 = f64::from(2 * t.l_rts + t.l_cts + t.l_ack + 2);
    let w5 = f64::from(3 * t.l_rts + t.l_data + 2);
    let p_ws = simpson(0.0, 1.0, PANELS, |r| {
        if r <= 0.0 {
            // The integration variable is non-negative: exact origin guard.
            return 0.0;
        }
        let a = drts_dcts_areas(r, input.theta);
        let p1 = (-p * a.s1 * n).exp();
        let p2 = (-pd * a.s2 * n * w2).exp() * (-p * a.s2 * n).exp();
        let p3 = (-pd3 * a.s3 * n * w3).exp();
        let p4 = (-pd * a.s4 * n * w4).exp();
        let p5 = (-pd * a.s5 * n * w5).exp();
        2.0 * r * p * (1.0 - p) * p1 * p2 * p3 * p4 * p5
    });
    let t_succeed = input.times.t_succeed();
    let t_fail = match variant {
        DrtsDctsVariant::FullLengthFailures => t_succeed,
        _ => truncated_geometric_mean(p, t.l_rts + 1, t.l_rts + t.l_cts + t.l_data + t.l_ack + 4),
    };
    throughput_from_chain(&ChainInput {
        p_ww: (1.0 - p) * (-pd * n).exp(),
        p_ws,
        t_succeed,
        t_fail,
        l_data: f64::from(t.l_data),
    })
}

/// One row of the ablation table: optimum throughput of each variant at a
/// beamwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationRow {
    /// Beamwidth in degrees.
    pub theta_degrees: f64,
    /// The paper's model.
    pub paper: f64,
    /// θ′ = 2θ variant.
    pub wide_area_three: f64,
    /// Full-length-failures variant.
    pub full_length_failures: f64,
}

/// Computes the ablation table over `theta_degrees` for density `n_avg`.
pub fn ablation_table(
    times: crate::ProtocolTimes,
    n_avg: f64,
    theta_degrees: &[f64],
) -> Vec<AblationRow> {
    theta_degrees
        .iter()
        .map(|&deg| {
            let input = ModelInput::new(times, n_avg, deg.to_radians());
            let best = |variant| maximize(|p| drts_dcts_variant(variant, &input, p)).throughput;
            AblationRow {
                theta_degrees: deg,
                paper: best(DrtsDctsVariant::Paper),
                wide_area_three: best(DrtsDctsVariant::WideAreaThree),
                full_length_failures: best(DrtsDctsVariant::FullLengthFailures),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolTimes;

    fn input(theta_deg: f64) -> ModelInput {
        ModelInput::new(ProtocolTimes::paper(), 5.0, theta_deg.to_radians())
    }

    #[test]
    fn paper_variant_matches_main_model() {
        let inp = input(45.0);
        for &p in &[0.005, 0.02, 0.1] {
            let ablated = drts_dcts_variant(DrtsDctsVariant::Paper, &inp, p);
            let main = crate::drts_dcts::throughput(&inp, p);
            assert!(
                (ablated - main).abs() < 1e-12,
                "paper variant diverged at p={p}"
            );
        }
    }

    #[test]
    fn pessimistic_variants_lower_throughput() {
        let inp = input(45.0);
        let p = 0.02;
        let paper = drts_dcts_variant(DrtsDctsVariant::Paper, &inp, p);
        let wide = drts_dcts_variant(DrtsDctsVariant::WideAreaThree, &inp, p);
        let full = drts_dcts_variant(DrtsDctsVariant::FullLengthFailures, &inp, p);
        assert!(wide <= paper + 1e-12, "wide {wide} > paper {paper}");
        assert!(full < paper, "full {full} >= paper {paper}");
    }

    #[test]
    fn narrow_beam_conclusion_robust_to_ablation() {
        // At the narrowest beam (15°) the paper's conclusion — the
        // all-directional scheme beats the omni scheme — survives both
        // pessimistic model variants (only barely for full-length
        // failures, which is itself informative: cheap failures are a real
        // part of the DRTS-DCTS advantage).
        let inp = input(15.0);
        let omni_best = crate::optimize::max_throughput(dirca_mac::Scheme::OrtsOcts, &inp);
        for variant in [
            DrtsDctsVariant::WideAreaThree,
            DrtsDctsVariant::FullLengthFailures,
        ] {
            let best = maximize(|p| drts_dcts_variant(variant, &inp, p));
            assert!(
                best.throughput > omni_best.throughput,
                "{variant:?} optimum {} fell below omni {}",
                best.throughput,
                omni_best.throughput
            );
        }
    }

    #[test]
    fn moderate_beam_conclusion_fragile_under_wide_area_three() {
        // Documented sensitivity: at 30° the θ′ = 2θ variant drops the
        // DRTS-DCTS optimum below the omni scheme — the paper's Area III
        // approximation matters at moderate beamwidths.
        let inp = input(30.0);
        let omni_best = crate::optimize::max_throughput(dirca_mac::Scheme::OrtsOcts, &inp);
        let wide = maximize(|p| drts_dcts_variant(DrtsDctsVariant::WideAreaThree, &inp, p));
        assert!(wide.throughput < omni_best.throughput);
    }

    #[test]
    fn table_has_requested_rows() {
        let rows = ablation_table(ProtocolTimes::paper(), 5.0, &[30.0, 90.0]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].theta_degrees, 30.0);
        for row in &rows {
            assert!(row.paper >= row.wide_area_three - 1e-12);
            assert!(row.paper > row.full_length_failures);
        }
    }
}
