//! Numerical integration.

/// Composite Simpson's rule for `∫_a^b f(x) dx` with `panels` panels.
///
/// `panels` is rounded up to the next even number; accuracy is O(h⁴) for
/// smooth integrands, far more than the model needs at the default 512
/// panels used by the scheme modules.
///
/// # Panics
///
/// Panics if `a > b`, the bounds are not finite, or `panels == 0`.
///
/// # Example
///
/// ```
/// use dirca_analysis::simpson;
///
/// let integral = simpson(0.0, 1.0, 128, |x| 3.0 * x * x);
/// assert!((integral - 1.0).abs() < 1e-10);
/// ```
pub fn simpson(a: f64, b: f64, panels: usize, f: impl Fn(f64) -> f64) -> f64 {
    assert!(
        a.is_finite() && b.is_finite() && a <= b,
        "bad bounds [{a}, {b}]"
    );
    assert!(panels > 0, "at least one panel required");
    // The assert above guarantees `a <= b`, so `a >= b` means the interval
    // is empty.
    if a >= b {
        return 0.0;
    }
    let n = if panels.is_multiple_of(2) {
        panels
    } else {
        panels + 1
    };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 0 { 2.0 } else { 4.0 };
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_cubics() {
        // Simpson is exact for polynomials up to degree 3.
        let integral = simpson(0.0, 2.0, 2, |x| x * x * x - x + 1.0);
        let exact = 2.0f64.powi(4) / 4.0 - 2.0 + 2.0;
        assert!((integral - exact).abs() < 1e-12);
    }

    #[test]
    fn converges_for_trig() {
        let integral = simpson(0.0, std::f64::consts::PI, 64, f64::sin);
        assert!((integral - 2.0).abs() < 1e-6);
        let finer = simpson(0.0, std::f64::consts::PI, 512, f64::sin);
        assert!((finer - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(simpson(1.0, 1.0, 10, |x| x), 0.0);
    }

    #[test]
    fn odd_panel_count_rounds_up() {
        let odd = simpson(0.0, 1.0, 63, |x| x * x);
        assert!((odd - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let f = |x: f64| x.exp();
        let whole = simpson(0.0, 2.0, 256, f);
        let halves = simpson(0.0, 1.0, 128, f) + simpson(1.0, 2.0, 128, f);
        assert!((whole - halves).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn rejects_inverted_bounds() {
        let _ = simpson(1.0, 0.0, 4, |x| x);
    }
}
