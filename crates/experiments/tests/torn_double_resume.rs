//! Review probe: torn tail -> resume -> resume again.

use dirca_experiments::report::GridScale;
use dirca_experiments::runner::{run_grid, RunnerConfig};
use dirca_sim::SimDuration;

fn tiny_scale() -> GridScale {
    GridScale {
        topologies: 1,
        measure: SimDuration::from_millis(40),
        warmup: SimDuration::from_millis(5),
        threads: 1,
        seed: 11,
        densities: vec![3],
        beamwidths: vec![90.0],
        fer: 0.0,
    }
}

#[test]
fn second_resume_after_torn_tail() {
    let scale = tiny_scale();
    let path = std::env::temp_dir().join(format!("torn_double_{}.ckpt", std::process::id()));
    let cfg = |resume: bool| RunnerConfig {
        threads: 1,
        checkpoint: Some(path.clone()),
        resume,
        ..RunnerConfig::default()
    };
    run_grid(&scale, &cfg(false)).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
    let cut = last_line_start + (text.len() - last_line_start) / 2;
    std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();

    // First resume: tolerates the torn tail, re-runs the cell, appends.
    let first = run_grid(&scale, &cfg(true)).unwrap();
    assert_eq!(first.warnings.len(), 1, "{:?}", first.warnings);

    // Second resume: should restore everything cleanly.
    let second = run_grid(&scale, &cfg(true));
    let _ = std::fs::remove_file(&path);
    match second {
        Ok(run) => {
            eprintln!(
                "second resume: restored={} executed={} warnings={:?}",
                run.restored, run.executed, run.warnings
            );
            assert!(run.warnings.is_empty(), "second resume still degraded: {:?}", run.warnings);
            assert_eq!(run.restored, 3, "all cells should restore");
        }
        Err(e) => panic!("second resume hard-errored: {e}"),
    }
}
