//! End-to-end behavior of the fault-tolerant grid runner: drill failures
//! are isolated and reported with coordinates, interrupted runs resume to
//! a byte-identical report, and checkpoints are validated strictly.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use std::path::PathBuf;

use dirca_experiments::report::{render_combined, GridScale};
use dirca_experiments::ringsim::{CellFailure, RingOutcome};
use dirca_experiments::runner::{
    enumerate_cells, run_grid, Cell, CheckpointError, GridRun, RunnerConfig,
};
use dirca_experiments::wireio::WireFormat;
use dirca_mac::Scheme;
use dirca_sim::SimDuration;

fn tiny_scale() -> GridScale {
    GridScale {
        topologies: 2,
        measure: SimDuration::from_millis(200),
        warmup: SimDuration::from_millis(50),
        threads: 2,
        seed: 11,
        densities: vec![3],
        beamwidths: vec![90.0],
        fer: 0.0,
    }
}

fn runner() -> RunnerConfig {
    RunnerConfig {
        threads: 2,
        retries: 0,
        ..RunnerConfig::default()
    }
}

fn ckpt_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dirca_ckpt_{}_{label}.jsonl", std::process::id()))
}

fn report_of(scale: &GridScale, run: &GridRun) -> String {
    let completed: Vec<_> = run
        .outcomes
        .iter()
        .filter_map(|o| {
            o.result.as_ref().ok().map(|s| {
                (
                    o.cell.n,
                    o.cell.theta,
                    o.cell.scheme,
                    RingOutcome::from_samples(s),
                )
            })
        })
        .collect();
    render_combined(scale, &completed)
}

#[test]
fn drilled_grid_completes_remaining_cells_and_reports_both_failures() {
    let scale = tiny_scale();
    let path = ckpt_path("drill");
    let config = RunnerConfig {
        checkpoint: Some(path.clone()),
        inject_panic: Some(Cell {
            n: 3,
            theta: 90.0,
            scheme: Scheme::OrtsOcts,
        }),
        inject_timeout: Some(Cell {
            n: 3,
            theta: 90.0,
            scheme: Scheme::DrtsDcts,
        }),
        ..runner()
    };
    let run = run_grid(&scale, &config).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(run.outcomes.len(), 3, "all three cells must be attempted");
    assert!(!run.stopped_early);
    let failures = run.failures();
    assert_eq!(failures.len(), 2);
    match &failures[0].result {
        Err(CellFailure::Panicked { topology, message }) => {
            assert_eq!(*topology, 0);
            assert!(message.contains("drill"), "{message}");
        }
        other => panic!("expected the panic drill first, got {other:?}"),
    }
    assert!(matches!(
        failures[1].result,
        Err(CellFailure::TimedOut { .. })
    ));
    // The healthy cell still produced its samples.
    let ok: Vec<_> = run.outcomes.iter().filter(|o| o.result.is_ok()).collect();
    assert_eq!(ok.len(), 1);
    assert_eq!(ok[0].cell.scheme, Scheme::DrtsOcts);
    assert_eq!(ok[0].result.as_ref().unwrap().len(), 2);
    // Failure rendering carries the cell coordinates.
    let rendered = run.render_failures();
    assert!(rendered.contains("N=3 θ=90° ORTS-OCTS"), "{rendered}");
    assert!(rendered.contains("N=3 θ=90° DRTS-DCTS"), "{rendered}");
    assert!(rendered.contains("panicked in topology 0"), "{rendered}");
    assert!(rendered.contains("timed out in topology 0"), "{rendered}");
}

#[test]
fn interrupted_grid_resumes_to_an_identical_report() {
    let scale = tiny_scale();
    // Reference: one uninterrupted run, no checkpoint.
    let full = run_grid(&scale, &runner()).unwrap();
    assert_eq!(full.executed, 3);
    let want = report_of(&scale, &full);

    // Interrupted: stop after one cell, then resume twice.
    let path = ckpt_path("resume");
    let interrupted = RunnerConfig {
        checkpoint: Some(path.clone()),
        max_cells: Some(1),
        ..runner()
    };
    let first = run_grid(&scale, &interrupted).unwrap();
    assert!(first.stopped_early);
    assert_eq!(first.executed, 1);
    let resumed_config = RunnerConfig {
        checkpoint: Some(path.clone()),
        resume: true,
        ..runner()
    };
    let second = run_grid(&scale, &resumed_config).unwrap();
    assert!(!second.stopped_early);
    assert_eq!(second.restored, 1, "the finished cell must not re-run");
    assert_eq!(second.executed, 2);
    let got = report_of(&scale, &second);
    assert_eq!(want, got, "resumed report must equal the uninterrupted one");

    // A third resume restores everything and executes nothing.
    let third = run_grid(&scale, &resumed_config).unwrap();
    assert_eq!(third.restored, 3);
    assert_eq!(third.executed, 0);
    assert_eq!(report_of(&scale, &third), want);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_cells_are_retried_on_resume() {
    let scale = tiny_scale();
    let path = ckpt_path("retry");
    // First pass: the ORTS-OCTS cell fails by drill, others succeed.
    let drilled = RunnerConfig {
        checkpoint: Some(path.clone()),
        inject_panic: Some(Cell {
            n: 3,
            theta: 90.0,
            scheme: Scheme::OrtsOcts,
        }),
        ..runner()
    };
    let first = run_grid(&scale, &drilled).unwrap();
    assert_eq!(first.failures().len(), 1);
    // Resume without the drill: only the failed cell re-runs, and the
    // final report matches a clean run.
    let healed = RunnerConfig {
        checkpoint: Some(path.clone()),
        resume: true,
        ..runner()
    };
    let second = run_grid(&scale, &healed).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(second.restored, 2);
    assert_eq!(second.executed, 1);
    assert!(second.failures().is_empty());
    let clean = run_grid(&scale, &runner()).unwrap();
    assert_eq!(report_of(&scale, &second), report_of(&scale, &clean));
}

#[test]
fn grid_samples_are_thread_count_independent() {
    let scale = tiny_scale();
    let one = run_grid(
        &scale,
        &RunnerConfig {
            threads: 1,
            ..runner()
        },
    )
    .unwrap();
    let four = run_grid(
        &scale,
        &RunnerConfig {
            threads: 4,
            ..runner()
        },
    )
    .unwrap();
    for (a, b) in one.outcomes.iter().zip(&four.outcomes) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(
            a.result.as_ref().unwrap(),
            b.result.as_ref().unwrap(),
            "cell {} must be bit-identical at any thread count",
            a.cell
        );
    }
}

#[test]
fn resume_rejects_a_checkpoint_from_a_different_grid() {
    let scale = tiny_scale();
    let path = ckpt_path("foreign");
    let with_ckpt = RunnerConfig {
        checkpoint: Some(path.clone()),
        max_cells: Some(1),
        ..runner()
    };
    run_grid(&scale, &with_ckpt).unwrap();
    let other_scale = GridScale {
        seed: 12,
        ..tiny_scale()
    };
    let resume = RunnerConfig {
        checkpoint: Some(path.clone()),
        resume: true,
        ..runner()
    };
    let err = run_grid(&other_scale, &resume).unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, CheckpointError::FingerprintMismatch { .. }),
        "got {err:?}"
    );
}

#[test]
fn resume_rejects_garbage_checkpoints_with_typed_errors() {
    let scale = tiny_scale();
    let resume = |path: &PathBuf| {
        run_grid(
            &scale,
            &RunnerConfig {
                checkpoint: Some(path.clone()),
                resume: true,
                ..runner()
            },
        )
    };
    let path = ckpt_path("garbage");
    std::fs::write(&path, "this is not a checkpoint\n").unwrap();
    assert!(matches!(
        resume(&path).unwrap_err(),
        CheckpointError::MissingHeader
    ));
    // Valid header, torn record line *mid-file* (a later intact record
    // follows): that is corruption, not a crash tail — still a hard error.
    let fp = dirca_experiments::runner::grid_fingerprint(&scale);
    std::fs::write(
        &path,
        format!(
            "{{\"dirca_checkpoint\":1,\"fingerprint\":\"{fp}\"}}\n\
             {{\"n\":3,\"thet\n\
             {{\"n\":3,\"theta\":90,\"scheme\":\"ORTS-OCTS\",\"status\":\"ok\",\"samples\":[]}}\n"
        ),
    )
    .unwrap();
    assert!(matches!(
        resume(&path).unwrap_err(),
        CheckpointError::Syntax { line: 2, .. }
    ));
    // Valid JSON, cell outside this grid.
    std::fs::write(
        &path,
        format!(
            "{{\"dirca_checkpoint\":1,\"fingerprint\":\"{fp}\"}}\n\
             {{\"n\":99,\"theta\":90,\"scheme\":\"ORTS-OCTS\",\"status\":\"ok\",\"samples\":[]}}\n"
        ),
    )
    .unwrap();
    assert!(matches!(
        resume(&path).unwrap_err(),
        CheckpointError::UnknownCell { line: 2, .. }
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_trailing_checkpoint_line_is_skipped_with_a_warning() {
    let scale = tiny_scale();
    let want = report_of(&scale, &run_grid(&scale, &runner()).unwrap());

    // Run the full grid with a checkpoint, then simulate a crash
    // mid-write by truncating the file into the middle of its last line.
    let path = ckpt_path("torn_tail");
    let with_ckpt = RunnerConfig {
        checkpoint: Some(path.clone()),
        ..runner()
    };
    run_grid(&scale, &with_ckpt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
    let cut = last_line_start + (text.len() - last_line_start) / 2;
    std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();

    // Resume: the torn cell re-runs instead of the resume failing, a
    // warning names the skipped line, and the report is byte-identical.
    let resumed = run_grid(
        &scale,
        &RunnerConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            ..runner()
        },
    )
    .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed.restored, 2, "the two intact cells restore");
    assert_eq!(resumed.executed, 1, "the torn cell re-runs");
    assert_eq!(resumed.warnings.len(), 1, "{:?}", resumed.warnings);
    assert!(
        resumed.warnings[0].contains("torn or corrupt"),
        "{:?}",
        resumed.warnings
    );
    assert_eq!(report_of(&scale, &resumed), want);
}

#[test]
fn binary_checkpoint_resumes_to_an_identical_report() {
    let scale = tiny_scale();
    let want = report_of(&scale, &run_grid(&scale, &runner()).unwrap());

    let path = ckpt_path("bin_resume");
    let first = run_grid(
        &scale,
        &RunnerConfig {
            checkpoint: Some(path.clone()),
            checkpoint_format: WireFormat::Bin,
            max_cells: Some(1),
            ..runner()
        },
    )
    .unwrap();
    assert!(first.stopped_early);
    let bytes = std::fs::read(&path).unwrap();
    assert!(
        dirca_experiments::wireio::sniff_binary(&bytes),
        "binary checkpoints must start with the wire magic"
    );

    // Resume WITHOUT the format flag: the reader sniffs the existing
    // file and keeps appending binary frames.
    let second = run_grid(
        &scale,
        &RunnerConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            ..runner()
        },
    )
    .unwrap();
    assert_eq!(second.restored, 1);
    assert_eq!(second.executed, 2);
    assert!(second.warnings.is_empty(), "{:?}", second.warnings);
    assert_eq!(report_of(&scale, &second), want);

    // A torn binary tail (crash mid-frame-write) degrades to a warning
    // plus a re-run of the lost cell, exactly like the JSONL path.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let third = run_grid(
        &scale,
        &RunnerConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            ..runner()
        },
    )
    .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(third.restored, 2);
    assert_eq!(third.executed, 1);
    assert_eq!(third.warnings.len(), 1, "{:?}", third.warnings);
    assert_eq!(report_of(&scale, &third), want);
}

#[test]
fn enumerated_cells_cover_the_paper_grid() {
    let scale = GridScale {
        densities: vec![3, 5, 8],
        beamwidths: vec![30.0, 90.0, 150.0],
        ..tiny_scale()
    };
    assert_eq!(enumerate_cells(&scale).len(), 27);
}
