//! Binary (CRC-framed) encodings of the runner's checkpoint records,
//! plus the `--trace-format` / `--checkpoint-format` flag vocabulary.
//!
//! The JSONL checkpoint and trace formats stay the human-auditable
//! default; the binary twin defined here (built on
//! [`dirca_trace::wire`]) is roughly 4–5× denser and, thanks to
//! per-frame CRCs, distinguishes "torn tail from a crash mid-write"
//! from "actually corrupt data" — the property the crash-tolerant
//! resume path and `dirca-serve` are built on. Readers pick the format
//! by sniffing the leading bytes ([`sniff_binary`]): no JSONL document
//! starts with the wire magic.

use std::fmt;

use dirca_sim::{AbortReason, SimTime};
use dirca_trace::wire::{
    self, decode_scheme, encode_scheme, kind, PayloadError, WireReader, WireWriter,
};

use crate::cli::{Flags, UsageError};
use crate::ringsim::{CellFailure, TopologySample};
use crate::runner::Cell;

/// On-disk encoding for checkpoints and trace documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// One JSON object per line (the original, human-auditable format).
    #[default]
    Jsonl,
    /// CRC-framed binary frames (`dirca_trace::wire`).
    Bin,
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireFormat::Jsonl => "jsonl",
            WireFormat::Bin => "bin",
        })
    }
}

impl WireFormat {
    /// Parses a `--<flag> {jsonl,bin}` value; absent means JSONL.
    pub fn try_from_flags(flags: &Flags, flag: &str) -> Result<Self, UsageError> {
        match flags.get(flag) {
            None => Ok(WireFormat::Jsonl),
            Some("jsonl") => Ok(WireFormat::Jsonl),
            Some("bin") => Ok(WireFormat::Bin),
            Some(other) => Err(UsageError {
                flag: flag.to_string(),
                expected: "jsonl or bin",
                got: other.to_string(),
            }),
        }
    }
}

/// Whether `bytes` start a binary wire document (vs JSONL text).
pub fn sniff_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&wire::MAGIC)
}

// ---------------------------------------------------------------------
// Checkpoint frames.
// ---------------------------------------------------------------------

/// Cell statuses in a `CKPT_CELL` payload.
const STATUS_OK: u8 = 0;
const STATUS_PANICKED: u8 = 1;
const STATUS_TIMED_OUT: u8 = 2;

const REASON_MAX_EVENTS: u8 = 0;
const REASON_MAX_SIM_TIME: u8 = 1;

/// The binary checkpoint header: one `CKPT_HEADER` frame carrying the
/// grid fingerprint, as raw frame bytes ready to write.
pub fn ckpt_header_frame(fingerprint: &str) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_str(fingerprint);
    wire::encode_frame(kind::CKPT_HEADER, &w.into_bytes())
}

/// Decodes a `CKPT_HEADER` payload back into the grid fingerprint.
pub fn decode_ckpt_header(payload: &[u8]) -> Result<String, PayloadError> {
    let mut r = WireReader::new(payload);
    let fingerprint = r.take_str()?.to_string();
    r.finish()?;
    Ok(fingerprint)
}

fn put_opt_f64(w: &mut WireWriter, v: Option<f64>) {
    match v {
        Some(v) => {
            w.put_bool(true);
            w.put_f64(v);
        }
        None => w.put_bool(false),
    }
}

fn take_opt_f64(r: &mut WireReader<'_>) -> Result<Option<f64>, PayloadError> {
    if r.take_bool()? {
        Ok(Some(r.take_f64()?))
    } else {
        Ok(None)
    }
}

/// One cell outcome as a `CKPT_CELL` frame (raw bytes ready to append);
/// the binary twin of the runner's JSONL `record_line`. Failures are
/// recorded with their diagnosis but — exactly like the JSONL path —
/// never restored on resume.
pub fn ckpt_cell_frame(cell: &Cell, result: &Result<Vec<TopologySample>, CellFailure>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(cell.n as u64);
    w.put_f64(cell.theta);
    w.put_u8(encode_scheme(cell.scheme));
    match result {
        Ok(samples) => {
            w.put_u8(STATUS_OK);
            w.put_u32(samples.len() as u32);
            for s in samples {
                w.put_f64(s.throughput);
                put_opt_f64(&mut w, s.delay_ms);
                put_opt_f64(&mut w, s.collision_ratio);
                put_opt_f64(&mut w, s.jain);
            }
        }
        Err(CellFailure::Panicked { topology, message }) => {
            w.put_u8(STATUS_PANICKED);
            w.put_u64(*topology as u64);
            w.put_str(message);
        }
        Err(CellFailure::TimedOut { topology, aborted }) => {
            w.put_u8(STATUS_TIMED_OUT);
            w.put_u64(*topology as u64);
            w.put_u8(match aborted.reason {
                AbortReason::MaxEvents => REASON_MAX_EVENTS,
                AbortReason::MaxSimTime => REASON_MAX_SIM_TIME,
            });
            w.put_u64(aborted.events);
            w.put_u64(aborted.now.as_nanos());
        }
    }
    wire::encode_frame(kind::CKPT_CELL, &w.into_bytes())
}

/// Decodes a `CKPT_CELL` payload into its cell and, for `ok` records,
/// the restorable samples (`None` for recorded failures, which resume
/// re-runs). The exact inverse of [`ckpt_cell_frame`]; floats round-trip
/// bit-exactly through their IEEE-754 patterns.
pub fn decode_ckpt_cell(
    payload: &[u8],
) -> Result<(Cell, Option<Vec<TopologySample>>), PayloadError> {
    let mut r = WireReader::new(payload);
    let n = r.take_u64()? as usize;
    let theta = r.take_f64()?;
    let scheme = decode_scheme(r.take_u8()?, 16)?;
    let cell = Cell { n, theta, scheme };
    let status = r.take_u8()?;
    let samples = match status {
        STATUS_OK => {
            let count = r.take_u32()? as usize;
            let mut samples = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                samples.push(TopologySample {
                    throughput: r.take_f64()?,
                    delay_ms: take_opt_f64(&mut r)?,
                    collision_ratio: take_opt_f64(&mut r)?,
                    jain: take_opt_f64(&mut r)?,
                });
            }
            Some(samples)
        }
        STATUS_PANICKED => {
            let _topology = r.take_u64()?;
            let _message = r.take_str()?;
            None
        }
        STATUS_TIMED_OUT => {
            let _topology = r.take_u64()?;
            let reason = r.take_u8()?;
            if reason != REASON_MAX_EVENTS && reason != REASON_MAX_SIM_TIME {
                return Err(PayloadError {
                    offset: 0,
                    what: "unknown abort reason byte",
                });
            }
            let _events = r.take_u64()?;
            let _at = SimTime::from_nanos(r.take_u64()?);
            None
        }
        _ => {
            return Err(PayloadError {
                offset: 17,
                what: "unknown checkpoint cell status",
            })
        }
    };
    r.finish()?;
    Ok((cell, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_mac::Scheme;
    use dirca_net::RunAborted;

    fn cell() -> Cell {
        Cell {
            n: 5,
            theta: 150.0,
            scheme: Scheme::DrtsDcts,
        }
    }

    #[test]
    fn ok_cells_round_trip_bit_exactly() {
        let samples = vec![
            TopologySample {
                throughput: 0.123456789,
                delay_ms: Some(1.5),
                collision_ratio: None,
                jain: Some(0.875),
            },
            TopologySample {
                throughput: f64::MIN_POSITIVE,
                delay_ms: None,
                collision_ratio: Some(0.1),
                jain: None,
            },
        ];
        let frame = ckpt_cell_frame(&cell(), &Ok(samples.clone()));
        let (frames, err) = wire::decode_all(&frame);
        assert_eq!(err, None);
        assert_eq!(frames[0].kind, kind::CKPT_CELL);
        let (back_cell, back) = decode_ckpt_cell(&frames[0].payload).unwrap();
        assert_eq!(back_cell, cell());
        assert_eq!(back.unwrap(), samples);
    }

    #[test]
    fn failure_cells_decode_but_do_not_restore() {
        let panicked = ckpt_cell_frame(
            &cell(),
            &Err(CellFailure::Panicked {
                topology: 3,
                message: "weird \"quoted\"\npayload".into(),
            }),
        );
        let (frames, _) = wire::decode_all(&panicked);
        let (_, restored) = decode_ckpt_cell(&frames[0].payload).unwrap();
        assert!(restored.is_none());

        let timed = ckpt_cell_frame(
            &cell(),
            &Err(CellFailure::TimedOut {
                topology: 0,
                aborted: RunAborted {
                    reason: AbortReason::MaxEvents,
                    events: 7,
                    now: SimTime::from_micros(9),
                },
            }),
        );
        let (frames, _) = wire::decode_all(&timed);
        let (_, restored) = decode_ckpt_cell(&frames[0].payload).unwrap();
        assert!(restored.is_none());
    }

    #[test]
    fn header_round_trips() {
        let frame = ckpt_header_frame("0123456789abcdef");
        let (frames, err) = wire::decode_all(&frame);
        assert_eq!(err, None);
        assert_eq!(frames[0].kind, kind::CKPT_HEADER);
        assert_eq!(
            decode_ckpt_header(&frames[0].payload).unwrap(),
            "0123456789abcdef"
        );
    }

    #[test]
    fn garbage_payloads_are_typed_errors() {
        assert!(decode_ckpt_cell(&[]).is_err());
        assert!(decode_ckpt_cell(&[0xFF; 18]).is_err());
        assert!(decode_ckpt_header(&[1, 2, 3]).is_err());
    }

    #[test]
    fn format_flag_parses_and_rejects() {
        let flags = Flags::parse(["--checkpoint-format", "bin"].iter().map(|s| s.to_string()));
        assert_eq!(
            WireFormat::try_from_flags(&flags, "checkpoint-format").unwrap(),
            WireFormat::Bin
        );
        let flags = Flags::parse(std::iter::empty());
        assert_eq!(
            WireFormat::try_from_flags(&flags, "checkpoint-format").unwrap(),
            WireFormat::Jsonl
        );
        let flags = Flags::parse(["--trace-format", "xml"].iter().map(|s| s.to_string()));
        let err = WireFormat::try_from_flags(&flags, "trace-format").unwrap_err();
        assert_eq!(err.flag, "trace-format");
    }

    #[test]
    fn sniffing_separates_the_formats() {
        assert!(sniff_binary(&ckpt_header_frame("x")));
        assert!(!sniff_binary(b"{\"dirca_checkpoint\":1}"));
        assert!(!sniff_binary(b""));
    }
}
