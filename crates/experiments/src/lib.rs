//! The experiment harness: one module (and one binary) per table or figure
//! of the paper.
//!
//! | Experiment | Paper artefact | Module | Binary |
//! |------------|----------------|--------|--------|
//! | E1 | Fig. 5 — analytical throughput vs beamwidth | [`fig5`] | `fig5` |
//! | E2 | Table 1 — 802.11 DSSS parameters | [`table1`] | `table1` |
//! | E3 | Fig. 6 — simulated throughput | [`ringsim`] | `fig6` |
//! | E4 | Fig. 7 — simulated delay | [`ringsim`] | `fig7` |
//! | E5 | §4 collision-ratio statistic | [`ringsim`] | `collision_ratio` |
//! | E6 | §4 fairness discussion | [`ringsim`] | `fairness` |
//! | E7 | model ablations (ours) | `dirca_analysis::ablation` | `ablation` |
//! | E8 | directional reception extension (ours) | [`directional_rx`] | `directional_rx` |
//! | E9 | offered-load sweep extension (ours) | [`offered_load`] | `offered_load` |
//! | E10 | data-length sweep extension (ours) | `dirca_analysis::sweep::data_length_sweep` | `data_size` |
//! | E11 | MAC-mechanism ablations (ours) | [`mac_ablation`] | `mac_ablation` |
//! | E12 | RTS-threshold study (ours) | [`rts_threshold`] | `rts_threshold` |
//! | E13 | airtime accounting (ours) | — | `airtime` |
//! | E14 | model-vs-simulation validation on Poisson fields (ours) | [`model_vs_sim`] | `model_vs_sim` |
//! | E15 | throughput vs injected frame error rate (ours) | [`fault_sweep`] | `fault_sweep` |
//! | — | SVG figure rendering | [`plot`] | `figures` |
//! | — | structured trace export (`trace` feature) | `tracegrid` | `trace_view` |
//!
//! Every binary accepts `--quick` (a fast smoke-test scale) plus
//! experiment-specific flags; see each binary's `--help`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Unwraps and exact float comparisons are idiomatic in test assertions.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

pub mod cli;
pub mod directional_rx;
pub mod fault_sweep;
pub mod fig5;
pub mod mac_ablation;
pub mod model_vs_sim;
pub mod offered_load;
pub mod plot;
mod pool;
pub mod report;
pub mod ringsim;
pub mod rts_threshold;
pub mod runner;
pub mod table;
pub mod table1;
#[cfg(feature = "trace")]
pub mod tracegrid;
pub mod wireio;
