//! E15 — extension: throughput vs injected frame error rate.
//!
//! The paper's channel is perfect: every loss is a collision. This
//! experiment injects an i.i.d. frame error rate through the deterministic
//! fault layer and sweeps it for the three schemes at a narrow beam
//! (θ = 60°) and the omnidirectional limit (θ = 360°), exposing how much
//! of each scheme's advantage survives a lossy channel: every corrupted
//! control frame burns a retry, so the directional schemes' spatial-reuse
//! headroom shrinks as the channel degrades.

use dirca_mac::Scheme;
use dirca_net::FaultPlan;
use dirca_sim::SimDuration;

use crate::ringsim::{try_run_cell, CellGuards, RingExperiment, RingOutcome};
use crate::table::{mean_range, Table};

/// Configuration of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Neighbourhood size `N` of the ring topologies.
    pub n_avg: usize,
    /// Beamwidths to evaluate, degrees (360 = omnidirectional limit).
    pub beamwidths: Vec<f64>,
    /// Frame error rates to sweep.
    pub fers: Vec<f64>,
    /// Random topologies per cell.
    pub topologies: usize,
    /// Master seed.
    pub seed: u64,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window per topology.
    pub measure: SimDuration,
}

impl Default for FaultSweep {
    fn default() -> Self {
        FaultSweep {
            n_avg: 5,
            beamwidths: vec![60.0, 360.0],
            fers: vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.4],
            topologies: 5,
            seed: 0xFA17,
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_secs(2),
        }
    }
}

/// A scaled-down sweep for smoke tests.
pub fn quick() -> FaultSweep {
    FaultSweep {
        fers: vec![0.0, 0.1, 0.4],
        topologies: 2,
        measure: SimDuration::from_millis(500),
        warmup: SimDuration::from_millis(50),
        ..FaultSweep::default()
    }
}

fn cell(sweep: &FaultSweep, scheme: Scheme, theta: f64, fer: f64) -> RingExperiment {
    let mut exp = RingExperiment::paper(scheme, sweep.n_avg, theta);
    exp.topologies = sweep.topologies;
    exp.seed = sweep.seed;
    exp.warmup = sweep.warmup;
    exp.measure = sweep.measure;
    exp.fault = FaultPlan::default().with_frame_error_rate(fer);
    exp
}

/// Runs the sweep and renders one table per beamwidth: rows are FERs,
/// columns the three schemes (normalized throughput, mean [min, max] over
/// topologies). Cells that fail under isolation render as `failed`.
pub fn render(sweep: &FaultSweep, threads: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Throughput vs injected frame error rate — N = {}, {} topologies/cell\n\
         (normalized aggregate throughput of the inner nodes, mean [min, max])\n\n",
        sweep.n_avg, sweep.topologies
    ));
    for &theta in &sweep.beamwidths {
        let mut t = Table::new(vec![
            format!("θ={theta:.0}°, FER"),
            "ORTS-OCTS".into(),
            "DRTS-DCTS".into(),
            "DRTS-OCTS".into(),
        ]);
        for &fer in &sweep.fers {
            let mut cells = vec![format!("{fer:.2}")];
            for scheme in Scheme::ALL {
                let exp = cell(sweep, scheme, theta, fer);
                let text = match try_run_cell(&exp, threads, &CellGuards::default()) {
                    Ok(samples) => {
                        let outcome = RingOutcome::from_samples(&samples);
                        let s = &outcome.throughput;
                        match (s.mean(), s.min(), s.max()) {
                            (Some(m), Some(lo), Some(hi)) => mean_range(m, lo, hi, 3),
                            _ => "n/a".into(),
                        }
                    }
                    Err(_) => "failed".into(),
                };
                cells.push(text);
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_renders_all_rows() {
        let text = render(&quick(), 2);
        assert!(text.contains("θ=60°"));
        assert!(text.contains("θ=360°"));
        assert!(text.contains("0.40"));
        assert!(!text.contains("failed"));
    }

    #[test]
    fn throughput_falls_monotonically_enough_with_fer() {
        // Pin the physics the sweep exists to show: heavy FER costs real
        // throughput for the omni scheme at a narrow beam.
        let sweep = quick();
        let clean = cell(&sweep, Scheme::OrtsOcts, 60.0, 0.0);
        let dirty = cell(&sweep, Scheme::OrtsOcts, 60.0, 0.4);
        let a =
            RingOutcome::from_samples(&try_run_cell(&clean, 2, &CellGuards::default()).unwrap());
        let b =
            RingOutcome::from_samples(&try_run_cell(&dirty, 2, &CellGuards::default()).unwrap());
        assert!(
            b.throughput.mean().unwrap() < a.throughput.mean().unwrap(),
            "40% FER must cost throughput"
        );
    }
}
