//! Fault-tolerant grid runner: per-cell isolation, JSONL checkpointing,
//! and resume.
//!
//! The Figs. 6/7 grid is hours of CPU at paper scale; one panicking cell
//! or a runaway simulation must not throw the rest away. This module runs
//! each (N, θ, scheme) cell through [`try_run_cell`] — panics are caught
//! per topology, an optional [`Watchdog`] bounds runaway simulations — and
//! appends each cell's outcome to a checkpoint file as one JSON line.
//! `--resume` replays the checkpoint, re-runs only missing or failed
//! cells, and produces a final report identical to an uninterrupted run
//! (per-cell results are deterministic, so order of completion is
//! irrelevant).
//!
//! The checkpoint format is a deliberately small JSON subset (objects,
//! arrays, strings, numbers, `null`) written and parsed by hand — no
//! serialization dependency, and strict typed errors instead of silent
//! tolerance. Floats round-trip exactly through Rust's shortest-
//! representation `Display`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use dirca_mac::Scheme;
use dirca_net::Watchdog;
use dirca_sim::AbortReason;

use crate::cli::{Flags, UsageError};
use crate::report::GridScale;
use crate::ringsim::{try_run_cell, CellFailure, CellGuards, TopologySample};
use crate::wireio::{self, WireFormat};

/// One grid coordinate: density × beamwidth × scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Neighbourhood size `N`.
    pub n: usize,
    /// Beamwidth θ in degrees.
    pub theta: f64,
    /// Collision-avoidance scheme.
    pub scheme: Scheme,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={} θ={}° {}", self.n, self.theta, self.scheme)
    }
}

impl Cell {
    /// Parses the `--inject-*` flag syntax `n,theta,scheme`, e.g.
    /// `3,90,ORTS-OCTS`.
    pub fn parse(text: &str) -> Option<Cell> {
        let mut parts = text.split(',');
        let n = parts.next()?.trim().parse().ok()?;
        let theta = parts.next()?.trim().parse().ok()?;
        let scheme = parts.next()?.trim().parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Cell { n, theta, scheme })
    }

    fn key(&self) -> CellKey {
        (self.n, self.theta.to_bits(), self.scheme as u8)
    }
}

type CellKey = (usize, u64, u8);

/// The outcome of one cell under the runner.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Which cell.
    pub cell: Cell,
    /// How many attempts were spent this invocation (0 when restored from
    /// a checkpoint).
    pub attempts: u32,
    /// The samples, or why they could not be produced.
    pub result: Result<Vec<TopologySample>, CellFailure>,
}

/// What a [`run_grid`] invocation did.
#[derive(Debug)]
pub struct GridRun {
    /// Per-cell outcomes in deterministic grid order (restored cells
    /// included), covering every cell that was reached.
    pub outcomes: Vec<CellOutcome>,
    /// Cells actually executed (not restored) this invocation.
    pub executed: usize,
    /// Cells restored from the checkpoint.
    pub restored: usize,
    /// Whether `--max-cells` stopped the run before the grid completed.
    pub stopped_early: bool,
    /// Non-fatal degradations (e.g. a torn checkpoint tail skipped on
    /// resume), for the caller to surface on stderr.
    pub warnings: Vec<String>,
}

impl GridRun {
    /// The outcomes that failed, in grid order.
    pub fn failures(&self) -> Vec<&CellOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err()).collect()
    }

    /// Renders the failed cells with their coordinates, one per line.
    /// Empty string when everything succeeded.
    pub fn render_failures(&self) -> String {
        let failures = self.failures();
        if failures.is_empty() {
            return String::new();
        }
        let mut out = String::from("FAILED CELLS\n");
        for o in failures {
            let failure = o.result.as_ref().expect_err("filtered to failures");
            out.push_str(&format!(
                "  {} — {} (attempts: {})\n",
                o.cell, failure, o.attempts
            ));
        }
        out
    }
}

/// Runner policy, usually built from command-line flags.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads per cell.
    pub threads: usize,
    /// Extra attempts for a failed cell beyond the first (the simulations
    /// are deterministic, so retries only help against environmental
    /// failures — resource exhaustion, not logic bugs).
    pub retries: u32,
    /// Watchdog budget applied to every topology simulation.
    pub watchdog: Option<Watchdog>,
    /// Checkpoint file to write (and resume from).
    pub checkpoint: Option<PathBuf>,
    /// Encoding for a freshly created checkpoint. On resume the existing
    /// file's format wins (sniffed from its leading bytes), so appended
    /// records always match what is already there.
    pub checkpoint_format: WireFormat,
    /// Re-use completed cells from the checkpoint instead of starting
    /// over.
    pub resume: bool,
    /// Stop after executing this many cells this invocation.
    pub max_cells: Option<usize>,
    /// Drill switch: this cell deliberately panics (topology 0).
    pub inject_panic: Option<Cell>,
    /// Drill switch: this cell runs under a starvation watchdog.
    pub inject_timeout: Option<Cell>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: 1,
            retries: 1,
            watchdog: None,
            checkpoint: None,
            checkpoint_format: WireFormat::Jsonl,
            resume: false,
            max_cells: None,
            inject_panic: None,
            inject_timeout: None,
        }
    }
}

impl RunnerConfig {
    /// Builds the runner policy from flags: `--threads`, `--retries`,
    /// `--events-budget`, `--checkpoint PATH`,
    /// `--checkpoint-format {jsonl,bin}`, `--resume`, `--max-cells`, and
    /// the drill switches `--inject-panic n,theta,scheme` /
    /// `--inject-timeout n,theta,scheme`.
    pub fn try_from_flags(flags: &Flags) -> Result<Self, UsageError> {
        let parse_cell = |flag: &str| -> Result<Option<Cell>, UsageError> {
            match flags.get(flag) {
                None => Ok(None),
                Some(v) => Cell::parse(v).map(Some).ok_or_else(|| UsageError {
                    flag: flag.to_string(),
                    expected: "a cell as n,theta,scheme",
                    got: v.to_string(),
                }),
            }
        };
        let events_budget = flags.try_get_u64("events-budget", 0)?;
        Ok(RunnerConfig {
            threads: flags.try_get_usize(
                "threads",
                std::thread::available_parallelism().map_or(4, |n| n.get()),
            )?,
            retries: u32::try_from(flags.try_get_usize("retries", 1)?).unwrap_or(u32::MAX),
            watchdog: (events_budget > 0).then(|| Watchdog::max_events(events_budget)),
            checkpoint: flags.get("checkpoint").map(PathBuf::from),
            checkpoint_format: WireFormat::try_from_flags(flags, "checkpoint-format")?,
            resume: flags.has("resume"),
            max_cells: match flags.try_get_usize("max-cells", 0)? {
                0 => None,
                k => Some(k),
            },
            inject_panic: parse_cell("inject-panic")?,
            inject_timeout: parse_cell("inject-timeout")?,
        })
    }
}

/// The deterministic cell order of a grid: densities × beamwidths ×
/// schemes, exactly as the reports iterate them.
pub fn enumerate_cells(scale: &GridScale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &n in &scale.densities {
        for &theta in &scale.beamwidths {
            for scheme in Scheme::ALL {
                cells.push(Cell { n, theta, scheme });
            }
        }
    }
    cells
}

/// FNV-1a over the scale parameters that determine cell results. Thread
/// count is deliberately excluded: results are thread-count independent,
/// so a checkpoint taken at `--threads 1` resumes fine at `--threads 8`.
pub fn grid_fingerprint(scale: &GridScale) -> String {
    let canon = format!(
        "topologies={};measure={:?};warmup={:?};seed={};densities={:?};beamwidths={:?};fer={:?}",
        scale.topologies,
        scale.measure,
        scale.warmup,
        scale.seed,
        scale.densities,
        scale.beamwidths,
        scale.fer
    );
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

// ---------------------------------------------------------------------
// Checkpoint errors.
// ---------------------------------------------------------------------

/// Why a checkpoint could not be written or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (message carries the OS error text).
    Io {
        /// The checkpoint path.
        path: String,
        /// What failed.
        what: String,
    },
    /// The first line is not a valid checkpoint header.
    MissingHeader,
    /// The checkpoint was taken for a different grid configuration.
    FingerprintMismatch {
        /// Fingerprint of the requested grid.
        expected: String,
        /// Fingerprint recorded in the file.
        found: String,
    },
    /// A line is not valid checkpoint JSON.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What the parser choked on.
        what: String,
    },
    /// A line parsed as JSON but is not a valid record.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// Which field or value is wrong.
        what: String,
    },
    /// A record names a cell outside the requested grid.
    UnknownCell {
        /// 1-based line number.
        line: usize,
        /// The offending cell, rendered.
        cell: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, what } => {
                write!(f, "checkpoint {path}: {what}")
            }
            CheckpointError::MissingHeader => {
                write!(f, "checkpoint: missing or malformed header line")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different grid (fingerprint {found}, expected {expected})"
            ),
            CheckpointError::Syntax { line, what } => {
                write!(f, "checkpoint line {line}: syntax error: {what}")
            }
            CheckpointError::BadRecord { line, what } => {
                write!(f, "checkpoint line {line}: bad record: {what}")
            }
            CheckpointError::UnknownCell { line, cell } => {
                write!(f, "checkpoint line {line}: cell {cell} is not in this grid")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---------------------------------------------------------------------
// Minimal JSON subset: null, numbers, strings, arrays, objects.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if !(0.0..=usize::MAX as f64).contains(&v) {
            return None;
        }
        // Exact integrality check without a float comparison: the cast
        // truncates, so the round trip is bit-identical iff `v` already
        // was that integer.
        let n = v as usize;
        ((n as f64).to_bits() == v.to_bits()).then_some(n)
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Record rendering and parsing.
// ---------------------------------------------------------------------

fn header_line(fingerprint: &str) -> String {
    format!("{{\"dirca_checkpoint\":1,\"fingerprint\":\"{fingerprint}\"}}")
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "null".into(),
    }
}

fn record_line(cell: &Cell, result: &Result<Vec<TopologySample>, CellFailure>) -> String {
    let head = format!(
        "{{\"n\":{},\"theta\":{},\"scheme\":\"{}\"",
        cell.n, cell.theta, cell.scheme
    );
    match result {
        Ok(samples) => {
            let body: Vec<String> = samples
                .iter()
                .map(|s| {
                    format!(
                        "[{},{},{},{}]",
                        s.throughput,
                        opt_num(s.delay_ms),
                        opt_num(s.collision_ratio),
                        opt_num(s.jain)
                    )
                })
                .collect();
            format!(
                "{head},\"status\":\"ok\",\"samples\":[{}]}}",
                body.join(",")
            )
        }
        Err(CellFailure::Panicked { topology, message }) => format!(
            "{head},\"status\":\"panicked\",\"topology\":{topology},\"message\":\"{}\"}}",
            escape_json(message)
        ),
        Err(CellFailure::TimedOut { topology, aborted }) => {
            let reason = match aborted.reason {
                AbortReason::MaxEvents => "max_events",
                AbortReason::MaxSimTime => "max_sim_time",
            };
            format!(
                "{head},\"status\":\"timed_out\",\"topology\":{topology},\"reason\":\"{reason}\",\"events\":{},\"at_ns\":{}}}",
                aborted.events,
                aborted.now.as_nanos()
            )
        }
    }
}

fn bad(line: usize, what: impl Into<String>) -> CheckpointError {
    CheckpointError::BadRecord {
        line,
        what: what.into(),
    }
}

fn parse_record(
    line_no: usize,
    json: &Json,
) -> Result<(Cell, Option<Vec<TopologySample>>), CheckpointError> {
    let n = json
        .get("n")
        .and_then(Json::as_usize)
        .ok_or_else(|| bad(line_no, "missing or non-integer 'n'"))?;
    let theta = json
        .get("theta")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(line_no, "missing or non-numeric 'theta'"))?;
    let scheme: Scheme = json
        .get("scheme")
        .and_then(Json::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad(line_no, "missing or unknown 'scheme'"))?;
    let cell = Cell { n, theta, scheme };
    let status = json
        .get("status")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(line_no, "missing 'status'"))?;
    match status {
        "ok" => {
            let raw = match json.get("samples") {
                Some(Json::Arr(items)) => items,
                _ => return Err(bad(line_no, "'ok' record without 'samples' array")),
            };
            let mut samples = Vec::with_capacity(raw.len());
            for item in raw {
                let tuple = match item {
                    Json::Arr(vs) if vs.len() == 4 => vs,
                    _ => return Err(bad(line_no, "sample is not a 4-element array")),
                };
                let opt = |j: &Json| -> Result<Option<f64>, CheckpointError> {
                    match j {
                        Json::Null => Ok(None),
                        Json::Num(v) => Ok(Some(*v)),
                        _ => Err(bad(line_no, "sample field is neither number nor null")),
                    }
                };
                samples.push(TopologySample {
                    throughput: tuple[0]
                        .as_f64()
                        .ok_or_else(|| bad(line_no, "non-numeric throughput"))?,
                    delay_ms: opt(&tuple[1])?,
                    collision_ratio: opt(&tuple[2])?,
                    jain: opt(&tuple[3])?,
                });
            }
            Ok((cell, Some(samples)))
        }
        // Failed cells are recorded for diagnosis but never restored: the
        // resume pass re-runs them.
        "panicked" | "timed_out" => Ok((cell, None)),
        other => Err(bad(line_no, format!("unknown status {other:?}"))),
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        what: e.to_string(),
    }
}

/// What a checkpoint replay restored: the completed cells' samples plus
/// any non-fatal degradations encountered along the way.
type Restored = (BTreeMap<CellKey, Vec<TopologySample>>, Vec<String>);

/// Replays a checkpoint from its raw bytes, dispatching on the sniffed
/// format: validates the header fingerprint and returns the completed
/// cells' samples (later records for the same cell win, so a retried cell
/// restores its newest outcome).
///
/// Crash tolerance: a torn or corrupt *trailing* record — the signature
/// of a crash mid-write — is skipped with a warning and its cell re-run,
/// instead of failing the whole resume. Corruption anywhere *before* the
/// tail still hard-errors: that is not a torn write, and silently
/// dropping interior records would resurrect stale results.
fn load_checkpoint(
    bytes: &[u8],
    fingerprint: &str,
    grid: &[Cell],
) -> Result<Restored, CheckpointError> {
    if wireio::sniff_binary(bytes) {
        load_checkpoint_bin(bytes, fingerprint, grid)
    } else {
        load_checkpoint_jsonl(bytes, fingerprint, grid)
    }
}

/// Applies one parsed record to the restore map (shared by both formats):
/// `ok` records restore, recorded failures un-restore so the cell re-runs.
fn apply_record(
    done: &mut BTreeMap<CellKey, Vec<TopologySample>>,
    cell: Cell,
    samples: Option<Vec<TopologySample>>,
) {
    match samples {
        Some(s) => {
            done.insert(cell.key(), s);
        }
        None => {
            // A newer failure supersedes an older success only if the
            // cell was re-run and failed — keep the latest verdict.
            done.remove(&cell.key());
        }
    }
}

fn unknown_cell(grid: &[Cell], cell: &Cell, line: usize) -> Option<CheckpointError> {
    (!grid.iter().any(|c| c.key() == cell.key())).then(|| CheckpointError::UnknownCell {
        line,
        cell: cell.to_string(),
    })
}

fn load_checkpoint_jsonl(
    bytes: &[u8],
    fingerprint: &str,
    grid: &[Cell],
) -> Result<Restored, CheckpointError> {
    let text = std::str::from_utf8(bytes).map_err(|_| CheckpointError::MissingHeader)?;
    let lines: Vec<&str> = text.lines().collect();
    let header = match lines.first() {
        Some(first) => JsonParser::parse(first).map_err(|_| CheckpointError::MissingHeader)?,
        None => return Err(CheckpointError::MissingHeader),
    };
    if header.get("dirca_checkpoint").and_then(Json::as_usize) != Some(1) {
        return Err(CheckpointError::MissingHeader);
    }
    let found = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or(CheckpointError::MissingHeader)?;
    if found != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint.to_string(),
            found: found.to_string(),
        });
    }
    let last_data_line = lines
        .iter()
        .rposition(|l| !l.trim().is_empty())
        .unwrap_or(0);
    let mut done = BTreeMap::new();
    let mut warnings = Vec::new();
    for (i, text) in lines.iter().enumerate().skip(1) {
        let line_no = i + 1;
        if text.trim().is_empty() {
            continue; // a torn final write leaves at most a blank tail
        }
        let is_tail = i == last_data_line;
        let parsed = JsonParser::parse(text)
            .map_err(|what| CheckpointError::Syntax {
                line: line_no,
                what,
            })
            .and_then(|json| parse_record(line_no, &json));
        let (cell, samples) = match parsed {
            Ok(v) => v,
            Err(e) if is_tail => {
                warnings.push(format!(
                    "checkpoint line {line_no} is torn or corrupt and was skipped \
                     (its cell will re-run): {e}"
                ));
                break;
            }
            Err(e) => return Err(e),
        };
        if let Some(e) = unknown_cell(grid, &cell, line_no) {
            return Err(e);
        }
        apply_record(&mut done, cell, samples);
    }
    Ok((done, warnings))
}

fn load_checkpoint_bin(
    bytes: &[u8],
    fingerprint: &str,
    grid: &[Cell],
) -> Result<Restored, CheckpointError> {
    use dirca_trace::wire::{decode_all, kind};
    let (frames, tail_error) = decode_all(bytes);
    let Some(header) = frames.first() else {
        return Err(CheckpointError::MissingHeader);
    };
    if header.kind != kind::CKPT_HEADER {
        return Err(CheckpointError::MissingHeader);
    }
    let found =
        wireio::decode_ckpt_header(&header.payload).map_err(|_| CheckpointError::MissingHeader)?;
    if found != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint.to_string(),
            found,
        });
    }
    let mut done = BTreeMap::new();
    let mut warnings = Vec::new();
    for (i, frame) in frames.iter().enumerate().skip(1) {
        // "Line" numbers in binary diagnostics are 1-based frame indices.
        let frame_no = i + 1;
        if frame.kind != kind::CKPT_CELL {
            return Err(bad(
                frame_no,
                format!("unexpected frame kind {:#04x}", frame.kind),
            ));
        }
        // A CRC-valid frame with an undecodable payload is not a torn
        // write — it is a schema mismatch, and stays a hard error.
        let (cell, samples) =
            wireio::decode_ckpt_cell(&frame.payload).map_err(|e| bad(frame_no, e.to_string()))?;
        if let Some(e) = unknown_cell(grid, &cell, frame_no) {
            return Err(e);
        }
        apply_record(&mut done, cell, samples);
    }
    if let Some(e) = tail_error {
        // The CRC framing makes every decoded prefix frame trustworthy,
        // so whatever stopped the decoder is by definition a tail problem
        // — degrade to a warning and re-run the lost cell.
        warnings.push(format!(
            "checkpoint tail is torn or corrupt and was skipped \
             (at most one cell will re-run): {e}"
        ));
    }
    Ok((done, warnings))
}

// ---------------------------------------------------------------------
// The runner.
// ---------------------------------------------------------------------

/// Runs every cell of `scale`'s grid under the runner policy.
///
/// Cells already completed in the checkpoint (when resuming) are restored
/// without re-execution. Each remaining cell runs under panic isolation
/// and the configured watchdog, with up to `retries` extra attempts; its
/// outcome is appended to the checkpoint before the next cell starts, so
/// an interruption at any point loses at most one cell of work.
pub fn run_grid(scale: &GridScale, config: &RunnerConfig) -> Result<GridRun, CheckpointError> {
    run_grid_with(scale, config, &mut |_| {})
}

/// [`run_grid`] with a per-cell observer: `observer` is called with every
/// outcome as soon as it is known (restored cells first, then each
/// executed cell right after its checkpoint record is flushed). This is
/// the hook `dirca-serve` streams progress heartbeats from — by the time
/// the observer sees an outcome, it is already durable.
pub fn run_grid_with(
    scale: &GridScale,
    config: &RunnerConfig,
    observer: &mut dyn FnMut(&CellOutcome),
) -> Result<GridRun, CheckpointError> {
    let cells = enumerate_cells(scale);
    let fingerprint = grid_fingerprint(scale);
    let mut done: BTreeMap<CellKey, Vec<TopologySample>> = BTreeMap::new();
    let mut warnings = Vec::new();
    let mut sink: Option<File> = None;
    // Appended records must match the existing file, whatever the flag
    // says; a fresh file is written in the configured format.
    let mut sink_format = config.checkpoint_format;
    if let Some(path) = &config.checkpoint {
        if config.resume && path.exists() {
            let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
            sink_format = if wireio::sniff_binary(&bytes) {
                WireFormat::Bin
            } else {
                WireFormat::Jsonl
            };
            (done, warnings) = load_checkpoint(&bytes, &fingerprint, &cells)?;
            sink = Some(
                OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| io_err(path, e))?,
            );
        } else {
            let mut file = File::create(path).map_err(|e| io_err(path, e))?;
            match sink_format {
                WireFormat::Jsonl => {
                    writeln!(file, "{}", header_line(&fingerprint)).map_err(|e| io_err(path, e))?;
                }
                WireFormat::Bin => {
                    file.write_all(&wireio::ckpt_header_frame(&fingerprint))
                        .map_err(|e| io_err(path, e))?;
                }
            }
            sink = Some(file);
        }
    }
    let restored = done.len();
    let mut outcomes = Vec::with_capacity(cells.len());
    let mut executed = 0usize;
    let mut stopped_early = false;
    for cell in &cells {
        if let Some(samples) = done.get(&cell.key()) {
            outcomes.push(CellOutcome {
                cell: *cell,
                attempts: 0,
                result: Ok(samples.clone()),
            });
            observer(outcomes.last().expect("just pushed"));
            continue;
        }
        if config.max_cells.is_some_and(|k| executed >= k) {
            stopped_early = true;
            break;
        }
        executed += 1;
        let experiment = scale.cell(cell.scheme, cell.n, cell.theta);
        let drilled_timeout = config.inject_timeout.is_some_and(|c| c.key() == cell.key());
        let guards = CellGuards {
            watchdog: if drilled_timeout {
                // A budget no simulation can fit in: forces the timeout
                // path deterministically.
                Some(Watchdog::max_events(1))
            } else {
                config.watchdog
            },
            drill_panic: config.inject_panic.is_some_and(|c| c.key() == cell.key()),
        };
        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            match try_run_cell(&experiment, config.threads, &guards) {
                Ok(samples) => break Ok(samples),
                Err(failure) if attempts > config.retries => break Err(failure),
                Err(_) => continue,
            }
        };
        if let (Some(file), Some(path)) = (sink.as_mut(), config.checkpoint.as_ref()) {
            match sink_format {
                WireFormat::Jsonl => {
                    writeln!(file, "{}", record_line(cell, &result))
                        .map_err(|e| io_err(path, e))?;
                }
                WireFormat::Bin => {
                    file.write_all(&wireio::ckpt_cell_frame(cell, &result))
                        .map_err(|e| io_err(path, e))?;
                }
            }
            file.flush().map_err(|e| io_err(path, e))?;
        }
        outcomes.push(CellOutcome {
            cell: *cell,
            attempts,
            result,
        });
        observer(outcomes.last().expect("just pushed"));
    }
    Ok(GridRun {
        outcomes,
        executed,
        restored,
        stopped_early,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_sim::SimTime;

    #[test]
    fn json_subset_round_trips_records() {
        let cell = Cell {
            n: 3,
            theta: 90.0,
            scheme: Scheme::OrtsOcts,
        };
        let samples = vec![
            TopologySample {
                throughput: 0.123456789,
                delay_ms: Some(1.5),
                collision_ratio: None,
                jain: Some(0.875),
            },
            TopologySample {
                throughput: 0.2,
                delay_ms: None,
                collision_ratio: Some(0.1),
                jain: None,
            },
        ];
        let line = record_line(&cell, &Ok(samples.clone()));
        let json = JsonParser::parse(&line).unwrap();
        let (back_cell, back) = parse_record(2, &json).unwrap();
        assert_eq!(back_cell, cell);
        assert_eq!(back.unwrap(), samples, "floats must round-trip exactly");
    }

    #[test]
    fn failure_records_parse_but_do_not_restore() {
        let cell = Cell {
            n: 5,
            theta: 150.0,
            scheme: Scheme::DrtsDcts,
        };
        let panicked = record_line(
            &cell,
            &Err(CellFailure::Panicked {
                topology: 3,
                message: "weird \"quoted\"\npayload".into(),
            }),
        );
        let json = JsonParser::parse(&panicked).unwrap();
        let (_, restored) = parse_record(2, &json).unwrap();
        assert!(restored.is_none());
        let timed = record_line(
            &cell,
            &Err(CellFailure::TimedOut {
                topology: 0,
                aborted: dirca_net::RunAborted {
                    reason: AbortReason::MaxEvents,
                    events: 7,
                    now: SimTime::from_micros(9),
                },
            }),
        );
        let json = JsonParser::parse(&timed).unwrap();
        let (_, restored) = parse_record(3, &json).unwrap();
        assert!(restored.is_none());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"n\":3",
            "{\"n\":3,\"theta\":90,\"scheme\":\"ORTS-OCTS\"}",
            "{\"n\":3,\"theta\":90,\"scheme\":\"ORTS-OCTS\",\"status\":\"weird\"}",
            "{\"n\":3,\"theta\":90,\"scheme\":\"BOGUS\",\"status\":\"ok\",\"samples\":[]}",
        ] {
            let parsed = JsonParser::parse(bad);
            let failed = match parsed {
                Err(_) => true,
                Ok(json) => parse_record(1, &json).is_err(),
            };
            assert!(failed, "must reject {bad:?}");
        }
    }

    #[test]
    fn cell_parse_round_trips_flag_syntax() {
        let cell = Cell::parse("3,90,ORTS-OCTS").unwrap();
        assert_eq!(
            cell,
            Cell {
                n: 3,
                theta: 90.0,
                scheme: Scheme::OrtsOcts
            }
        );
        assert!(Cell::parse("3,90").is_none());
        assert!(Cell::parse("3,90,ORTS-OCTS,extra").is_none());
        assert!(Cell::parse("x,90,ORTS-OCTS").is_none());
    }

    #[test]
    fn fingerprint_ignores_threads_but_not_seed() {
        let scale = |seed, threads| GridScale {
            topologies: 2,
            measure: dirca_sim::SimDuration::from_millis(100),
            warmup: dirca_sim::SimDuration::from_millis(10),
            threads,
            seed,
            densities: vec![3],
            beamwidths: vec![90.0],
            fer: 0.0,
        };
        assert_eq!(
            grid_fingerprint(&scale(1, 1)),
            grid_fingerprint(&scale(1, 8))
        );
        assert_ne!(
            grid_fingerprint(&scale(1, 1)),
            grid_fingerprint(&scale(2, 1))
        );
    }

    #[test]
    fn enumerate_matches_report_order() {
        let scale = GridScale {
            topologies: 1,
            measure: dirca_sim::SimDuration::from_millis(100),
            warmup: dirca_sim::SimDuration::ZERO,
            threads: 1,
            seed: 0,
            densities: vec![3, 5],
            beamwidths: vec![30.0, 90.0],
            fer: 0.0,
        };
        let cells = enumerate_cells(&scale);
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].n, 3);
        assert_eq!(cells[0].theta, 30.0);
        assert_eq!(cells[0].scheme, Scheme::OrtsOcts);
        assert_eq!(cells.last().unwrap().n, 5);
    }
}
