//! E11 — MAC-mechanism ablations (ours).
//!
//! DESIGN.md calls out three protocol mechanisms whose value is asserted
//! but not isolated by the paper: EIFS after corrupted receptions, NAV
//! suppression of CTS responses, and the choice between purely directional
//! RTS retries vs Ko-style omni fallback. This experiment toggles each on
//! the ring simulation and reports its effect.

use dirca_mac::{MacConfig, Scheme};

use crate::ringsim::{run_cell, RingExperiment, RingOutcome};

/// A named MAC variant.
#[derive(Debug, Clone)]
pub struct MacVariant {
    /// Human-readable label.
    pub label: String,
    /// The configuration it runs.
    pub config: MacConfig,
}

/// The standard variant set: baseline plus one toggle each.
pub fn standard_variants() -> Vec<MacVariant> {
    let base = MacConfig::default();
    vec![
        MacVariant {
            label: "baseline 802.11".into(),
            config: base.clone(),
        },
        MacVariant {
            label: "no EIFS".into(),
            config: MacConfig {
                use_eifs: false,
                ..base.clone()
            },
        },
        MacVariant {
            label: "ignore NAV on RTS".into(),
            config: MacConfig {
                respect_nav_on_rts: false,
                ..base.clone()
            },
        },
        MacVariant {
            label: "omni RTS on retry (Ko)".into(),
            config: MacConfig {
                omni_rts_on_retry: true,
                ..base
            },
        },
    ]
}

/// Runs every variant on one (scheme, N, θ) cell.
pub fn run_variants(
    scheme: Scheme,
    n_avg: usize,
    theta: f64,
    topologies: usize,
    threads: usize,
    variants: &[MacVariant],
) -> Vec<(String, RingOutcome)> {
    variants
        .iter()
        .map(|variant| {
            let mut exp = RingExperiment::paper(scheme, n_avg, theta);
            exp.topologies = topologies;
            exp.mac = variant.config.clone();
            (variant.label.clone(), run_cell(&exp, threads))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_sim::SimDuration;

    #[test]
    fn standard_variants_differ_from_baseline() {
        let variants = standard_variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].config, MacConfig::default());
        for v in &variants[1..] {
            assert_ne!(v.config, MacConfig::default(), "{} is a no-op", v.label);
        }
    }

    #[test]
    fn variants_produce_distinct_dynamics() {
        // On a contended cell, toggling NAV respect must change the run
        // (event counts and throughput will differ). Omni RTS/CTS maximizes
        // how often a receiver's NAV is busy when an RTS addressed to it
        // arrives, which is the condition the toggle controls.
        let run = |config: MacConfig| {
            let mut exp = RingExperiment::quick(Scheme::OrtsOcts, 5, 30.0);
            exp.topologies = 2;
            exp.measure = SimDuration::from_millis(500);
            exp.mac = config;
            run_cell(&exp, 2)
        };
        let base = run(MacConfig::default());
        let no_nav = run(MacConfig {
            respect_nav_on_rts: false,
            ..MacConfig::default()
        });
        assert_ne!(
            base.throughput.mean(),
            no_nav.throughput.mean(),
            "NAV toggle had no observable effect"
        );
    }
}
