//! E12 — extension: when is the RTS/CTS handshake worth it?
//!
//! Simulates the ring topology under ORTS-OCTS with the handshake enabled
//! (every frame RTS-protected) vs disabled (pure basic access), across
//! data packet sizes — the simulation counterpart of the analytical
//! [`dirca_analysis::basic`] model. With long frames and hidden terminals
//! the handshake wins; with short frames its four-packet overhead loses.

use crate::pool::parallel_indexed;

use dirca_mac::{MacConfig, Scheme};
use dirca_net::salts::{RUN_STREAM_SALT, TOPOLOGY_STREAM_SALT};
use dirca_net::{run, SimConfig};
use dirca_sim::{rng::derive_seed, rng::stream_rng, SimDuration};
use dirca_stats::Summary;
use dirca_topology::RingSpec;

/// One row of the comparison: a data size, simulated both ways.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Data frame size in bytes.
    pub data_bytes: u32,
    /// Normalized throughput with the RTS/CTS handshake.
    pub with_handshake: Summary,
    /// Normalized throughput with basic access.
    pub basic_access: Summary,
    /// Collision ratio with the handshake.
    pub handshake_collisions: Summary,
    /// Collision ratio with basic access (data frames lost).
    pub basic_collisions: Summary,
}

/// Configuration of the comparison.
#[derive(Debug, Clone)]
pub struct ThresholdStudy {
    /// Ring density `N`.
    pub n_avg: usize,
    /// Data sizes to evaluate.
    pub data_sizes: Vec<u32>,
    /// Topologies per point.
    pub topologies: usize,
    /// Master seed.
    pub seed: u64,
    /// Measurement window.
    pub measure: SimDuration,
}

impl Default for ThresholdStudy {
    fn default() -> Self {
        ThresholdStudy {
            n_avg: 5,
            data_sizes: vec![100, 250, 500, 1000, 1460],
            topologies: 8,
            seed: 0x7157,
            measure: SimDuration::from_secs(5),
        }
    }
}

/// Runs the study, spreading topologies over `threads` workers.
pub fn run_study(study: &ThresholdStudy, threads: usize) -> Vec<ThresholdRow> {
    study
        .data_sizes
        .iter()
        .map(|&bytes| {
            let (with_handshake, handshake_collisions) =
                run_mode(study, bytes, false, threads.max(1));
            let (basic_access, basic_collisions) = run_mode(study, bytes, true, threads.max(1));
            ThresholdRow {
                data_bytes: bytes,
                with_handshake,
                basic_access,
                handshake_collisions,
                basic_collisions,
            }
        })
        .collect()
}

fn run_mode(study: &ThresholdStudy, bytes: u32, basic: bool, threads: usize) -> (Summary, Summary) {
    let samples = parallel_indexed(study.topologies, threads, |t| {
        let spec = RingSpec::paper(study.n_avg, 1.0);
        let mut topo_rng = stream_rng(derive_seed(study.seed, TOPOLOGY_STREAM_SALT), t as u64);
        let topology = spec.generate(&mut topo_rng).expect("topology generation");
        let mut config = SimConfig::new(Scheme::OrtsOcts)
            .with_seed(derive_seed(study.seed, RUN_STREAM_SALT + t as u64))
            .with_data_bytes(bytes)
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(study.measure);
        config.mac = MacConfig {
            rts_threshold_bytes: if basic { u32::MAX } else { 0 },
            ..MacConfig::default()
        };
        let result = run(&topology, &config);
        (
            result.aggregate_throughput_bps() / 2e6,
            result.collision_ratio(),
        )
    });
    let mut throughput = Summary::new();
    let mut collisions = Summary::new();
    for (tp, collision) in samples {
        throughput.push(tp);
        if let Some(c) = collision {
            collisions.push(c);
        }
    }
    (throughput, collisions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThresholdStudy {
        ThresholdStudy {
            n_avg: 3,
            data_sizes: vec![100, 1460],
            topologies: 3,
            measure: SimDuration::from_secs(1),
            ..ThresholdStudy::default()
        }
    }

    #[test]
    fn study_produces_one_row_per_size() {
        let rows = run_study(&tiny(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].data_bytes, 100);
        assert_eq!(rows[0].with_handshake.count(), 3);
        assert_eq!(rows[0].basic_access.count(), 3);
    }

    #[test]
    fn basic_access_loses_more_data_frames() {
        // Without RTS protection, the long data frames absorb the
        // collisions the handshake would have taken on cheap RTS frames.
        let rows = run_study(&tiny(), 2);
        let long = rows.last().unwrap();
        let basic = long.basic_collisions.mean().unwrap_or(0.0);
        let protected = long.handshake_collisions.mean().unwrap_or(0.0);
        assert!(
            basic > protected,
            "basic access should lose more data frames: {basic} vs {protected}"
        );
    }
}
