//! E8 — extension: Nasipuri-style directional reception.
//!
//! The paper's §5 suggests further research on collision avoidance schemes
//! tailored to directional antennas. One natural extension, used by
//! Nasipuri et al. (WCNC 2000), is *directional reception*: the receiver
//! selects the antenna pointing at the frame it locked onto, so
//! interference arriving from other directions no longer corrupts it. This
//! experiment reruns the ring simulation with
//! [`dirca_radio::ReceptionMode::Directional`] and compares against the
//! paper's omni-reception baseline.

use dirca_geometry::Beamwidth;
use dirca_mac::Scheme;
use dirca_radio::ReceptionMode;

use crate::ringsim::{run_cell, RingExperiment, RingOutcome};

/// Outcome of the directional-reception comparison for one scheme.
#[derive(Debug, Clone)]
pub struct RxComparison {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Baseline: omni reception (the paper's model).
    pub omni_rx: RingOutcome,
    /// Extension: directional reception with the same beamwidth as
    /// transmission.
    pub directional_rx: RingOutcome,
}

/// Runs the comparison for `scheme` on the given cell parameters.
///
/// # Panics
///
/// Panics if `beamwidth_degrees` is outside `(0, 360]`.
pub fn compare(
    scheme: Scheme,
    n_avg: usize,
    beamwidth_degrees: f64,
    topologies: usize,
    threads: usize,
) -> RxComparison {
    let beam = Beamwidth::from_degrees(beamwidth_degrees).expect("valid beamwidth");
    let mut base = RingExperiment::paper(scheme, n_avg, beamwidth_degrees);
    base.topologies = topologies;
    let omni_rx = run_cell(&base, threads);
    let directional = RingExperiment {
        reception: ReceptionMode::Directional { beamwidth: beam },
        ..base
    };
    let directional_rx = run_cell(&directional, threads);
    RxComparison {
        scheme,
        omni_rx,
        directional_rx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_sim::SimDuration;

    #[test]
    fn directional_reception_does_not_hurt_throughput() {
        // Directional reception can only remove corruption events, so mean
        // throughput must not degrade (tiny tolerance for the different
        // contention dynamics it induces).
        let scheme = Scheme::DrtsDcts;
        let mut base = RingExperiment::quick(scheme, 3, 30.0);
        base.topologies = 3;
        base.measure = SimDuration::from_millis(500);
        let omni = run_cell(&base, 2);
        let dir = run_cell(
            &RingExperiment {
                reception: ReceptionMode::Directional {
                    beamwidth: Beamwidth::from_degrees(30.0).unwrap(),
                },
                ..base
            },
            2,
        );
        let omni_th = omni.throughput.mean().unwrap();
        let dir_th = dir.throughput.mean().unwrap();
        assert!(
            dir_th > 0.85 * omni_th,
            "directional rx collapsed: {dir_th} vs {omni_th}"
        );
    }
}
