//! E1 — regenerates Fig. 5: analytical maximum throughput vs beamwidth.
//!
//! Usage: `fig5 [--n 5] [--all] [--with-p]`
//!
//! `--n` selects a single density; `--all` prints N = 3, 5, and 8;
//! `--with-p` also prints the optimal attempt probabilities.

use dirca_experiments::cli::Flags;
use dirca_experiments::fig5;

fn main() {
    let flags = Flags::from_env();
    let densities: Vec<f64> = if flags.has("all") {
        vec![3.0, 5.0, 8.0]
    } else {
        vec![flags.get_f64("n", 5.0)]
    };
    for n in densities {
        let rows = fig5::compute(n);
        println!("{}", fig5::render(n, &rows));
        if flags.has("with-p") {
            println!("{}", fig5::render_optimal_p(n));
        }
    }
}
