//! E12 — when is the RTS/CTS handshake worth it? Simulated throughput and
//! collision ratio with vs without the handshake, across data sizes.
//!
//! Usage: `rts_threshold [--quick] [--n 5] [--topologies 8] [--threads K]`

use dirca_experiments::cli::Flags;
use dirca_experiments::rts_threshold::{run_study, ThresholdStudy};
use dirca_experiments::table::Table;
use dirca_sim::SimDuration;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let study = ThresholdStudy {
        n_avg: flags.get_usize("n", 5),
        topologies: flags.get_usize("topologies", if quick { 3 } else { 8 }),
        measure: SimDuration::from_millis(
            flags.get_u64("measure-ms", if quick { 1000 } else { 5000 }),
        ),
        ..ThresholdStudy::default()
    };
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    let rows = run_study(&study, threads);
    let mut t = Table::new(vec![
        "data (bytes)".into(),
        "RTS/CTS th".into(),
        "basic th".into(),
        "RTS/CTS coll".into(),
        "basic coll".into(),
    ]);
    for row in &rows {
        let m = |s: &dirca_stats::Summary, d: usize| {
            s.mean().map_or("n/a".into(), |v| format!("{v:.0$}", d))
        };
        t.row(vec![
            format!("{}", row.data_bytes),
            m(&row.with_handshake, 3),
            m(&row.basic_access, 3),
            m(&row.handshake_collisions, 3),
            m(&row.basic_collisions, 3),
        ]);
    }
    println!(
        "RTS-threshold study — ORTS-OCTS, N = {}, {} topologies\n\n{}",
        study.n_avg,
        study.topologies,
        t.render()
    );
}
