//! E8 — extension: directional reception (Nasipuri-style antenna
//! selection) vs the paper's omni-reception baseline.
//!
//! Usage: `directional_rx [--quick] [--topologies T] [--n 5] [--theta 30]
//!                        [--threads K]`

use dirca_experiments::cli::Flags;
use dirca_experiments::directional_rx::compare;
use dirca_experiments::table::{mean_range, Table};
use dirca_mac::Scheme;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let topologies = flags.get_usize("topologies", if quick { 4 } else { 25 });
    let n = flags.get_usize("n", 5);
    let theta = flags.get_f64("theta", 30.0);
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    let mut t = Table::new(vec![
        "scheme".into(),
        "omni RX throughput".into(),
        "directional RX throughput".into(),
    ]);
    for scheme in Scheme::ALL {
        let cmp = compare(scheme, n, theta, topologies, threads);
        let fmt = |s: &dirca_stats::Summary| match (s.mean(), s.min(), s.max()) {
            (Some(m), Some(lo), Some(hi)) => mean_range(m, lo, hi, 3),
            _ => "n/a".into(),
        };
        t.row(vec![
            scheme.to_string(),
            fmt(&cmp.omni_rx.throughput),
            fmt(&cmp.directional_rx.throughput),
        ]);
    }
    println!(
        "Directional reception extension (N = {n}, θ = {theta}°, {topologies} topologies)\n\n{}",
        t.render()
    );
}
