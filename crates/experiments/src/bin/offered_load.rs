//! E9 — extension: throughput and end-to-end delay vs offered load under
//! Poisson traffic, per scheme.
//!
//! Usage: `offered_load [--quick] [--n 5] [--theta 30] [--topologies 8]
//!                      [--threads K] [--seed S]`

use dirca_experiments::cli::Flags;
use dirca_experiments::offered_load::{run_sweep, LoadSweep};
use dirca_experiments::table::Table;
use dirca_mac::Scheme;
use dirca_sim::SimDuration;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let sweep = LoadSweep {
        n_avg: flags.get_usize("n", 5),
        beamwidth_degrees: flags.get_f64("theta", 30.0),
        topologies: flags.get_usize("topologies", if quick { 3 } else { 8 }),
        seed: flags.get_u64("seed", 0x10AD),
        measure: SimDuration::from_millis(
            flags.get_u64("measure-ms", if quick { 1000 } else { 5000 }),
        ),
        ..LoadSweep::default()
    };
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    println!(
        "Offered load sweep — N = {}, θ = {}°, Poisson arrivals, {} topologies/point\n",
        sweep.n_avg, sweep.beamwidth_degrees, sweep.topologies
    );
    let mut t = Table::new(vec![
        "offered (pkt/s/node)".into(),
        "ORTS-OCTS th".into(),
        "DRTS-DCTS th".into(),
        "ORTS-OCTS delay (ms)".into(),
        "DRTS-DCTS delay (ms)".into(),
    ]);
    let omni = run_sweep(Scheme::OrtsOcts, &sweep, threads);
    let dir = run_sweep(Scheme::DrtsDcts, &sweep, threads);
    let mut failed = 0usize;
    for (scheme, points) in [("ORTS-OCTS", &omni), ("DRTS-DCTS", &dir)] {
        for p in points.iter() {
            for (topology, message) in &p.failed_topologies {
                failed += 1;
                eprintln!(
                    "warning: {scheme} at {} pkt/s: topology {topology} panicked: {message}",
                    p.offered_pps
                );
            }
        }
    }
    for (o, d) in omni.iter().zip(&dir) {
        t.row(vec![
            format!("{:.0}", o.offered_pps),
            format!("{:.3}", o.throughput.mean().unwrap_or(0.0)),
            format!("{:.3}", d.throughput.mean().unwrap_or(0.0)),
            format!("{:.1}", o.e2e_delay_ms.mean().unwrap_or(f64::NAN)),
            format!("{:.1}", d.e2e_delay_ms.mean().unwrap_or(f64::NAN)),
        ]);
    }
    println!("{}", t.render());
    if failed > 0 {
        eprintln!("{failed} topology simulations failed; summaries above exclude them");
        std::process::exit(1);
    }
}
