//! E3 — regenerates Fig. 6: simulated throughput of the three schemes on
//! ring topologies (mean and min-max range over topologies).
//!
//! Usage: `fig6 [--quick] [--topologies 50] [--measure-ms 10000]
//!               [--n 3|5|8] [--theta 30|90|150] [--threads K] [--seed S]`

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{grid_report, GridScale, Metric};

fn main() {
    let scale = GridScale::from_flags(&Flags::from_env());
    println!(
        "{}",
        grid_report(
            "Fig. 6 — throughput of the inner N nodes, normalized to the 2 Mbps channel\n\
             (mean [min, max] over topologies; 1460-byte saturated CBR)",
            Metric::Throughput,
            &scale,
        )
    );
}
