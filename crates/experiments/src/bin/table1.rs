//! E2 — prints Table 1 (the IEEE 802.11 DSSS configuration) plus the
//! derived airtimes the simulator uses.

fn main() {
    println!("{}", dirca_experiments::table1::render());
}
