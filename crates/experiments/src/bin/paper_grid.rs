//! Runs the full Figs. 6/7 simulation grid ONCE and prints all four
//! metric reports (throughput, delay, collision ratio, fairness) from the
//! same runs. This is the economical way to regenerate E3-E6 together.
//!
//! The grid runs under the fault-tolerant runner: each cell is isolated
//! (a panic or watchdog trip fails that cell, not the run), and with
//! `--checkpoint PATH` every finished cell is persisted so `--resume`
//! continues an interrupted run where it left off.
//!
//! Usage: same scale flags as `fig6` (`--quick`, `--topologies`,
//! `--measure-ms`, `--n`, `--theta`, `--threads`, `--seed`), plus the
//! runner flags `--checkpoint PATH`, `--resume`, `--max-cells K`,
//! `--retries R`, `--events-budget E`, and the CI drill switches
//! `--inject-panic n,theta,scheme` / `--inject-timeout n,theta,scheme`.
//!
//! With `--trace PATH` (requires building with `--features trace`) the run
//! additionally exports a structured trace of topology 0 of every cell —
//! JSONL by default, or the CRC-framed binary encoding with
//! `--trace-format bin`. See `dirca_experiments::tracegrid` for the
//! document layouts and the `trace_view` binary for folding either format
//! into per-node timelines. `--checkpoint-format {jsonl,bin}` selects the
//! checkpoint encoding the same way (resume auto-detects the existing
//! file's format).
//!
//! Exit status: 0 on a clean complete grid, 1 if any cell failed, 2 on a
//! usage error, 3 if `--max-cells` stopped the run early.

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{render_combined, GridScale};
use dirca_experiments::ringsim::RingOutcome;
use dirca_experiments::runner::{run_grid, RunnerConfig};

fn main() {
    let flags = Flags::from_env();
    let scale = GridScale::from_flags(&flags);
    let runner = RunnerConfig::try_from_flags(&flags).unwrap_or_else(|e| e.exit());
    eprintln!(
        "running grid: {} densities x {} beamwidths x 3 schemes x {} topologies ({} ms measure, {} threads)",
        scale.densities.len(),
        scale.beamwidths.len(),
        scale.topologies,
        scale.measure.as_nanos() / 1_000_000,
        runner.threads
    );
    if let Some(path) = flags.get("trace") {
        #[cfg(feature = "trace")]
        {
            use dirca_experiments::wireio::WireFormat;
            let format =
                WireFormat::try_from_flags(&flags, "trace-format").unwrap_or_else(|e| e.exit());
            eprintln!("exporting structured {format} trace to {path}");
            match format {
                WireFormat::Jsonl => dirca_experiments::tracegrid::export_grid_trace(&scale, path),
                WireFormat::Bin => {
                    dirca_experiments::tracegrid::export_grid_trace_bin(&scale, path)
                }
            }
            .unwrap_or_else(|e| {
                eprintln!("failed to write trace {path}: {e}");
                std::process::exit(1);
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = path;
            eprintln!(
                "--trace requires a build with the trace feature: \
                 cargo run -p dirca-experiments --features trace --bin paper_grid"
            );
            std::process::exit(2);
        }
    }
    let outcome = run_grid(&scale, &runner).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    for w in &outcome.warnings {
        eprintln!("warning: {w}");
    }
    if outcome.restored > 0 {
        eprintln!(
            "restored {} completed cells from the checkpoint",
            outcome.restored
        );
    }
    let completed: Vec<_> = outcome
        .outcomes
        .iter()
        .filter_map(|o| {
            o.result.as_ref().ok().map(|s| {
                (
                    o.cell.n,
                    o.cell.theta,
                    o.cell.scheme,
                    RingOutcome::from_samples(s),
                )
            })
        })
        .collect();
    println!("{}", render_combined(&scale, &completed));
    let failures = outcome.render_failures();
    if !failures.is_empty() {
        eprint!("{failures}");
    }
    if outcome.stopped_early {
        eprintln!(
            "stopped early after executing {} cells (--max-cells); rerun with --resume to continue",
            outcome.executed
        );
        std::process::exit(3);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
