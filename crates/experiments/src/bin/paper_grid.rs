//! Runs the full Figs. 6/7 simulation grid ONCE and prints all four
//! metric reports (throughput, delay, collision ratio, fairness) from the
//! same runs. This is the economical way to regenerate E3-E6 together.
//!
//! Usage: same flags as `fig6` (`--quick`, `--topologies`, `--measure-ms`,
//! `--n`, `--theta`, `--threads`, `--seed`).

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{combined_report, GridScale};

fn main() {
    let scale = GridScale::from_flags(&Flags::from_env());
    eprintln!(
        "running grid: {} densities x {} beamwidths x 3 schemes x {} topologies ({} ms measure, {} threads)",
        scale.densities.len(),
        scale.beamwidths.len(),
        scale.topologies,
        scale.measure.as_nanos() / 1_000_000,
        scale.threads
    );
    println!("{}", combined_report(&scale));
}
