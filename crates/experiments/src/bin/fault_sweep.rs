//! E15 — extension: throughput of the three schemes vs injected frame
//! error rate at θ ∈ {60°, 360°}.
//!
//! Usage: `fault_sweep [--quick] [--n 5] [--topologies 5] [--threads K]
//!                     [--seed S] [--measure-ms MS]`

use dirca_experiments::cli::Flags;
use dirca_experiments::fault_sweep::{quick, render, FaultSweep};
use dirca_sim::SimDuration;

fn main() {
    let flags = Flags::from_env();
    let mut sweep = if flags.has("quick") {
        quick()
    } else {
        FaultSweep::default()
    };
    sweep.n_avg = flags.get_usize("n", sweep.n_avg);
    sweep.topologies = flags.get_usize("topologies", sweep.topologies);
    sweep.seed = flags.get_u64("seed", sweep.seed);
    if flags.get("measure-ms").is_some() {
        sweep.measure = SimDuration::from_millis(flags.get_u64("measure-ms", 0));
    }
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    println!("{}", render(&sweep, threads));
}
