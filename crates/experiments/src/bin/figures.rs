//! Regenerates the paper's figures as SVG files under `figures/`.
//!
//! * `fig5_n{3,5,8}.svg` — analytical throughput vs beamwidth.
//! * `fig6_n{N}.svg` / `fig7_n{N}.svg` — simulated throughput / delay vs
//!   beamwidth with min-max whiskers.
//!
//! Usage: `figures [--quick] [--topologies T] [--measure-ms M] [--out DIR]`

use dirca_experiments::cli::Flags;
use dirca_experiments::plot::{LineChart, PlotPoint};
use dirca_experiments::report::GridScale;
use dirca_experiments::ringsim::run_cell;
use dirca_experiments::{fig5, ringsim::RingOutcome};
use dirca_mac::Scheme;

fn main() {
    let flags = Flags::from_env();
    let out = flags.get("out").unwrap_or("figures").to_string();
    std::fs::create_dir_all(&out).expect("create output directory");
    let scale = GridScale::from_flags(&flags);

    // Fig. 5 (analysis): fine beamwidth grid, one file per density.
    for n in [3.0, 5.0, 8.0] {
        let rows = fig5::compute(n);
        let mut chart = LineChart::new(
            format!("Fig. 5 — max achievable throughput (analysis, N = {n})"),
            "beamwidth θ (degrees)",
            "throughput",
        );
        for scheme in Scheme::ALL {
            chart.series(
                scheme.to_string(),
                rows.iter()
                    .map(|r| PlotPoint::new(r.theta_degrees, r.get(scheme)))
                    .collect(),
            );
        }
        let path = format!("{out}/fig5_n{n:.0}.svg");
        chart.save(&path).expect("write fig5 svg");
        eprintln!("wrote {path}");
    }

    // Figs. 6 and 7 (simulation): whiskered curves per density.
    for &n in &scale.densities {
        let mut outcomes: Vec<(f64, Scheme, RingOutcome)> = Vec::new();
        for &theta in &scale.beamwidths {
            for scheme in Scheme::ALL {
                let outcome = run_cell(&scale.cell(scheme, n, theta), scale.threads);
                outcomes.push((theta, scheme, outcome));
            }
        }
        for (fig, label, pick) in [
            ("fig6", "normalized throughput", 0usize),
            ("fig7", "mean MAC delay (ms)", 1),
        ] {
            let mut chart = LineChart::new(
                format!(
                    "{} — simulation, N = {n}",
                    if fig == "fig6" { "Fig. 6" } else { "Fig. 7" }
                ),
                "beamwidth θ (degrees)",
                label,
            );
            for scheme in Scheme::ALL {
                let points = outcomes
                    .iter()
                    .filter(|(_, s, _)| *s == scheme)
                    .filter_map(|(theta, _, o)| {
                        let s = if pick == 0 {
                            &o.throughput
                        } else {
                            &o.delay_ms
                        };
                        Some(PlotPoint::with_range(*theta, s.mean()?, s.min()?, s.max()?))
                    })
                    .collect();
                chart.series(scheme.to_string(), points);
            }
            let path = format!("{out}/{fig}_n{n}.svg");
            chart.save(&path).expect("write svg");
            eprintln!("wrote {path}");
        }
    }
}
