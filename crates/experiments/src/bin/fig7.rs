//! E4 — regenerates Fig. 7: simulated mean MAC service delay (packet
//! head-of-queue to ACK) of the three schemes on ring topologies.
//!
//! Usage: same flags as `fig6`.

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{grid_report, GridScale, Metric};

fn main() {
    let scale = GridScale::from_flags(&Flags::from_env());
    println!(
        "{}",
        grid_report(
            "Fig. 7 — mean MAC delay (ms) of the inner N nodes\n\
             (mean [min, max] over topologies)",
            Metric::DelayMs,
            &scale,
        )
    );
}
