//! E5 — the collision-ratio statistic of §4 (results the paper omitted
//! for space): among handshakes that reached the data stage, the fraction
//! whose data frame was never acknowledged.
//!
//! Usage: same flags as `fig6`.

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{grid_report, GridScale, Metric};

fn main() {
    let scale = GridScale::from_flags(&Flags::from_env());
    println!(
        "{}",
        grid_report(
            "Collision ratio — ACK-timeout handshakes / handshakes reaching the data stage\n\
             (mean [min, max] over topologies; higher = poorer collision avoidance)",
            Metric::CollisionRatio,
            &scale,
        )
    );
}
