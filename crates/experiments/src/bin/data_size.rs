//! E10 — extension: analytical maximum throughput vs data packet length.
//!
//! Quantifies the paper's §3 remark that the RTS/CTS-based handshake is
//! warranted "in the case in which data packets are much longer than
//! control packets": with short data packets the four-way overhead caps
//! all three schemes.
//!
//! Usage: `data_size [--n 5] [--theta 30]`

use dirca_analysis::sweep::data_length_sweep;
use dirca_analysis::ProtocolTimes;
use dirca_experiments::cli::Flags;
use dirca_experiments::table::Table;

fn main() {
    let flags = Flags::from_env();
    let n = flags.get_f64("n", 5.0);
    let theta = flags.get_f64("theta", 30.0);
    let lengths = [5u32, 10, 25, 50, 100, 200, 400, 800];
    let rows = data_length_sweep(ProtocolTimes::paper(), n, theta.to_radians(), &lengths);
    let mut t = Table::new(vec![
        "l_data (slots)".into(),
        "ORTS-OCTS".into(),
        "DRTS-DCTS".into(),
        "DRTS-OCTS".into(),
    ]);
    for row in &rows {
        t.row(vec![
            format!("{}", row.l_data),
            format!("{:.4}", row.orts_octs),
            format!("{:.4}", row.drts_dcts),
            format!("{:.4}", row.drts_octs),
        ]);
    }
    println!(
        "Maximum achievable throughput vs data length (N = {n}, θ = {theta}°, \
         l_rts = l_cts = l_ack = 5τ)\n\n{}",
        t.render()
    );
}
