//! E13 — airtime accounting: where does each scheme's time go?
//!
//! For each scheme, sums the measured nodes' transmit airtime by frame
//! kind over the ring simulation and reports the control overhead and the
//! idle/deferring remainder — the direct measurement behind the paper's
//! claim that conservative collision avoidance wastes channel time on
//! coordination and waiting.
//!
//! Usage: `airtime [--quick] [--n 5] [--theta 30] [--topologies 8]`

use dirca_experiments::cli::Flags;
use dirca_experiments::table::Table;
use dirca_mac::Scheme;
use dirca_net::salts::{RUN_STREAM_SALT, TOPOLOGY_STREAM_SALT};
use dirca_net::{run, SimConfig};
use dirca_sim::{rng::derive_seed, rng::stream_rng, SimDuration};
use dirca_topology::RingSpec;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let n = flags.get_usize("n", 5);
    let theta = flags.get_f64("theta", 30.0);
    let topologies = flags.get_usize("topologies", if quick { 3 } else { 8 });
    let measure =
        SimDuration::from_millis(flags.get_u64("measure-ms", if quick { 1000 } else { 5000 }));
    let seed = flags.get_u64("seed", 0xA127);

    let mut t = Table::new(vec![
        "scheme".into(),
        "data %".into(),
        "RTS %".into(),
        "CTS %".into(),
        "ACK %".into(),
        "idle/defer %".into(),
        "goodput".into(),
    ]);
    for scheme in Scheme::ALL {
        // Average fractions over topologies; airtime fractions are per
        // measured node-second.
        let mut frac = [0.0f64; 5];
        let mut goodput = 0.0;
        for index in 0..topologies {
            let spec = RingSpec::paper(n, 1.0);
            let mut topo_rng = stream_rng(derive_seed(seed, TOPOLOGY_STREAM_SALT), index as u64);
            let topology = spec.generate(&mut topo_rng).expect("topology generation");
            let config = SimConfig::new(scheme)
                .with_beamwidth_degrees(theta)
                .with_seed(derive_seed(seed, RUN_STREAM_SALT + index as u64))
                .with_warmup(SimDuration::from_millis(200))
                .with_measure(measure);
            let result = run(&topology, &config);
            let air = result.airtime_breakdown();
            let node_seconds = measure.as_secs_f64() * n as f64;
            frac[0] += air.data.as_secs_f64() / node_seconds;
            frac[1] += air.rts.as_secs_f64() / node_seconds;
            frac[2] += air.cts.as_secs_f64() / node_seconds;
            frac[3] += air.ack.as_secs_f64() / node_seconds;
            frac[4] += 1.0 - air.total().as_secs_f64() / node_seconds;
            goodput += result.aggregate_throughput_bps() / 2e6;
        }
        let k = topologies as f64;
        t.row(vec![
            scheme.to_string(),
            format!("{:.1}", 100.0 * frac[0] / k),
            format!("{:.1}", 100.0 * frac[1] / k),
            format!("{:.1}", 100.0 * frac[2] / k),
            format!("{:.1}", 100.0 * frac[3] / k),
            format!("{:.1}", 100.0 * frac[4] / k),
            format!("{:.3}", goodput / k),
        ]);
    }
    println!(
        "Airtime breakdown per measured node (N = {n}, θ = {theta}°, {topologies} topologies)\n\
         (percent of each inner node's wall-clock; idle/defer = not transmitting)\n\n{}",
        t.render()
    );
}
