//! Folds a `paper_grid --trace` JSONL document into per-node handshake
//! timelines, or validates it against the record schema.
//!
//! ```text
//! trace_view grid_trace.jsonl            # human-readable per-cell fold
//! trace_view grid_trace.jsonl --check    # schema validation only (exit 0/1)
//! ```
//!
//! Exit status: 0 on success, 1 on a schema violation or unreadable file,
//! 2 on a usage error.

use dirca_trace::{Json, RecordKind, TraceRecord};

fn main() {
    let mut path: Option<String> = None;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            flag if flag.starts_with("--") => {
                eprintln!("unrecognized flag {flag:?} (usage: trace_view <path> [--check])");
                std::process::exit(2);
            }
            positional => {
                if path.replace(positional.to_string()).is_some() {
                    eprintln!("expected exactly one input path");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_view <path> [--check]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    match process(&text, check) {
        // A plain `print!` panics on EPIPE when the fold is piped into
        // `head`; a failed write to a closed pipe is not an error here.
        Ok(report) => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(report.as_bytes());
        }
        Err(message) => {
            eprintln!("{path}: {message}");
            std::process::exit(1);
        }
    }
}

/// Per-node fold of one cell's records.
#[derive(Debug, Clone, Copy, Default)]
struct NodeFold {
    tx: [u64; 4], // indexed by FrameKind::ALL order: RTS, CTS, DATA, ACK
    rx: u64,
    corrupted: u64,
    backoff_draws: u64,
    timeouts: u64,
    nav_sets: u64,
    acked: u64,
    dropped: u64,
    faults: u64,
}

/// State of the cell currently being folded.
#[derive(Debug, Default)]
struct CellFold {
    header: String,
    nodes: Vec<NodeFold>,
    records: u64,
    first_ns: u64,
    last_ns: u64,
}

impl CellFold {
    fn absorb(&mut self, r: &TraceRecord) {
        let t = r.time.as_nanos();
        if self.records == 0 {
            self.first_ns = t;
        }
        self.last_ns = t;
        self.records += 1;
        let idx = r.node.0;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeFold::default());
        }
        let node = &mut self.nodes[idx];
        match r.kind {
            RecordKind::FrameTx { kind, .. } => {
                let slot = dirca_mac::FrameKind::ALL
                    .iter()
                    .position(|&k| k == kind)
                    .expect("FrameKind::ALL is exhaustive");
                node.tx[slot] += 1;
            }
            RecordKind::FrameRx { .. } => node.rx += 1,
            RecordKind::RxCorrupted => node.corrupted += 1,
            RecordKind::BackoffDraw { .. } => node.backoff_draws += 1,
            RecordKind::NavSet { .. } => node.nav_sets += 1,
            RecordKind::NavExpire => {}
            RecordKind::Timeout { .. } => node.timeouts += 1,
            RecordKind::PacketAcked => node.acked += 1,
            RecordKind::PacketDropped => node.dropped += 1,
            RecordKind::FaultCorrupt | RecordKind::FaultOutage => node.faults += 1,
        }
    }

    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        let span_s = (self.last_ns.saturating_sub(self.first_ns)) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{} — {} records over {span_s:.3} s",
            self.header, self.records
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  node {i:>3}: tx rts={:<5} cts={:<5} data={:<5} ack={:<5} rx={:<6} \
                 corrupt={:<4} nav={:<5} backoff={:<5} timeouts={:<4} acked={:<5} \
                 dropped={:<3} faults={}",
                n.tx[0],
                n.tx[1],
                n.tx[2],
                n.tx[3],
                n.rx,
                n.corrupted,
                n.nav_sets,
                n.backoff_draws,
                n.timeouts,
                n.acked,
                n.dropped,
                n.faults,
            );
        }
    }
}

/// Validates `text` line by line; unless `check_only`, also folds it into
/// the human-readable per-cell report.
fn process(text: &str, check_only: bool) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut cell: Option<CellFold> = None;
    let mut cells_seen = 0u64;
    let mut records_seen = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        if lineno == 1 {
            match v.get("schema").and_then(Json::as_str) {
                Some("dirca-trace/v1") => continue,
                Some(other) => return Err(format!("unsupported schema {other:?}")),
                None => return Err("line 1: missing schema header".to_string()),
            }
        }
        match v.get("ev").and_then(Json::as_str) {
            Some("cell") => {
                cells_seen += 1;
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                }
                let n = v
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {lineno}: cell marker missing \"n\""))?;
                let theta = v
                    .get("theta_deg")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("line {lineno}: cell marker missing \"theta_deg\""))?;
                let scheme = v
                    .get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {lineno}: cell marker missing \"scheme\""))?;
                cell = Some(CellFold {
                    header: format!("cell N={n} theta={theta} {scheme}"),
                    ..CellFold::default()
                });
            }
            Some("metrics") => {
                let data = v
                    .get("data")
                    .ok_or_else(|| format!("line {lineno}: metrics marker missing \"data\""))?;
                if data.get("counters").and_then(Json::as_obj).is_none() {
                    return Err(format!("line {lineno}: metrics block missing counters"));
                }
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                    if let Some(acked) = data
                        .get("counters")
                        .and_then(|c| c.get("packets_acked"))
                        .and_then(Json::as_u64)
                    {
                        let _ = writeln!(out, "  metrics: packets_acked={acked}");
                    }
                }
            }
            _ => {
                let record = TraceRecord::from_json(&v)
                    .map_err(|e| format!("line {lineno}: schema violation: {e}"))?;
                records_seen += 1;
                if let Some(fold) = cell.as_mut() {
                    fold.absorb(&record);
                } else {
                    return Err(format!("line {lineno}: record before any cell marker"));
                }
            }
        }
    }
    if let Some(done) = cell.take() {
        done.render(&mut out);
    }
    if check_only {
        return Ok(format!(
            "ok: {cells_seen} cells, {records_seen} records validated\n"
        ));
    }
    let _ = writeln!(out, "{cells_seen} cells, {records_seen} records");
    Ok(out)
}
