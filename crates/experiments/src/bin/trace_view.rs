//! Folds a `paper_grid --trace` document into per-node handshake
//! timelines, or validates it against the record schema. Reads both the
//! JSONL format and the CRC-framed binary format (`--trace-format bin`),
//! auto-detected from the leading bytes.
//!
//! ```text
//! trace_view grid_trace.jsonl            # human-readable per-cell fold
//! trace_view grid_trace.jsonl --check    # schema validation only (exit 0/1)
//! trace_view grid_trace.bin --check      # same, binary document
//! ```
//!
//! Diagnostics locate the first bad input precisely: `line L, byte B` for
//! JSONL (B is the absolute file offset of the corrupt character), the
//! frame's byte offset for binary documents — plus how many records
//! validated before the damage, so a torn tail is distinguishable from a
//! wholly corrupt file at a glance.
//!
//! Exit status: 0 on success, 1 on a schema violation, corrupt/truncated
//! input, or unreadable file, 2 on a usage error.

use dirca_experiments::wireio::sniff_binary;
use dirca_trace::wire::{self, kind};
use dirca_trace::{Json, RecordKind, TraceRecord};

fn main() {
    let mut path: Option<String> = None;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            flag if flag.starts_with("--") => {
                eprintln!("unrecognized flag {flag:?} (usage: trace_view <path> [--check])");
                std::process::exit(2);
            }
            positional => {
                if path.replace(positional.to_string()).is_some() {
                    eprintln!("expected exactly one input path");
                    std::process::exit(2);
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_view <path> [--check]");
        std::process::exit(2);
    };
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let result = if sniff_binary(&bytes) {
        process_bin(&bytes, check)
    } else {
        match std::str::from_utf8(&bytes) {
            Ok(text) => process(text, check),
            Err(e) => Err(format!(
                "byte {}: not UTF-8 text (and not a binary wire document)",
                e.valid_up_to()
            )),
        }
    };
    match result {
        // A plain `print!` panics on EPIPE when the fold is piped into
        // `head`; a failed write to a closed pipe is not an error here.
        Ok(report) => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(report.as_bytes());
        }
        Err(message) => {
            eprintln!("{path}: {message}");
            std::process::exit(1);
        }
    }
}

/// Per-node fold of one cell's records.
#[derive(Debug, Clone, Copy, Default)]
struct NodeFold {
    tx: [u64; 4], // indexed by FrameKind::ALL order: RTS, CTS, DATA, ACK
    rx: u64,
    corrupted: u64,
    backoff_draws: u64,
    timeouts: u64,
    nav_sets: u64,
    acked: u64,
    dropped: u64,
    faults: u64,
}

/// State of the cell currently being folded.
#[derive(Debug, Default)]
struct CellFold {
    header: String,
    nodes: Vec<NodeFold>,
    records: u64,
    first_ns: u64,
    last_ns: u64,
}

impl CellFold {
    fn absorb(&mut self, r: &TraceRecord) {
        let t = r.time.as_nanos();
        if self.records == 0 {
            self.first_ns = t;
        }
        self.last_ns = t;
        self.records += 1;
        let idx = r.node.0;
        if idx >= self.nodes.len() {
            self.nodes.resize(idx + 1, NodeFold::default());
        }
        let node = &mut self.nodes[idx];
        match r.kind {
            RecordKind::FrameTx { kind, .. } => {
                let slot = dirca_mac::FrameKind::ALL
                    .iter()
                    .position(|&k| k == kind)
                    .expect("FrameKind::ALL is exhaustive");
                node.tx[slot] += 1;
            }
            RecordKind::FrameRx { .. } => node.rx += 1,
            RecordKind::RxCorrupted => node.corrupted += 1,
            RecordKind::BackoffDraw { .. } => node.backoff_draws += 1,
            RecordKind::NavSet { .. } => node.nav_sets += 1,
            RecordKind::NavExpire => {}
            RecordKind::Timeout { .. } => node.timeouts += 1,
            RecordKind::PacketAcked => node.acked += 1,
            RecordKind::PacketDropped => node.dropped += 1,
            RecordKind::FaultCorrupt | RecordKind::FaultOutage => node.faults += 1,
        }
    }

    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        let span_s = (self.last_ns.saturating_sub(self.first_ns)) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{} — {} records over {span_s:.3} s",
            self.header, self.records
        );
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  node {i:>3}: tx rts={:<5} cts={:<5} data={:<5} ack={:<5} rx={:<6} \
                 corrupt={:<4} nav={:<5} backoff={:<5} timeouts={:<4} acked={:<5} \
                 dropped={:<3} faults={}",
                n.tx[0],
                n.tx[1],
                n.tx[2],
                n.tx[3],
                n.rx,
                n.corrupted,
                n.nav_sets,
                n.backoff_draws,
                n.timeouts,
                n.acked,
                n.dropped,
                n.faults,
            );
        }
    }
}

/// Validates `text` line by line; unless `check_only`, also folds it into
/// the human-readable per-cell report. Diagnostics carry `line L, byte B`
/// where B is the absolute file offset of the first corrupt character.
fn process(text: &str, check_only: bool) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut cell: Option<CellFold> = None;
    let mut cells_seen = 0u64;
    let mut records_seen = 0u64;
    let mut line_start = 0usize;
    for (lineno, raw) in text.split_inclusive('\n').enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim_end_matches('\n').trim_end_matches('\r');
        let start = line_start;
        line_start += raw.len();
        let at =
            move |offset_in_line: usize| format!("line {lineno}, byte {}", start + offset_in_line);
        let context = |records_seen: u64| {
            format!("({records_seen} records validated before the first bad input)")
        };
        let v = Json::parse(line).map_err(|e| {
            format!(
                "{}: corrupt or truncated record: {e} {}",
                at(e.offset),
                context(records_seen)
            )
        })?;
        if lineno == 1 {
            match v.get("schema").and_then(Json::as_str) {
                Some("dirca-trace/v1") => continue,
                Some(other) => return Err(format!("unsupported schema {other:?}")),
                None => return Err("line 1, byte 0: missing schema header".to_string()),
            }
        }
        match v.get("ev").and_then(Json::as_str) {
            Some("cell") => {
                cells_seen += 1;
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                }
                let n = v
                    .get("n")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{}: cell marker missing \"n\"", at(0)))?;
                let theta = v
                    .get("theta_deg")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("{}: cell marker missing \"theta_deg\"", at(0)))?;
                let scheme = v
                    .get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{}: cell marker missing \"scheme\"", at(0)))?;
                cell = Some(CellFold {
                    header: format!("cell N={n} theta={theta} {scheme}"),
                    ..CellFold::default()
                });
            }
            Some("metrics") => {
                let data = v
                    .get("data")
                    .ok_or_else(|| format!("{}: metrics marker missing \"data\"", at(0)))?;
                if data.get("counters").and_then(Json::as_obj).is_none() {
                    return Err(format!("{}: metrics block missing counters", at(0)));
                }
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                    if let Some(acked) = data
                        .get("counters")
                        .and_then(|c| c.get("packets_acked"))
                        .and_then(Json::as_u64)
                    {
                        let _ = writeln!(out, "  metrics: packets_acked={acked}");
                    }
                }
            }
            _ => {
                let record = TraceRecord::from_json(&v).map_err(|e| {
                    format!("{}: schema violation: {e} {}", at(0), context(records_seen))
                })?;
                records_seen += 1;
                if let Some(fold) = cell.as_mut() {
                    fold.absorb(&record);
                } else {
                    return Err(format!("{}: record before any cell marker", at(0)));
                }
            }
        }
    }
    if let Some(done) = cell.take() {
        done.render(&mut out);
    }
    if check_only {
        return Ok(format!(
            "ok: {cells_seen} cells, {records_seen} records validated\n"
        ));
    }
    let _ = writeln!(out, "{cells_seen} cells, {records_seen} records");
    Ok(out)
}

/// Validates a binary wire document frame by frame; unless `check_only`,
/// also folds it into the same per-cell report as the JSONL path. A
/// corrupt or truncated tail is reported with its byte offset and the
/// count of frames/records that validated before it.
fn process_bin(bytes: &[u8], check_only: bool) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut cell: Option<CellFold> = None;
    let mut cells_seen = 0u64;
    let mut records_seen = 0u64;
    let mut saw_header = false;
    for (idx, item) in wire::FrameDecoder::new(bytes).enumerate() {
        let frame = item.map_err(|e| {
            format!(
                "byte {}: corrupt or truncated frame: {e} \
                 ({idx} frames / {records_seen} records validated before the first bad input)",
                e.offset()
            )
        })?;
        let frames_seen = idx as u64 + 1;
        let bad = |what: &str| format!("frame {frames_seen} ({:#04x}): {what}", frame.kind);
        if !saw_header {
            if frame.kind != kind::TRACE_HEADER {
                return Err(bad("expected a TRACE_HEADER frame first"));
            }
            let mut r = wire::WireReader::new(&frame.payload);
            let _seed = r.take_u64().map_err(|e| bad(&e.to_string()))?;
            let _cells = r.take_u32().map_err(|e| bad(&e.to_string()))?;
            r.finish().map_err(|e| bad(&e.to_string()))?;
            saw_header = true;
            continue;
        }
        match frame.kind {
            kind::CELL_MARKER => {
                cells_seen += 1;
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                }
                let mut r = wire::WireReader::new(&frame.payload);
                let n = r.take_u64().map_err(|e| bad(&e.to_string()))?;
                let theta = r.take_f64().map_err(|e| bad(&e.to_string()))?;
                let scheme = wire::decode_scheme(r.take_u8().map_err(|e| bad(&e.to_string()))?, 0)
                    .map_err(|e| bad(&e.to_string()))?;
                let _topology = r.take_u32().map_err(|e| bad(&e.to_string()))?;
                r.finish().map_err(|e| bad(&e.to_string()))?;
                cell = Some(CellFold {
                    header: format!("cell N={n} theta={theta} {scheme:?}"),
                    ..CellFold::default()
                });
            }
            kind::METRICS => {
                let mut r = wire::WireReader::new(&frame.payload);
                let json = r.take_str().map_err(|e| bad(&e.to_string()))?;
                let data = Json::parse(json).map_err(|e| bad(&e.to_string()))?;
                if data.get("counters").and_then(Json::as_obj).is_none() {
                    return Err(bad("metrics block missing counters"));
                }
                if let Some(done) = cell.take() {
                    done.render(&mut out);
                    if let Some(acked) = data
                        .get("counters")
                        .and_then(|c| c.get("packets_acked"))
                        .and_then(Json::as_u64)
                    {
                        let _ = writeln!(out, "  metrics: packets_acked={acked}");
                    }
                }
            }
            kind::RECORD => {
                let record = wire::decode_record_payload(&frame.payload).map_err(|e| {
                    format!(
                        "{} ({records_seen} records validated before the first bad input)",
                        bad(&format!("schema violation: {e}"))
                    )
                })?;
                records_seen += 1;
                if let Some(fold) = cell.as_mut() {
                    fold.absorb(&record);
                } else {
                    return Err(bad("record before any cell marker"));
                }
            }
            _ => return Err(bad("unexpected frame kind in a trace document")),
        }
    }
    if !saw_header {
        return Err("empty document: no TRACE_HEADER frame".to_string());
    }
    if let Some(done) = cell.take() {
        done.render(&mut out);
    }
    if check_only {
        return Ok(format!(
            "ok: {cells_seen} cells, {records_seen} records validated\n"
        ));
    }
    let _ = writeln!(out, "{cells_seen} cells, {records_seen} records");
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use dirca_trace::wire::{encode_frame_into, WireWriter};

    fn jsonl_fixture() -> String {
        concat!(
            "{\"schema\":\"dirca-trace/v1\",\"seed\":7,\"cells\":1}\n",
            "{\"ev\":\"cell\",\"n\":3,\"theta_deg\":90,\"scheme\":\"OrtsOcts\",\"topology\":0}\n",
            "{\"t\":1000,\"node\":0,\"ev\":\"backoff_draw\",\"cw\":31,\"slots\":14}\n",
            "{\"t\":2000,\"node\":1,\"ev\":\"packet_acked\"}\n",
            "{\"ev\":\"metrics\",\"data\":{\"counters\":{\"packets_acked\":1}}}\n",
        )
        .to_string()
    }

    fn bin_fixture() -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = WireWriter::new();
        w.put_u64(7);
        w.put_u32(1);
        encode_frame_into(kind::TRACE_HEADER, &w.into_bytes(), &mut out);
        let mut w = WireWriter::new();
        w.put_u64(3);
        w.put_f64(90.0);
        w.put_u8(0);
        w.put_u32(0);
        encode_frame_into(kind::CELL_MARKER, &w.into_bytes(), &mut out);
        let record = TraceRecord {
            time: dirca_sim::SimTime::from_nanos(1000),
            node: dirca_radio::NodeId(0),
            kind: RecordKind::PacketAcked,
        };
        encode_frame_into(kind::RECORD, &wire::record_payload(&record), &mut out);
        let mut w = WireWriter::new();
        w.put_str("{\"counters\":{\"packets_acked\":1}}");
        encode_frame_into(kind::METRICS, &w.into_bytes(), &mut out);
        out
    }

    #[test]
    fn clean_jsonl_checks_and_folds() {
        let doc = jsonl_fixture();
        assert_eq!(
            process(&doc, true).unwrap(),
            "ok: 1 cells, 2 records validated\n"
        );
        let fold = process(&doc, false).unwrap();
        assert!(fold.contains("cell N=3 theta=90 OrtsOcts"));
        assert!(fold.contains("metrics: packets_acked=1"));
    }

    #[test]
    fn truncated_jsonl_reports_line_and_byte_of_the_tear() {
        let doc = jsonl_fixture();
        // Tear the file mid-way through the 4th line, as a crash mid-write
        // would: everything before the tear is intact.
        let cut = doc.match_indices('\n').nth(2).unwrap().0 + 1 + 20;
        let torn = &doc[..cut];
        let err = process(torn, true).unwrap_err();
        assert!(err.starts_with("line 4, byte "), "got: {err}");
        let byte: usize = err["line 4, byte ".len()..]
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let line4_start = doc.match_indices('\n').nth(2).unwrap().0 + 1;
        assert!(
            (line4_start..cut + 1).contains(&byte),
            "byte {byte} must point into the torn line (starts at {line4_start}, cut at {cut})"
        );
        assert!(err.contains("corrupt or truncated record"), "got: {err}");
        assert!(err.contains("1 records validated"), "got: {err}");
    }

    #[test]
    fn schema_violations_name_the_line_and_byte() {
        let mut doc = jsonl_fixture();
        doc = doc.replace(
            "\"ev\":\"backoff_draw\",\"cw\":31,",
            "\"ev\":\"backoff_draw\",",
        );
        let err = process(&doc, true).unwrap_err();
        assert!(err.starts_with("line 3, byte "), "got: {err}");
        assert!(err.contains("schema violation"), "got: {err}");
    }

    #[test]
    fn clean_binary_checks_and_folds() {
        let doc = bin_fixture();
        assert_eq!(
            process_bin(&doc, true).unwrap(),
            "ok: 1 cells, 1 records validated\n"
        );
        let fold = process_bin(&doc, false).unwrap();
        assert!(fold.contains("cell N=3 theta=90 OrtsOcts"));
        assert!(fold.contains("metrics: packets_acked=1"));
    }

    #[test]
    fn torn_binary_tail_reports_its_byte_offset() {
        let doc = bin_fixture();
        let torn = &doc[..doc.len() - 5];
        let err = process_bin(torn, true).unwrap_err();
        assert!(err.starts_with("byte "), "got: {err}");
        assert!(err.contains("corrupt or truncated frame"), "got: {err}");
        assert!(err.contains("3 frames / 1 records validated"), "got: {err}");
    }

    #[test]
    fn flipped_binary_byte_is_a_crc_diagnostic() {
        let mut doc = bin_fixture();
        let last = doc.len() - 8; // inside the METRICS payload
        doc[last] ^= 0x40;
        let err = process_bin(&doc, true).unwrap_err();
        assert!(err.contains("CRC mismatch"), "got: {err}");
    }
}
