//! E11 — MAC-mechanism ablations: EIFS, NAV-respect, and Ko-style omni
//! RTS fallback, isolated on the ring simulation.
//!
//! Usage: `mac_ablation [--quick] [--scheme drts-dcts] [--n 5] [--theta 30]
//!                      [--topologies 10] [--threads K]`

use dirca_experiments::cli::Flags;
use dirca_experiments::mac_ablation::{run_variants, standard_variants};
use dirca_experiments::table::{mean_range, Table};
use dirca_mac::Scheme;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let scheme: Scheme = flags
        .get("scheme")
        .unwrap_or("drts-dcts")
        .parse()
        .expect("valid scheme name");
    let n = flags.get_usize("n", 5);
    let theta = flags.get_f64("theta", 30.0);
    let topologies = flags.get_usize("topologies", if quick { 3 } else { 10 });
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    let outcomes = run_variants(scheme, n, theta, topologies, threads, &standard_variants());
    let mut t = Table::new(vec![
        "MAC variant".into(),
        "throughput".into(),
        "delay (ms)".into(),
        "collision ratio".into(),
    ]);
    for (label, out) in &outcomes {
        let fmt = |s: &dirca_stats::Summary, d: usize| match (s.mean(), s.min(), s.max()) {
            (Some(m), Some(lo), Some(hi)) => mean_range(m, lo, hi, d),
            _ => "n/a".into(),
        };
        t.row(vec![
            label.clone(),
            fmt(&out.throughput, 3),
            fmt(&out.delay_ms, 1),
            fmt(&out.collision_ratio, 3),
        ]);
    }
    println!(
        "MAC-mechanism ablation — {scheme}, N = {n}, θ = {theta}°, {topologies} topologies\n\n{}",
        t.render()
    );
}
