//! E7 — sensitivity of the analytical model's approximations: the paper's
//! DRTS-DCTS model vs a pessimistic Area-III exposure (θ' = 2θ) and vs
//! full-length failed handshakes.
//!
//! Usage: `ablation [--n 5]`

use dirca_analysis::ablation::ablation_table;
use dirca_analysis::sweep::paper_theta_grid;
use dirca_analysis::ProtocolTimes;
use dirca_experiments::cli::Flags;
use dirca_experiments::table::Table;

fn main() {
    let flags = Flags::from_env();
    let n = flags.get_f64("n", 5.0);
    let rows = ablation_table(ProtocolTimes::paper(), n, &paper_theta_grid());
    let mut t = Table::new(vec![
        "θ (deg)".into(),
        "paper model".into(),
        "θ' = 2θ".into(),
        "full-length failures".into(),
    ]);
    for row in &rows {
        t.row(vec![
            format!("{:.0}", row.theta_degrees),
            format!("{:.4}", row.paper),
            format!("{:.4}", row.wide_area_three),
            format!("{:.4}", row.full_length_failures),
        ]);
    }
    println!(
        "Ablation — DRTS-DCTS maximum throughput under model variants (N = {n})\n\n{}",
        t.render()
    );
}
