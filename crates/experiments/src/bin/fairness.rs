//! E6 — the fairness discussion of §4: Jain's index over the inner nodes'
//! throughputs, per scheme/beamwidth/density. The paper reports (without
//! figures) that wide beams with few competing nodes are much less fair.
//!
//! Usage: same flags as `fig6`.

use dirca_experiments::cli::Flags;
use dirca_experiments::report::{grid_report, GridScale, Metric};

fn main() {
    let scale = GridScale::from_flags(&Flags::from_env());
    println!(
        "{}",
        grid_report(
            "Jain fairness index over the inner N nodes' throughputs\n\
             (mean [min, max] over topologies; 1 = perfectly fair)",
            Metric::Jain,
            &scale,
        )
    );
}
