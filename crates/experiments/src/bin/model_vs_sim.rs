//! E14 — validation: the analytical optimum vs simulation on Poisson-field
//! topologies with a boundary-free measured core (the model's own
//! setting).
//!
//! Usage: `model_vs_sim [--quick] [--n 5] [--fields 12] [--threads K]`

use dirca_experiments::cli::Flags;
use dirca_experiments::model_vs_sim::compare;
use dirca_experiments::table::Table;
use dirca_sim::SimDuration;

fn main() {
    let flags = Flags::from_env();
    let quick = flags.has("quick");
    let n = flags.get_f64("n", 5.0);
    let fields = flags.get_usize("fields", if quick { 4 } else { 12 });
    let measure =
        SimDuration::from_millis(flags.get_u64("measure-ms", if quick { 1000 } else { 5000 }));
    let threads = flags.get_usize(
        "threads",
        std::thread::available_parallelism().map_or(4, |v| v.get()),
    );
    let cells = compare(n, &[30.0, 90.0, 150.0], fields, measure, 0x0E14, threads);
    let mut t = Table::new(vec![
        "θ (deg)".into(),
        "scheme".into(),
        "analysis (opt p)".into(),
        "simulation (per node)".into(),
    ]);
    for c in &cells {
        t.row(vec![
            format!("{:.0}", c.theta_degrees),
            c.scheme.to_string(),
            format!("{:.3}", c.analytical),
            c.simulated
                .mean()
                .map_or("n/a".into(), |m| format!("{m:.3}")),
        ]);
    }
    println!(
        "Analysis vs simulation on Poisson fields (N = {n}, core-measured, {fields} fields)\n\n{}",
        t.render()
    );
}
