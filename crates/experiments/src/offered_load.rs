//! E9 — extension: throughput and delay vs offered load.
//!
//! The paper evaluates only the saturated regime. This experiment sweeps a
//! Poisson per-node arrival rate on ring topologies and records carried
//! load and end-to-end delay, exposing the classic MAC load curve: linear
//! carry-through at light load, then saturation at each scheme's capacity
//! — with the directional schemes saturating later (their spatial-reuse
//! advantage) and keeping delay lower on the way up.

use crate::pool::parallel_indexed_catch;

use dirca_mac::Scheme;
use dirca_net::salts::{RUN_STREAM_SALT, TOPOLOGY_STREAM_SALT};
use dirca_net::{run, SimConfig, TrafficModel};
use dirca_sim::{rng::derive_seed, rng::stream_rng, SimDuration};
use dirca_stats::Summary;
use dirca_topology::RingSpec;

/// One point of the load sweep for one scheme.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load per node, packets per second.
    pub offered_pps: f64,
    /// Carried (acked) normalized throughput of the inner nodes.
    pub throughput: Summary,
    /// Mean end-to-end delay of delivered packets, milliseconds.
    pub e2e_delay_ms: Summary,
    /// Source-queue drops per topology.
    pub queue_drops: Summary,
    /// Topologies whose simulation panicked, with the panic text. The
    /// summaries above aggregate only the surviving topologies; callers
    /// should surface these (and exit nonzero) rather than trust a
    /// silently thinner sample.
    pub failed_topologies: Vec<(usize, String)>,
}

/// Configuration of the offered-load sweep.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Neighbourhood size `N` of the ring topologies.
    pub n_avg: usize,
    /// Beamwidth for the directional schemes, degrees.
    pub beamwidth_degrees: f64,
    /// Offered loads to evaluate, packets per second per node.
    pub rates_pps: Vec<f64>,
    /// Random topologies per point.
    pub topologies: usize,
    /// Master seed.
    pub seed: u64,
    /// Measurement window per topology.
    pub measure: SimDuration,
}

impl Default for LoadSweep {
    fn default() -> Self {
        LoadSweep {
            n_avg: 5,
            beamwidth_degrees: 30.0,
            rates_pps: vec![2.0, 5.0, 10.0, 20.0, 40.0, 80.0],
            topologies: 8,
            seed: 0x10AD,
            measure: SimDuration::from_secs(5),
        }
    }
}

/// Runs the sweep for `scheme`, spreading topologies over `threads`
/// workers, and returns one [`LoadPoint`] per rate.
pub fn run_sweep(scheme: Scheme, sweep: &LoadSweep, threads: usize) -> Vec<LoadPoint> {
    sweep
        .rates_pps
        .iter()
        .map(|&rate| run_point(scheme, sweep, rate, threads.max(1)))
        .collect()
}

fn run_point(scheme: Scheme, sweep: &LoadSweep, rate: f64, threads: usize) -> LoadPoint {
    let samples = parallel_indexed_catch(sweep.topologies, threads, |t| {
        let spec = RingSpec::paper(sweep.n_avg, 1.0);
        let mut topo_rng = stream_rng(derive_seed(sweep.seed, TOPOLOGY_STREAM_SALT), t as u64);
        let topology = spec.generate(&mut topo_rng).expect("topology generation");
        let config = SimConfig::new(scheme)
            .with_beamwidth_degrees(sweep.beamwidth_degrees)
            .with_seed(derive_seed(sweep.seed, RUN_STREAM_SALT + t as u64))
            .with_traffic(TrafficModel::Poisson {
                packets_per_sec: rate,
                max_queue: 32,
            })
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(sweep.measure);
        let result = run(&topology, &config);
        (
            result.aggregate_throughput_bps() / config.params.bit_rate_bps as f64,
            result.mean_e2e_delay(),
            result.queue_drops() as f64,
        )
    });
    let mut point = LoadPoint {
        offered_pps: rate,
        throughput: Summary::new(),
        e2e_delay_ms: Summary::new(),
        queue_drops: Summary::new(),
        failed_topologies: Vec::new(),
    };
    for outcome in samples {
        match outcome {
            Ok((throughput, delay, drops)) => {
                point.throughput.push(throughput);
                if let Some(d) = delay {
                    point.e2e_delay_ms.push(d.as_secs_f64() * 1e3);
                }
                point.queue_drops.push(drops);
            }
            Err(panic) => point.failed_topologies.push((panic.index, panic.message)),
        }
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadSweep {
        LoadSweep {
            rates_pps: vec![5.0, 60.0],
            topologies: 2,
            measure: SimDuration::from_secs(1),
            n_avg: 3,
            ..LoadSweep::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let points = run_sweep(Scheme::OrtsOcts, &tiny(), 2);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].offered_pps, 5.0);
        assert_eq!(points[0].throughput.count(), 2);
    }

    #[test]
    fn carried_load_increases_with_offered_load() {
        let points = run_sweep(Scheme::OrtsOcts, &tiny(), 2);
        let light = points[0].throughput.mean().unwrap();
        let heavy = points[1].throughput.mean().unwrap();
        assert!(heavy > light, "carried load must rise: {heavy} <= {light}");
    }

    #[test]
    fn delay_increases_with_offered_load() {
        let points = run_sweep(Scheme::OrtsOcts, &tiny(), 2);
        let light = points[0].e2e_delay_ms.mean().unwrap();
        let heavy = points[1].e2e_delay_ms.mean().unwrap();
        assert!(
            heavy > light,
            "delay must rise with load: {heavy} <= {light}"
        );
    }
}
