//! Minimal flag parsing shared by the experiment binaries.

use std::collections::BTreeMap;

/// Parsed command-line flags: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` (excluding the program name). A token starting with
    /// `--` followed by a token not starting with `--` is a key/value pair;
    /// otherwise it is a switch.
    ///
    /// # Example
    ///
    /// ```
    /// use dirca_experiments::cli::Flags;
    ///
    /// let f = Flags::parse(["--topologies", "10", "--quick"].iter().map(|s| s.to_string()));
    /// assert_eq!(f.get_usize("topologies", 50), 10);
    /// assert!(f.has("quick"));
    /// assert!(!f.has("verbose"));
    /// ```
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let tokens: Vec<String> = args.collect();
        let mut flags = Flags::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(name) = tok.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    flags.values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.switches.push(name.to_string());
            }
            i += 1;
        }
        flags
    }

    /// Parses the process's own arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether the bare switch `name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// `--name` parsed as `usize`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}")),
        }
    }

    /// `--name` parsed as `u64`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}")),
        }
    }

    /// `--name` parsed as `f64`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value does not parse.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = flags(&["--a", "1", "--quick", "--b", "2.5"]);
        assert_eq!(f.get_usize("a", 0), 1);
        assert!((f.get_f64("b", 0.0) - 2.5).abs() < 1e-12);
        assert!(f.has("quick"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let f = flags(&[]);
        assert_eq!(f.get_usize("n", 7), 7);
        assert_eq!(f.get_u64("seed", 9), 9);
        assert!((f.get_f64("x", 1.5) - 1.5).abs() < 1e-12);
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn adjacent_switches_both_register() {
        let f = flags(&["--quick", "--verbose"]);
        assert!(f.has("quick") && f.has("verbose"));
    }

    #[test]
    fn trailing_flag_is_switch() {
        let f = flags(&["--seed", "3", "--fast"]);
        assert_eq!(f.get_u64("seed", 0), 3);
        assert!(f.has("fast"));
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        flags(&["--n", "xyz"]).get_usize("n", 0);
    }
}
