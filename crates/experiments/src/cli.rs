//! Minimal flag parsing shared by the experiment binaries.
//!
//! Malformed values are a usage problem, not a program bug: the `try_get_*`
//! accessors surface them as a typed [`UsageError`], and the plain `get_*`
//! accessors (what the binaries call) print that error to stderr and exit
//! with status 2 — the conventional "bad command line" code — instead of
//! panicking with a backtrace.

use std::collections::BTreeMap;
use std::fmt;

/// A flag value that could not be parsed: `--{flag}` expected a `{expected}`
/// but got `{got}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    /// The flag name, without the leading `--`.
    pub flag: String,
    /// What kind of value the flag expects ("an integer", "a number").
    pub expected: &'static str,
    /// The malformed value as given.
    pub got: String,
}

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "usage error: --{} expects {}, got {:?}",
            self.flag, self.expected, self.got
        )
    }
}

impl std::error::Error for UsageError {}

impl UsageError {
    /// Prints the error to stderr and exits with status 2.
    pub fn exit(&self) -> ! {
        eprintln!("{self}");
        std::process::exit(2);
    }
}

/// Parsed command-line flags: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` (excluding the program name). A token starting with
    /// `--` followed by a token not starting with `--` is a key/value pair;
    /// otherwise it is a switch.
    ///
    /// # Example
    ///
    /// ```
    /// use dirca_experiments::cli::Flags;
    ///
    /// let f = Flags::parse(["--topologies", "10", "--quick"].iter().map(|s| s.to_string()));
    /// assert_eq!(f.get_usize("topologies", 50), 10);
    /// assert!(f.has("quick"));
    /// assert!(!f.has("verbose"));
    /// ```
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let tokens: Vec<String> = args.collect();
        let mut flags = Flags::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(name) = tok.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    flags.values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.switches.push(name.to_string());
            }
            i += 1;
        }
        flags
    }

    /// Parses the process's own arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether the bare switch `name` was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn try_parse<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, UsageError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError {
                flag: name.to_string(),
                expected,
                got: v.to_string(),
            }),
        }
    }

    /// `--name` parsed as `usize`, or `default`; a malformed value is a
    /// [`UsageError`].
    pub fn try_get_usize(&self, name: &str, default: usize) -> Result<usize, UsageError> {
        self.try_parse(name, default, "an integer")
    }

    /// `--name` parsed as `u64`, or `default`; a malformed value is a
    /// [`UsageError`].
    pub fn try_get_u64(&self, name: &str, default: u64) -> Result<u64, UsageError> {
        self.try_parse(name, default, "an integer")
    }

    /// `--name` parsed as `f64`, or `default`; a malformed value is a
    /// [`UsageError`].
    pub fn try_get_f64(&self, name: &str, default: f64) -> Result<f64, UsageError> {
        self.try_parse(name, default, "a number")
    }

    /// `--name` parsed as `usize`, or `default`. A malformed value prints a
    /// usage error to stderr and exits with status 2.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.try_get_usize(name, default)
            .unwrap_or_else(|e| e.exit())
    }

    /// `--name` parsed as `u64`, or `default`. A malformed value prints a
    /// usage error to stderr and exits with status 2.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.try_get_u64(name, default).unwrap_or_else(|e| e.exit())
    }

    /// `--name` parsed as `f64`, or `default`. A malformed value prints a
    /// usage error to stderr and exits with status 2.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.try_get_f64(name, default).unwrap_or_else(|e| e.exit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = flags(&["--a", "1", "--quick", "--b", "2.5"]);
        assert_eq!(f.get_usize("a", 0), 1);
        assert!((f.get_f64("b", 0.0) - 2.5).abs() < 1e-12);
        assert!(f.has("quick"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let f = flags(&[]);
        assert_eq!(f.get_usize("n", 7), 7);
        assert_eq!(f.get_u64("seed", 9), 9);
        assert!((f.get_f64("x", 1.5) - 1.5).abs() < 1e-12);
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn adjacent_switches_both_register() {
        let f = flags(&["--quick", "--verbose"]);
        assert!(f.has("quick") && f.has("verbose"));
    }

    #[test]
    fn trailing_flag_is_switch() {
        let f = flags(&["--seed", "3", "--fast"]);
        assert_eq!(f.get_u64("seed", 0), 3);
        assert!(f.has("fast"));
    }

    #[test]
    fn bad_integer_is_a_usage_error() {
        let err = flags(&["--n", "xyz"])
            .try_get_usize("n", 0)
            .expect_err("xyz is not an integer");
        assert_eq!(err.flag, "n");
        assert_eq!(err.expected, "an integer");
        assert_eq!(err.got, "xyz");
        assert_eq!(
            err.to_string(),
            "usage error: --n expects an integer, got \"xyz\""
        );
    }

    #[test]
    fn bad_u64_and_f64_are_usage_errors() {
        let f = flags(&["--seed", "-1", "--rate", "fast"]);
        assert!(f.try_get_u64("seed", 0).is_err(), "u64 rejects negatives");
        let err = f.try_get_f64("rate", 0.0).expect_err("not a number");
        assert_eq!(err.expected, "a number");
        assert_eq!(err.got, "fast");
    }

    #[test]
    fn try_getters_default_when_missing() {
        let f = flags(&[]);
        assert_eq!(f.try_get_usize("n", 7), Ok(7));
        assert_eq!(f.try_get_u64("seed", 9), Ok(9));
        assert_eq!(f.try_get_f64("x", 1.5), Ok(1.5));
    }
}
