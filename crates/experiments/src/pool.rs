//! Deterministic fork-join helper for experiment sweeps.
//!
//! Experiment cells fan independent per-topology simulations out over a
//! small thread pool. Aggregating floating-point summaries in
//! thread-completion order would make the final statistics depend on the
//! scheduler (f64 addition is not associative), so workers return indexed
//! samples and the caller folds them in index order — results are
//! byte-identical for any `threads` value.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(i)` for every `i in 0..count` across up to `threads` workers
/// and returns the results in index order, independent of thread
/// scheduling.
///
/// # Panics
///
/// Propagates panics from `job`.
pub(crate) fn parallel_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = job(i);
                slots
                    .lock()
                    .expect("a sibling worker panicked while aggregating")
                    .push((i, value));
            });
        }
    });
    let mut slots = slots
        .into_inner()
        .expect("a worker panicked while aggregating");
    slots.sort_by_key(|&(i, _)| i);
    slots.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_indexed;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let got = parallel_indexed(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_count_yields_empty() {
        let got: Vec<u32> = parallel_indexed(0, 4, |_| unreachable!("no work"));
        assert!(got.is_empty());
    }
}
