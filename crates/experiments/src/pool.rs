//! Deterministic fork-join helper for experiment sweeps.
//!
//! Experiment cells fan independent per-topology simulations out over a
//! small thread pool. Aggregating floating-point summaries in
//! thread-completion order would make the final statistics depend on the
//! scheduler (f64 addition is not associative), so workers deposit results
//! into pre-sized per-index slots and the caller reads them out in index
//! order — results are byte-identical for any `threads` value.
//!
//! Each index has its own slot lock, so workers writing different results
//! never contend with each other (the old design funnelled every result
//! through one shared `Mutex<Vec<_>>` and sorted at the end).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(i)` for every `i in 0..count` across up to `threads` workers
/// and returns the results in index order, independent of thread
/// scheduling.
///
/// # Panics
///
/// Propagates panics from `job`.
pub(crate) fn parallel_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    let next = AtomicUsize::new(0);
    // One slot per index: each is written exactly once, by whichever worker
    // claimed that index, so the per-slot locks are uncontended.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = job(i);
                *slots[i].lock().expect("slot writer never panics mid-store") = Some(value);
            });
        }
    });
    // A job panic propagates out of the scope above, so reaching this point
    // means every claimed index stored its value.
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("a worker panicked while storing its result")
                .expect("every index below count is claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_indexed;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let got = parallel_indexed(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_count_yields_empty() {
        let got: Vec<u32> = parallel_indexed(0, 4, |_| unreachable!("no work"));
        assert!(got.is_empty());
    }

    #[test]
    fn large_fanout_fills_every_slot_in_order() {
        let got = parallel_indexed(1000, 8, |i| i);
        assert_eq!(got.len(), 1000);
        assert!(got.iter().enumerate().all(|(want, &i)| i == want));
    }

    #[test]
    fn non_clone_results_are_moved_through_slots() {
        // Results only need `Send`: the slots move values, never clone them.
        struct NotClone(usize);
        let got = parallel_indexed(10, 3, NotClone);
        assert!(got.iter().enumerate().all(|(want, v)| v.0 == want));
    }
}
