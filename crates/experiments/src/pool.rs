//! Deterministic fork-join helper for experiment sweeps.
//!
//! Experiment cells fan independent per-topology simulations out over a
//! small thread pool. Aggregating floating-point summaries in
//! thread-completion order would make the final statistics depend on the
//! scheduler (f64 addition is not associative), so workers deposit results
//! into pre-sized per-index slots and the caller reads them out in index
//! order — results are byte-identical for any `threads` value.
//!
//! Each index has its own slot lock, so workers writing different results
//! never contend with each other, and each job runs under
//! [`catch_unwind`]: one panicking cell is reported as a failed index
//! instead of poisoning its slot and crashing the whole sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One indexed job panicked; the panic payload is captured as text so the
/// caller can report or retry the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JobPanic {
    /// Which work index failed.
    pub index: usize,
    /// The stringified panic payload.
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `job(i)` for every `i in 0..count` across up to `threads` workers
/// and returns per-index outcomes in index order, independent of thread
/// scheduling. A panicking job yields `Err(JobPanic)` for its index; the
/// remaining indices still run to completion.
///
/// Jobs must not leave shared state half-mutated when they panic: the
/// callers here hand each job read-only experiment parameters and collect
/// pure results, which is what makes the unwind boundary sound.
pub(crate) fn parallel_indexed_catch<T, F>(
    count: usize,
    threads: usize,
    job: F,
) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    let next = AtomicUsize::new(0);
    // One slot per index: each is written exactly once, by whichever worker
    // claimed that index, so the per-slot locks are uncontended.
    let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| job(i))).map_err(|payload| JobPanic {
                        index: i,
                        message: panic_message(payload),
                    });
                // The store itself cannot panic (the job already ran), so
                // the slot lock is never poisoned.
                *slots[i].lock().expect("slot writer never panics mid-store") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot writer never panics mid-store")
                .expect("every index below count is claimed exactly once")
        })
        .collect()
}

/// Runs `job(i)` for every `i in 0..count` and returns the results in
/// index order, independent of thread scheduling.
///
/// # Panics
///
/// Re-raises the first (lowest-index) job panic, with the index attached.
/// Callers that need to survive failures use
/// [`parallel_indexed_catch`] instead.
pub(crate) fn parallel_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_indexed_catch(count, threads, job)
        .into_iter()
        .map(|outcome| {
            outcome.unwrap_or_else(|failure| {
                panic!("job {} panicked: {}", failure.index, failure.message)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{parallel_indexed, parallel_indexed_catch};

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let got = parallel_indexed(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_count_yields_empty() {
        let got: Vec<u32> = parallel_indexed(0, 4, |_| unreachable!("no work"));
        assert!(got.is_empty());
    }

    #[test]
    fn large_fanout_fills_every_slot_in_order() {
        let got = parallel_indexed(1000, 8, |i| i);
        assert_eq!(got.len(), 1000);
        assert!(got.iter().enumerate().all(|(want, &i)| i == want));
    }

    #[test]
    fn non_clone_results_are_moved_through_slots() {
        // Results only need `Send`: the slots move values, never clone them.
        struct NotClone(usize);
        let got = parallel_indexed(10, 3, NotClone);
        assert!(got.iter().enumerate().all(|(want, v)| v.0 == want));
    }

    #[test]
    fn panicking_index_is_isolated() {
        for threads in [1, 2, 8] {
            let got = parallel_indexed_catch(10, threads, |i| {
                assert!(i != 4, "index four is cursed");
                i * 10
            });
            assert_eq!(got.len(), 10);
            for (i, outcome) in got.iter().enumerate() {
                if i == 4 {
                    let failure = outcome.as_ref().expect_err("index 4 must fail");
                    assert_eq!(failure.index, 4);
                    assert!(failure.message.contains("cursed"), "{}", failure.message);
                } else {
                    assert_eq!(*outcome.as_ref().expect("healthy index"), i * 10);
                }
            }
        }
    }

    #[test]
    fn all_indices_can_fail_without_crashing() {
        let got: Vec<Result<(), _>> = parallel_indexed_catch(5, 2, |i| panic!("boom {i}"));
        assert!(got.iter().enumerate().all(|(i, r)| {
            r.as_ref()
                .is_err_and(|f| f.index == i && f.message == format!("boom {i}"))
        }));
    }

    #[test]
    fn string_panic_payloads_are_captured() {
        let got: Vec<Result<(), _>> =
            parallel_indexed_catch(1, 1, |_| std::panic::panic_any("plain str".to_owned()));
        assert_eq!(got[0].as_ref().unwrap_err().message, "plain str");
    }

    #[test]
    #[should_panic(expected = "job 3 panicked: deliberate")]
    fn legacy_wrapper_reraises_lowest_failed_index() {
        parallel_indexed(8, 2, |i| {
            assert!(i < 3, "deliberate");
        });
    }
}
