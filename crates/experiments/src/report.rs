//! Shared reporting over the Figs. 6/7 simulation grid.

use dirca_mac::Scheme;
use dirca_sim::SimDuration;
use dirca_stats::Summary;

use crate::cli::{Flags, UsageError};
use crate::ringsim::{run_cell, RingExperiment, RingOutcome};
use crate::table::{mean_range, Table};

/// Which per-cell metric a report renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fig. 6: normalized aggregate throughput of the inner nodes.
    Throughput,
    /// Fig. 7: mean MAC service delay in milliseconds.
    DelayMs,
    /// §4: collision ratio.
    CollisionRatio,
    /// §4: Jain fairness index.
    Jain,
}

impl Metric {
    fn pick(self, outcome: &RingOutcome) -> &Summary {
        match self {
            Metric::Throughput => &outcome.throughput,
            Metric::DelayMs => &outcome.delay_ms,
            Metric::CollisionRatio => &outcome.collision_ratio,
            Metric::Jain => &outcome.jain,
        }
    }

    fn decimals(self) -> usize {
        match self {
            Metric::Throughput | Metric::CollisionRatio | Metric::Jain => 3,
            Metric::DelayMs => 1,
        }
    }
}

/// Scale parameters for a grid run, derived from command-line flags.
#[derive(Debug, Clone)]
pub struct GridScale {
    /// Topologies per cell.
    pub topologies: usize,
    /// Measurement window per topology.
    pub measure: SimDuration,
    /// Warm-up window per topology.
    pub warmup: SimDuration,
    /// Worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Densities to sweep.
    pub densities: Vec<usize>,
    /// Beamwidths (degrees) to sweep.
    pub beamwidths: Vec<f64>,
    /// I.i.d. frame error rate injected in every cell; `0.0` (the
    /// default) keeps the fault layer trivial and the run byte-identical
    /// to a plan-free grid.
    pub fer: f64,
}

impl GridScale {
    /// Builds the scale from flags: `--quick` shrinks everything;
    /// `--topologies`, `--measure-ms`, `--threads`, `--seed`, `--n`
    /// override individual knobs. A malformed value prints a usage error to
    /// stderr and exits with status 2.
    pub fn from_flags(flags: &Flags) -> Self {
        Self::try_from_flags(flags).unwrap_or_else(|e| e.exit())
    }

    /// Like [`GridScale::from_flags`], but surfaces malformed values as a
    /// [`UsageError`] instead of exiting.
    pub fn try_from_flags(flags: &Flags) -> Result<Self, UsageError> {
        let quick = flags.has("quick");
        let topologies = flags.try_get_usize("topologies", if quick { 4 } else { 50 })?;
        let measure_ms = flags.try_get_u64("measure-ms", if quick { 1_000 } else { 10_000 })?;
        let warmup_ms = flags.try_get_u64("warmup-ms", if quick { 100 } else { 500 })?;
        let threads = flags.try_get_usize(
            "threads",
            std::thread::available_parallelism().map_or(4, |n| n.get()),
        )?;
        let densities = match flags.get("n") {
            Some(_) => vec![flags.try_get_usize("n", 0)?],
            None => vec![3, 5, 8],
        };
        let beamwidths = match flags.get("theta") {
            Some(_) => vec![flags.try_get_f64("theta", 0.0)?],
            None => vec![30.0, 90.0, 150.0],
        };
        let fer = flags.try_get_f64("fer", 0.0)?;
        if !(0.0..1.0).contains(&fer) {
            return Err(UsageError {
                flag: "fer".to_string(),
                expected: "a frame error rate in [0, 1)",
                got: format!("{fer}"),
            });
        }
        Ok(GridScale {
            topologies,
            measure: SimDuration::from_millis(measure_ms),
            warmup: SimDuration::from_millis(warmup_ms),
            threads,
            seed: flags.try_get_u64("seed", 0xD1CA)?,
            densities,
            beamwidths,
            fer,
        })
    }

    /// Instantiates one cell at this scale.
    pub fn cell(&self, scheme: Scheme, n_avg: usize, theta: f64) -> RingExperiment {
        RingExperiment {
            scheme,
            n_avg,
            beamwidth_degrees: theta,
            topologies: self.topologies,
            seed: self.seed,
            warmup: self.warmup,
            measure: self.measure,
            reception: dirca_radio::ReceptionMode::Omni,
            mac: dirca_mac::MacConfig::default(),
            // At fer = 0 the plan is trivial: the fault layer consumes no
            // RNG draws and the cell stays byte-identical to a plan-free
            // run (the golden-hash battery in dirca-net pins this).
            fault: dirca_net::FaultPlan::default().with_frame_error_rate(self.fer),
        }
    }
}

/// Runs the grid and renders `metric` as one table per density, matching
/// the layout of the paper's Figs. 6/7 panels.
pub fn grid_report(title: &str, metric: Metric, scale: &GridScale) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n\n");
    for &n in &scale.densities {
        let mut t = Table::new(vec![
            format!("N={n}, θ (deg)"),
            "ORTS-OCTS".into(),
            "DRTS-DCTS".into(),
            "DRTS-OCTS".into(),
        ]);
        for &theta in &scale.beamwidths {
            let mut cells = vec![format!("{theta:.0}")];
            for scheme in Scheme::ALL {
                let outcome = run_cell(&scale.cell(scheme, n, theta), scale.threads);
                let s = metric.pick(&outcome);
                let text = match (s.mean(), s.min(), s.max()) {
                    (Some(m), Some(lo), Some(hi)) => mean_range(m, lo, hi, metric.decimals()),
                    _ => "n/a".into(),
                };
                cells.push(text);
            }
            t.row(cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Runs the grid **once** and renders every metric (Fig. 6 throughput,
/// Fig. 7 delay, collision ratio, fairness) from the same simulation runs
/// — four reports for the price of one grid pass.
pub fn combined_report(scale: &GridScale) -> String {
    // Run all cells first.
    let mut outcomes: Vec<(usize, f64, Scheme, RingOutcome)> = Vec::new();
    for &n in &scale.densities {
        for &theta in &scale.beamwidths {
            for scheme in Scheme::ALL {
                let outcome = run_cell(&scale.cell(scheme, n, theta), scale.threads);
                outcomes.push((n, theta, scheme, outcome));
            }
        }
    }
    render_combined(scale, &outcomes)
}

/// Renders the four metric sections from precomputed cell outcomes. Cells
/// absent from `outcomes` (e.g. ones that failed under the fault-tolerant
/// runner) render as `n/a`, so a partial grid still reports cleanly. The
/// text is identical to [`combined_report`]'s for a complete grid — which
/// is what makes a resumed run's report comparable to an uninterrupted
/// one.
pub fn render_combined(
    scale: &GridScale,
    outcomes: &[(usize, f64, Scheme, RingOutcome)],
) -> String {
    let mut out = String::new();
    let sections = [
        (
            "Fig. 6 — throughput of the inner N nodes, normalized to the 2 Mbps channel",
            Metric::Throughput,
        ),
        (
            "Fig. 7 — mean MAC delay (ms) of the inner N nodes",
            Metric::DelayMs,
        ),
        (
            "Collision ratio — ACK-timeout handshakes / handshakes reaching the data stage",
            Metric::CollisionRatio,
        ),
        ("Jain fairness index over the inner N nodes", Metric::Jain),
    ];
    for (title, metric) in sections {
        out.push_str(title);
        out.push_str("\n(mean [min, max] over topologies)\n\n");
        for &n in &scale.densities {
            let mut t = Table::new(vec![
                format!("N={n}, θ (deg)"),
                "ORTS-OCTS".into(),
                "DRTS-DCTS".into(),
                "DRTS-OCTS".into(),
            ]);
            for &theta in &scale.beamwidths {
                let mut cells = vec![format!("{theta:.0}")];
                for scheme in Scheme::ALL {
                    let outcome = outcomes
                        .iter()
                        // Beamwidths are copied verbatim from the scale
                        // config, so bitwise equality is the right key
                        // comparison here.
                        .find(|(on, ot, os, _)| {
                            *on == n && ot.to_bits() == theta.to_bits() && *os == scheme
                        })
                        .map(|(_, _, _, o)| o);
                    let text = match outcome {
                        Some(o) => {
                            let s = metric.pick(o);
                            match (s.mean(), s.min(), s.max()) {
                                (Some(m), Some(lo), Some(hi)) => {
                                    mean_range(m, lo, hi, metric.decimals())
                                }
                                _ => "n/a".into(),
                            }
                        }
                        None => "n/a".into(),
                    };
                    cells.push(text);
                }
                t.row(cells);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> GridScale {
        GridScale {
            topologies: 1,
            measure: SimDuration::from_millis(300),
            warmup: SimDuration::from_millis(50),
            threads: 2,
            seed: 7,
            densities: vec![3],
            beamwidths: vec![90.0],
            fer: 0.0,
        }
    }

    #[test]
    fn grid_report_renders_all_schemes() {
        let text = grid_report("test", Metric::Throughput, &tiny_scale());
        assert!(text.contains("ORTS-OCTS"));
        assert!(text.contains("N=3"));
        assert!(text.contains('['), "range formatting missing");
    }

    #[test]
    fn scale_from_flags_quick() {
        let flags = Flags::parse(["--quick".to_string()].into_iter());
        let scale = GridScale::from_flags(&flags);
        assert_eq!(scale.topologies, 4);
        assert_eq!(scale.measure, SimDuration::from_millis(1_000));
        assert_eq!(scale.densities, vec![3, 5, 8]);
    }

    #[test]
    fn scale_from_flags_overrides() {
        let flags = Flags::parse(
            [
                "--topologies",
                "2",
                "--n",
                "5",
                "--theta",
                "30",
                "--seed",
                "1",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        let scale = GridScale::from_flags(&flags);
        assert_eq!(scale.topologies, 2);
        assert_eq!(scale.densities, vec![5]);
        assert_eq!(scale.beamwidths, vec![30.0]);
        assert_eq!(scale.seed, 1);
    }

    #[test]
    fn scale_from_flags_rejects_malformed_values() {
        let flags = Flags::parse(["--theta", "wide"].iter().map(|s| s.to_string()));
        let err = GridScale::try_from_flags(&flags).expect_err("wide is not a number");
        assert_eq!(err.flag, "theta");
        let flags = Flags::parse(["--n", "many"].iter().map(|s| s.to_string()));
        assert!(GridScale::try_from_flags(&flags).is_err());
        for bad_fer in ["1.0", "-0.1", "NaN"] {
            let flags = Flags::parse(["--fer", bad_fer].iter().map(|s| s.to_string()));
            let err = GridScale::try_from_flags(&flags).expect_err("fer outside [0, 1)");
            assert_eq!(err.flag, "fer");
        }
        let flags = Flags::parse(["--fer", "0.25"].iter().map(|s| s.to_string()));
        assert_eq!(GridScale::try_from_flags(&flags).unwrap().fer, 0.25);
    }

    #[test]
    fn metric_decimals_and_pick() {
        let outcome = RingOutcome::default();
        assert_eq!(Metric::DelayMs.decimals(), 1);
        assert_eq!(Metric::Throughput.pick(&outcome).count(), 0);
    }
}
