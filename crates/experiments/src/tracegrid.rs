//! Structured trace export over the paper grid (compiled only with the
//! `trace` feature).
//!
//! [`render_grid_trace`] re-runs topology 0 of every `(N, θ, scheme)` cell
//! of a [`GridScale`] with the ring recorder attached and folds the runs
//! into one JSONL document:
//!
//! ```text
//! {"schema":"dirca-trace/v1","seed":53706,"cells":27}
//! {"ev":"cell","n":3,"theta_deg":30,"scheme":"OrtsOcts","topology":0}
//! {"t":12000,"node":0,"ev":"backoff_draw","cw":31,"slots":14}
//! ...                                  (one line per trace record)
//! {"ev":"metrics","data":{"counters":{...},"gauges":{...},"histograms":{...}}}
//! {"ev":"cell", ...}                   (next cell)
//! ```
//!
//! The header and `"ev":"cell"` / `"ev":"metrics"` marker lines carry no
//! `t` field, which is how consumers (and `trace_view --check`) tell them
//! apart from trace records. Everything here is deterministic: same scale
//! and seed, same bytes.

use std::fmt::Write as _;

use dirca_mac::Scheme;
use dirca_net::trace::{metrics_snapshot, run_traced};

use crate::report::GridScale;
use crate::ringsim::topology_config;

/// Ring-buffer capacity per traced cell run: 64 Ki records (~3 MB) keeps
/// the full record stream of a `--quick` cell and the tail of a paper-scale
/// one.
pub const TRACE_CAPACITY: usize = 1 << 16;

/// Renders the grid's JSONL trace document (see the module docs for the
/// layout). Runs one traced simulation per cell, so expect `--quick`-scale
/// inputs; the paper scale works but takes the full grid runtime.
pub fn render_grid_trace(scale: &GridScale) -> String {
    let cells: Vec<(usize, f64, Scheme)> = scale
        .densities
        .iter()
        .flat_map(|&n| {
            scale
                .beamwidths
                .iter()
                .flat_map(move |&theta| Scheme::ALL.into_iter().map(move |s| (n, theta, s)))
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"dirca-trace/v1\",\"seed\":{},\"cells\":{}}}",
        scale.seed,
        cells.len()
    );
    for (n, theta, scheme) in cells {
        let _ = writeln!(
            out,
            "{{\"ev\":\"cell\",\"n\":{n},\"theta_deg\":{theta},\"scheme\":\"{scheme:?}\",\"topology\":0}}"
        );
        let experiment = scale.cell(scheme, n, theta);
        let (topology, config) = topology_config(&experiment, 0);
        let (result, trace) = run_traced(&topology, &config, TRACE_CAPACITY);
        out.push_str(&trace.to_jsonl());
        let _ = writeln!(
            out,
            "{{\"ev\":\"metrics\",\"data\":{}}}",
            metrics_snapshot(&result, None).to_json()
        );
    }
    out
}

/// Renders the grid trace and writes it to `path`.
pub fn export_grid_trace(scale: &GridScale, path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_grid_trace(scale))
}

/// Renders the grid trace as a CRC-framed binary document — the same
/// cells, records, and metrics as [`render_grid_trace`], but encoded with
/// `dirca_trace::wire`: a `TRACE_HEADER` frame (seed, cell count), then
/// per cell a `CELL_MARKER` frame (n, θ, scheme, topology), one `RECORD`
/// frame per trace record, and a `METRICS` frame carrying the metrics
/// snapshot as JSON text. Deterministic: same scale and seed, same bytes.
pub fn render_grid_trace_bin(scale: &GridScale) -> Vec<u8> {
    use dirca_trace::wire::{encode_frame_into, encode_scheme, kind, record_payload, WireWriter};
    let cells: Vec<(usize, f64, Scheme)> = scale
        .densities
        .iter()
        .flat_map(|&n| {
            scale
                .beamwidths
                .iter()
                .flat_map(move |&theta| Scheme::ALL.into_iter().map(move |s| (n, theta, s)))
        })
        .collect();
    let mut out = Vec::new();
    let mut w = WireWriter::new();
    w.put_u64(scale.seed);
    w.put_u32(cells.len() as u32);
    encode_frame_into(kind::TRACE_HEADER, &w.into_bytes(), &mut out);
    for (n, theta, scheme) in cells {
        let mut w = WireWriter::new();
        w.put_u64(n as u64);
        w.put_f64(theta);
        w.put_u8(encode_scheme(scheme));
        w.put_u32(0); // topology index
        encode_frame_into(kind::CELL_MARKER, &w.into_bytes(), &mut out);
        let experiment = scale.cell(scheme, n, theta);
        let (topology, config) = topology_config(&experiment, 0);
        let (result, trace) = run_traced(&topology, &config, TRACE_CAPACITY);
        for record in trace.iter() {
            encode_frame_into(kind::RECORD, &record_payload(record), &mut out);
        }
        let mut w = WireWriter::new();
        w.put_str(&metrics_snapshot(&result, None).to_json());
        encode_frame_into(kind::METRICS, &w.into_bytes(), &mut out);
    }
    out
}

/// Renders the binary grid trace and writes it to `path`.
pub fn export_grid_trace_bin(scale: &GridScale, path: &str) -> std::io::Result<()> {
    std::fs::write(path, render_grid_trace_bin(scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirca_net::trace::{Json, TraceRecord};
    use dirca_sim::SimDuration;

    fn tiny_scale() -> GridScale {
        GridScale {
            topologies: 1,
            measure: SimDuration::from_millis(200),
            warmup: SimDuration::from_millis(50),
            threads: 1,
            seed: 7,
            densities: vec![3],
            beamwidths: vec![90.0],
            fer: 0.0,
        }
    }

    #[test]
    fn document_layout_is_well_formed() {
        let doc = render_grid_trace(&tiny_scale());
        let mut lines = doc.lines();
        let header = Json::parse(lines.next().expect("header")).expect("header is JSON");
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some("dirca-trace/v1")
        );
        assert_eq!(header.get("cells").and_then(Json::as_u64), Some(3));
        let mut cell_lines = 0;
        let mut metrics_lines = 0;
        let mut records = 0;
        for line in lines {
            let v = Json::parse(line).expect("every line is JSON");
            match v.get("ev").and_then(Json::as_str) {
                Some("cell") => {
                    cell_lines += 1;
                    assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
                }
                Some("metrics") => {
                    metrics_lines += 1;
                    assert!(v.get("data").and_then(Json::as_obj).is_some());
                }
                _ => {
                    TraceRecord::from_json(&v).expect("record lines match the schema");
                    records += 1;
                }
            }
        }
        assert_eq!(cell_lines, 3, "one marker per scheme");
        assert_eq!(metrics_lines, 3, "one metrics block per scheme");
        assert!(
            records > 100,
            "cells must contribute records, got {records}"
        );
    }

    #[test]
    fn export_is_deterministic() {
        let scale = tiny_scale();
        assert_eq!(render_grid_trace(&scale), render_grid_trace(&scale));
    }

    #[test]
    fn binary_document_mirrors_the_jsonl_layout() {
        use dirca_trace::wire::{decode_record_payload, kind, WireReader};
        let scale = tiny_scale();
        let doc = render_grid_trace_bin(&scale);
        assert_eq!(doc, render_grid_trace_bin(&scale), "deterministic bytes");
        let (frames, err) = dirca_trace::wire::decode_all(&doc);
        assert_eq!(err, None, "renderer emits only intact frames");

        assert_eq!(frames[0].kind, kind::TRACE_HEADER);
        let mut r = WireReader::new(&frames[0].payload);
        assert_eq!(r.take_u64().unwrap(), scale.seed);
        assert_eq!(r.take_u32().unwrap(), 3, "one cell per scheme");
        r.finish().unwrap();

        let mut cells = 0;
        let mut metrics = 0;
        let mut records = 0;
        for frame in &frames[1..] {
            match frame.kind {
                kind::CELL_MARKER => {
                    cells += 1;
                    let mut r = WireReader::new(&frame.payload);
                    assert_eq!(r.take_u64().unwrap(), 3, "n");
                    assert_eq!(r.take_f64().unwrap(), 90.0, "theta");
                    let _scheme = r.take_u8().unwrap();
                    assert_eq!(r.take_u32().unwrap(), 0, "topology");
                    r.finish().unwrap();
                }
                kind::METRICS => {
                    metrics += 1;
                    let mut r = WireReader::new(&frame.payload);
                    let json = r.take_str().unwrap();
                    assert!(Json::parse(json)
                        .expect("metrics payload is JSON")
                        .get("counters")
                        .is_some());
                    r.finish().unwrap();
                }
                kind::RECORD => {
                    decode_record_payload(&frame.payload).expect("record decodes");
                    records += 1;
                }
                other => panic!("unexpected frame kind {other:#04x}"),
            }
        }
        assert_eq!(cells, 3);
        assert_eq!(metrics, 3);
        assert!(
            records > 100,
            "cells must contribute records, got {records}"
        );

        // The density claim documented in EXPERIMENTS.md: the binary twin
        // of the same grid is strictly smaller than the JSONL rendering.
        assert!(doc.len() < render_grid_trace(&scale).len());
    }
}
