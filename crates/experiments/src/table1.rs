//! E2 — Table 1: the IEEE 802.11 DSSS protocol configuration.

use dirca_mac::Dot11Params;

use crate::table::Table;

/// Renders Table 1 together with the airtimes derived from it (the derived
/// values are what the simulator actually uses, so printing both makes the
/// configuration auditable against the paper).
pub fn render() -> String {
    let p = Dot11Params::dsss_2mbps();
    let mut t = Table::new(vec!["parameter".into(), "value".into()]);
    t.row(vec!["RTS".into(), format!("{} B", p.rts_bytes)]);
    t.row(vec!["CTS".into(), format!("{} B", p.cts_bytes)]);
    t.row(vec!["data".into(), format!("{} B", p.data_bytes)]);
    t.row(vec!["ACK".into(), format!("{} B", p.ack_bytes)]);
    t.row(vec!["DIFS".into(), format!("{}", p.difs)]);
    t.row(vec!["SIFS".into(), format!("{}", p.sifs)]);
    t.row(vec![
        "contention window".into(),
        format!("{}–{}", p.cw_min, p.cw_max),
    ]);
    t.row(vec!["slot time".into(), format!("{}", p.slot)]);
    t.row(vec!["sync. time".into(), format!("{}", p.sync)]);
    t.row(vec![
        "prop. delay".into(),
        format!("{}", p.propagation_delay),
    ]);
    t.row(vec![
        "raw bit rate".into(),
        format!("{} Mbps", p.bit_rate_bps / 1_000_000),
    ]);

    let mut derived = Table::new(vec!["derived airtime".into(), "value".into()]);
    derived.row(vec![
        "RTS on air".into(),
        format!("{}", p.frame_airtime_bytes(p.rts_bytes)),
    ]);
    derived.row(vec![
        "CTS/ACK on air".into(),
        format!("{}", p.frame_airtime_bytes(p.cts_bytes)),
    ]);
    derived.row(vec![
        "data on air".into(),
        format!("{}", p.frame_airtime_bytes(p.data_bytes)),
    ]);
    derived.row(vec!["EIFS".into(), format!("{}", p.eifs())]);
    derived.row(vec![
        "four-way handshake".into(),
        format!(
            "{}",
            p.frame_airtime_bytes(p.rts_bytes)
                + p.frame_airtime_bytes(p.cts_bytes)
                + p.frame_airtime_bytes(p.data_bytes)
                + p.frame_airtime_bytes(p.ack_bytes)
                + p.sifs * 3
                + p.propagation_delay * 4
        ),
    ]);

    format!(
        "Table 1 — IEEE 802.11 protocol configuration parameters\n\n{}\n{}",
        t.render(),
        derived.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_paper_values() {
        let text = render();
        for needle in [
            "20 B",
            "14 B",
            "1460 B",
            "50.000µs",
            "10.000µs",
            "31–1023",
            "20.000µs",
            "192.000µs",
            "2 Mbps",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in table1");
        }
    }

    #[test]
    fn derived_airtimes_present() {
        let text = render();
        assert!(text.contains("272.000µs"), "RTS airtime");
        assert!(text.contains("248.000µs"), "CTS airtime");
        assert!(text.contains("6.032ms"), "data airtime");
    }
}
