//! E14 — validation: analysis vs simulation on the model's own substrate.
//!
//! The paper validates its model against ring-topology simulations; here
//! we go one step closer and simulate directly on Poisson fields (disk of
//! radius 3R, metrics from the boundary-free core of radius R — exactly
//! the analytical model's setting), then compare per-scheme *normalized
//! per-node* throughput against the model's optimum. Absolute values
//! differ by construction (the model's `p` abstraction has no BEB), so the
//! comparison is about ordering and trend.

use crate::pool::parallel_indexed;

use dirca_analysis::optimize::max_throughput;
use dirca_analysis::{ModelInput, ProtocolTimes};
use dirca_mac::Scheme;
use dirca_net::salts::{MODEL_RUN_STREAM_SALT, MODEL_STREAM_SALT};
use dirca_net::{run, SimConfig};
use dirca_sim::{rng::derive_seed, rng::stream_rng, SimDuration};
use dirca_stats::Summary;
use dirca_topology::poisson_core;

/// One (scheme, θ) comparison cell.
#[derive(Debug, Clone)]
pub struct ComparisonCell {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Beamwidth in degrees.
    pub theta_degrees: f64,
    /// Analytical maximum achievable throughput (per node, normalized).
    pub analytical: f64,
    /// Simulated per-core-node throughput, normalized to the channel rate.
    pub simulated: Summary,
}

/// Runs the comparison grid for density `n_avg` over `theta_degrees`.
pub fn compare(
    n_avg: f64,
    theta_degrees: &[f64],
    fields: usize,
    measure: SimDuration,
    seed: u64,
    threads: usize,
) -> Vec<ComparisonCell> {
    let mut cells = Vec::new();
    for &deg in theta_degrees {
        let input = ModelInput::new(ProtocolTimes::paper(), n_avg, deg.to_radians());
        for scheme in Scheme::ALL {
            let analytical = max_throughput(scheme, &input).throughput;
            let simulated = simulate(scheme, n_avg, deg, fields, measure, seed, threads);
            cells.push(ComparisonCell {
                scheme,
                theta_degrees: deg,
                analytical,
                simulated,
            });
        }
    }
    cells
}

fn simulate(
    scheme: Scheme,
    n_avg: f64,
    theta_deg: f64,
    fields: usize,
    measure: SimDuration,
    seed: u64,
    threads: usize,
) -> Summary {
    let samples = parallel_indexed(fields, threads, |f| {
        let mut rng = stream_rng(derive_seed(seed, MODEL_STREAM_SALT + f as u64), 0);
        let topology = poisson_core(&mut rng, n_avg, 1.0, 3.0, 1.0);
        if topology.measured == 0 || topology.len() < 2 {
            return None; // an empty core contributes no sample
        }
        let config = SimConfig::new(scheme)
            .with_beamwidth_degrees(theta_deg)
            .with_seed(derive_seed(seed, MODEL_RUN_STREAM_SALT + f as u64))
            .with_warmup(SimDuration::from_millis(200))
            .with_measure(measure);
        let result = run(&topology, &config);
        // Per-node normalized throughput: comparable to the model's
        // per-node time fraction.
        Some(result.mean_node_throughput_bps() / 2e6)
    });
    let mut out = Summary::new();
    for per_node in samples.into_iter().flatten() {
        out.push(per_node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_agree_at_narrow_beams() {
        // At θ = 30°, both columns must rank the directional schemes above
        // the omni scheme.
        let cells = compare(5.0, &[30.0], 6, SimDuration::from_secs(2), 7, 2);
        assert_eq!(cells.len(), 3);
        let get = |s: Scheme| {
            cells
                .iter()
                .find(|c| c.scheme == s)
                .expect("cell present")
                .clone()
        };
        let omni = get(Scheme::OrtsOcts);
        let dir = get(Scheme::DrtsDcts);
        assert!(dir.analytical > omni.analytical);
        assert!(
            dir.simulated.mean().unwrap() > omni.simulated.mean().unwrap(),
            "simulation ordering disagrees: dir {:?} vs omni {:?}",
            dir.simulated.mean(),
            omni.simulated.mean()
        );
    }
}
