//! The shared ring-topology simulation experiment (E3–E6).
//!
//! One *cell* of the paper's Figs. 6/7 is: a scheme, a neighbourhood size
//! `N`, and a beamwidth θ, evaluated over many random ring topologies. For
//! each topology we run the full 802.11 simulation and record the
//! aggregate throughput, mean delay, collision ratio, and Jain fairness of
//! the innermost `N` nodes; the cell's outcome is the distribution of
//! those per-topology values (the paper plots mean plus min–max range).

use std::fmt;

use crate::pool::parallel_indexed_catch;
use dirca_mac::{MacConfig, Scheme};
use dirca_net::salts::{RUN_STREAM_SALT, TOPOLOGY_STREAM_SALT};
use dirca_net::{run, run_guarded, FaultPlan, RunAborted, RunResult, SimConfig, Watchdog};
use dirca_radio::ReceptionMode;
use dirca_sim::{rng::derive_seed, rng::stream_rng, SimDuration};
use dirca_stats::{jain_index, Summary};
use dirca_topology::RingSpec;

/// One experiment cell: `topologies` random ring layouts simulated under a
/// single protocol configuration.
#[derive(Debug, Clone)]
pub struct RingExperiment {
    /// Collision-avoidance scheme under test.
    pub scheme: Scheme,
    /// Average neighbourhood size `N` (3, 5, or 8 in the paper).
    pub n_avg: usize,
    /// Beamwidth in degrees (30, 90, or 150 in the paper).
    pub beamwidth_degrees: f64,
    /// Number of random topologies (50 in the paper).
    pub topologies: usize,
    /// Master seed.
    pub seed: u64,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window per topology.
    pub measure: SimDuration,
    /// Receive-chain model.
    pub reception: ReceptionMode,
    /// MAC behaviour knobs (retry limits, EIFS, NAV handling).
    pub mac: MacConfig,
    /// Deterministic channel faults to inject (trivial = perfect channel).
    pub fault: FaultPlan,
}

impl RingExperiment {
    /// The paper's configuration for one (scheme, N, θ) cell: 50
    /// topologies, 0.5 s warm-up, 10 s measurement, omni reception.
    pub fn paper(scheme: Scheme, n_avg: usize, beamwidth_degrees: f64) -> Self {
        RingExperiment {
            scheme,
            n_avg,
            beamwidth_degrees,
            topologies: 50,
            seed: 0xD1CA,
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(10),
            reception: ReceptionMode::Omni,
            mac: MacConfig::default(),
            fault: FaultPlan::default(),
        }
    }

    /// A scaled-down configuration for smoke tests and benches.
    pub fn quick(scheme: Scheme, n_avg: usize, beamwidth_degrees: f64) -> Self {
        RingExperiment {
            topologies: 4,
            warmup: SimDuration::from_millis(100),
            measure: SimDuration::from_secs(1),
            ..Self::paper(scheme, n_avg, beamwidth_degrees)
        }
    }
}

/// Distribution of per-topology metrics for one cell.
#[derive(Debug, Clone, Default)]
pub struct RingOutcome {
    /// Aggregate throughput of the inner `N` nodes, normalized to the
    /// channel bit rate (so 1.0 = the 2 Mbps channel fully utilized with
    /// goodput).
    pub throughput: Summary,
    /// Mean MAC service delay of delivered packets, in milliseconds.
    pub delay_ms: Summary,
    /// Collision ratio (data transmissions losing their ACK / handshakes
    /// reaching the data stage).
    pub collision_ratio: Summary,
    /// Jain fairness index over the inner nodes' throughputs.
    pub jain: Summary,
}

/// Why a cell could not produce its samples. Failures name the lowest
/// failing topology index, so reports carry a reproducible coordinate.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFailure {
    /// A topology's simulation panicked; the payload is captured as text.
    Panicked {
        /// Index of the panicking topology.
        topology: usize,
        /// The stringified panic payload.
        message: String,
    },
    /// A topology's simulation tripped the watchdog budget.
    TimedOut {
        /// Index of the runaway topology.
        topology: usize,
        /// The structured abort report from the engine.
        aborted: RunAborted,
    },
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellFailure::Panicked { topology, message } => {
                write!(f, "panicked in topology {topology}: {message}")
            }
            CellFailure::TimedOut { topology, aborted } => {
                write!(f, "timed out in topology {topology}: {aborted}")
            }
        }
    }
}

impl std::error::Error for CellFailure {}

/// Guard rails for one cell run: an optional per-topology watchdog budget,
/// plus a drill switch that makes topology 0 panic on purpose (used by the
/// CI fault drill to prove the isolation path end to end).
#[derive(Debug, Clone, Copy, Default)]
pub struct CellGuards {
    /// Event/sim-time budget applied to every topology simulation.
    pub watchdog: Option<Watchdog>,
    /// Deliberately panic in topology 0 instead of simulating.
    pub drill_panic: bool,
}

impl RingOutcome {
    /// Aggregates per-topology samples (in index order) into the cell's
    /// metric distributions.
    pub fn from_samples(samples: &[TopologySample]) -> Self {
        let mut agg = RingOutcome::default();
        for sample in samples {
            agg.throughput.push(sample.throughput);
            if let Some(d) = sample.delay_ms {
                agg.delay_ms.push(d);
            }
            if let Some(c) = sample.collision_ratio {
                agg.collision_ratio.push(c);
            }
            if let Some(j) = sample.jain {
                agg.jain.push(j);
            }
        }
        agg
    }
}

/// Runs one cell, spreading topologies over `threads` workers.
///
/// Results are deterministic for a given (`experiment`, `threads`-
/// independent) seed: each topology's generator and simulation derive
/// their streams from `seed` and the topology index only.
///
/// # Panics
///
/// Panics if any topology fails (see [`try_run_cell`] for the isolating
/// variant), including when a degree-constrained topology cannot be
/// generated.
pub fn run_cell(experiment: &RingExperiment, threads: usize) -> RingOutcome {
    let samples = try_run_cell(experiment, threads, &CellGuards::default())
        .unwrap_or_else(|failure| panic!("cell failed: {failure}"));
    RingOutcome::from_samples(&samples)
}

/// Runs one cell with per-topology panic isolation and an optional
/// watchdog, returning the raw per-topology samples in index order.
///
/// On failure the *lowest* failing topology index is reported, so the
/// outcome is deterministic regardless of which worker thread hit the
/// failure first.
pub fn try_run_cell(
    experiment: &RingExperiment,
    threads: usize,
    guards: &CellGuards,
) -> Result<Vec<TopologySample>, CellFailure> {
    let outcomes = parallel_indexed_catch(experiment.topologies, threads, |t| {
        if guards.drill_panic && t == 0 {
            panic!("drill: injected cell panic");
        }
        run_one_topology(experiment, t, guards.watchdog)
    });
    let mut samples = Vec::with_capacity(outcomes.len());
    for (t, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(Ok(sample)) => samples.push(sample),
            Ok(Err(aborted)) => {
                return Err(CellFailure::TimedOut {
                    topology: t,
                    aborted,
                })
            }
            Err(panic) => {
                return Err(CellFailure::Panicked {
                    topology: t,
                    message: panic.message,
                })
            }
        }
    }
    Ok(samples)
}

/// Per-topology metric sample — the raw material of a [`RingOutcome`] and
/// the unit stored in runner checkpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySample {
    /// Aggregate inner-node throughput normalized to the channel bit rate.
    pub throughput: f64,
    /// Mean MAC service delay in milliseconds, if anything was delivered.
    pub delay_ms: Option<f64>,
    /// Collision ratio, if any handshake reached the data stage.
    pub collision_ratio: Option<f64>,
    /// Jain fairness index, if computable.
    pub jain: Option<f64>,
}

/// Materializes topology `index` of an experiment cell: the generated ring
/// layout plus the fully-derived simulation config, exactly as
/// [`try_run_cell`] would run it. Exposed so external tooling (the trace
/// exporter, replay debuggers) can re-run any cell coordinate standalone.
///
/// # Panics
///
/// Panics if the degree-constrained topology cannot be generated.
pub fn topology_config(
    experiment: &RingExperiment,
    index: usize,
) -> (dirca_topology::Topology, SimConfig) {
    let spec = RingSpec::paper(experiment.n_avg, 1.0);
    let mut topo_rng = stream_rng(
        derive_seed(experiment.seed, TOPOLOGY_STREAM_SALT),
        index as u64,
    );
    let topology = spec
        .generate(&mut topo_rng)
        .expect("degree-constrained topology generation failed");
    let mut config = SimConfig::new(experiment.scheme)
        .with_beamwidth_degrees(experiment.beamwidth_degrees)
        .with_reception(experiment.reception)
        .with_seed(derive_seed(experiment.seed, RUN_STREAM_SALT + index as u64))
        .with_warmup(experiment.warmup)
        .with_measure(experiment.measure)
        .with_fault(experiment.fault.clone());
    config.mac = experiment.mac.clone();
    (topology, config)
}

fn run_one_topology(
    experiment: &RingExperiment,
    index: usize,
    watchdog: Option<Watchdog>,
) -> Result<TopologySample, RunAborted> {
    let (topology, config) = topology_config(experiment, index);
    let result: RunResult = match watchdog {
        None => run(&topology, &config),
        Some(w) => run_guarded(&topology, &config, w)?,
    };
    let bit_rate = config.params.bit_rate_bps as f64;
    Ok(TopologySample {
        throughput: result.aggregate_throughput_bps() / bit_rate,
        delay_ms: result.mean_delay().map(|d| d.as_secs_f64() * 1e3),
        collision_ratio: result.collision_ratio(),
        jain: jain_index(&result.node_throughputs_bps()),
    })
}

/// The paper's Figs. 6/7 grid: `N ∈ {3, 5, 8}` × `θ ∈ {30°, 90°, 150°}` ×
/// the three schemes.
pub fn paper_grid() -> Vec<(usize, f64, Scheme)> {
    let mut cells = Vec::new();
    for &n in &[3usize, 5, 8] {
        for &theta in &[30.0, 90.0, 150.0] {
            for scheme in Scheme::ALL {
                cells.push((n, theta, scheme));
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheme: Scheme, n: usize, theta: f64) -> RingExperiment {
        RingExperiment {
            topologies: 2,
            warmup: SimDuration::from_millis(50),
            measure: SimDuration::from_millis(400),
            ..RingExperiment::paper(scheme, n, theta)
        }
    }

    #[test]
    fn cell_collects_all_topologies() {
        let out = run_cell(&tiny(Scheme::OrtsOcts, 3, 90.0), 2);
        assert_eq!(out.throughput.count(), 2);
        assert!(out.throughput.mean().unwrap() > 0.0);
    }

    #[test]
    fn cell_is_deterministic_across_thread_counts() {
        let exp = tiny(Scheme::DrtsDcts, 3, 30.0);
        let a = run_cell(&exp, 1);
        let b = run_cell(&exp, 4);
        // Per-topology samples are identical; only their aggregation order
        // differs, and Summary means of two values are order-insensitive up
        // to floating-point associativity.
        assert_eq!(a.throughput.count(), b.throughput.count());
        assert!((a.throughput.mean().unwrap() - b.throughput.mean().unwrap()).abs() < 1e-12);
        assert_eq!(a.throughput.min(), b.throughput.min());
        assert_eq!(a.throughput.max(), b.throughput.max());
    }

    #[test]
    fn delay_and_fairness_populate() {
        let out = run_cell(&tiny(Scheme::OrtsOcts, 3, 90.0), 2);
        assert!(out.delay_ms.count() > 0, "delay samples missing");
        assert!(out.jain.count() > 0, "fairness samples missing");
        let j = out.jain.mean().unwrap();
        assert!(j > 0.0 && j <= 1.0 + 1e-9);
    }

    #[test]
    fn try_run_cell_matches_run_cell_on_healthy_cells() {
        let exp = tiny(Scheme::OrtsOcts, 3, 90.0);
        let samples = try_run_cell(&exp, 2, &CellGuards::default()).unwrap();
        assert_eq!(samples.len(), 2);
        let direct = run_cell(&exp, 2);
        let rebuilt = RingOutcome::from_samples(&samples);
        assert_eq!(direct.throughput.min(), rebuilt.throughput.min());
        assert_eq!(direct.throughput.max(), rebuilt.throughput.max());
    }

    #[test]
    fn try_run_cell_samples_identical_across_thread_counts() {
        let exp = tiny(Scheme::DrtsOcts, 3, 90.0);
        let a = try_run_cell(&exp, 1, &CellGuards::default()).unwrap();
        let b = try_run_cell(&exp, 4, &CellGuards::default()).unwrap();
        assert_eq!(a, b, "samples must not depend on the thread count");
    }

    #[test]
    fn drill_panic_is_reported_with_its_topology() {
        let exp = tiny(Scheme::OrtsOcts, 3, 90.0);
        let guards = CellGuards {
            drill_panic: true,
            ..CellGuards::default()
        };
        let failure = try_run_cell(&exp, 2, &guards).unwrap_err();
        match failure {
            CellFailure::Panicked { topology, message } => {
                assert_eq!(topology, 0);
                assert!(message.contains("drill"), "{message}");
            }
            other => panic!("expected a panic failure, got {other:?}"),
        }
    }

    #[test]
    fn starved_watchdog_times_the_cell_out() {
        let exp = tiny(Scheme::OrtsOcts, 3, 90.0);
        let guards = CellGuards {
            watchdog: Some(Watchdog::max_events(50)),
            ..CellGuards::default()
        };
        let failure = try_run_cell(&exp, 2, &guards).unwrap_err();
        match failure {
            CellFailure::TimedOut { topology, aborted } => {
                assert_eq!(topology, 0, "the lowest index must be reported");
                assert_eq!(aborted.events, 50);
            }
            other => panic!("expected a timeout failure, got {other:?}"),
        }
        assert!(failure.to_string().contains("timed out in topology 0"));
    }

    #[test]
    fn generous_watchdog_is_invisible() {
        let exp = tiny(Scheme::OrtsOcts, 3, 90.0);
        let guards = CellGuards {
            watchdog: Some(Watchdog::max_events(u64::MAX)),
            ..CellGuards::default()
        };
        let guarded = try_run_cell(&exp, 2, &guards).unwrap();
        let free = try_run_cell(&exp, 2, &CellGuards::default()).unwrap();
        assert_eq!(guarded, free);
    }

    #[test]
    fn faulted_cell_is_deterministic_and_degraded() {
        let clean = tiny(Scheme::OrtsOcts, 3, 90.0);
        let noisy = RingExperiment {
            fault: FaultPlan::default().with_frame_error_rate(0.3),
            ..clean.clone()
        };
        let a = try_run_cell(&noisy, 1, &CellGuards::default()).unwrap();
        let b = try_run_cell(&noisy, 4, &CellGuards::default()).unwrap();
        assert_eq!(a, b, "faulted samples must be thread-count independent");
        let clean_out = run_cell(&clean, 2);
        let noisy_out = RingOutcome::from_samples(&a);
        assert!(
            noisy_out.throughput.mean().unwrap() < clean_out.throughput.mean().unwrap(),
            "a 30% FER must cost throughput"
        );
    }

    #[test]
    fn topology_config_reproduces_the_cell_sample() {
        // The exposed coordinate → (topology, config) mapping must be the
        // exact one the cell runner uses, or replay tooling would debug a
        // different run than the one reported.
        let exp = tiny(Scheme::OrtsOcts, 3, 90.0);
        let samples = try_run_cell(&exp, 2, &CellGuards::default()).unwrap();
        for (index, expected) in samples.iter().enumerate() {
            let (topology, config) = topology_config(&exp, index);
            let result = dirca_net::run(&topology, &config);
            let throughput = result.aggregate_throughput_bps() / config.params.bit_rate_bps as f64;
            assert_eq!(throughput, expected.throughput, "topology {index}");
            assert_eq!(result.collision_ratio(), expected.collision_ratio);
        }
    }

    #[test]
    fn paper_grid_has_27_cells() {
        let grid = paper_grid();
        assert_eq!(grid.len(), 27);
        assert!(grid
            .iter()
            .any(|&(n, t, s)| n == 8 && t == 150.0 && s == Scheme::DrtsOcts));
    }
}
