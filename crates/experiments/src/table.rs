//! Plain-text/markdown table rendering for experiment output.

/// A simple left-padded markdown table builder.
///
/// # Example
///
/// ```
/// use dirca_experiments::table::Table;
///
/// let mut t = Table::new(vec!["θ".into(), "throughput".into()]);
/// t.row(vec!["30°".into(), "0.42".into()]);
/// let text = t.render();
/// assert!(text.contains("| θ"));
/// assert!(text.contains("0.42"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        let _ = cols;
        out
    }
}

/// Formats `mean [min, max]` the way the paper's range-whisker plots read.
pub fn mean_range(mean: f64, min: f64, max: f64, decimals: usize) -> String {
    format!("{mean:.decimals$} [{min:.decimals$}, {max:.decimals$}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["a".into(), "long header".into()]);
        t.row(vec!["123456".into(), "x".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal length (alignment).
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_header() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn mean_range_formats() {
        assert_eq!(mean_range(0.5, 0.25, 0.75, 2), "0.50 [0.25, 0.75]");
    }
}
